"""Command-line interface for the Rafiki middleware.

The offline/online split of the paper maps onto subcommands::

    python -m repro collect   --datastore cassandra --out dataset.json
    python -m repro train     --dataset dataset.json --out surrogate.json
    python -m repro recommend --surrogate surrogate.json --read-ratio 0.9
    python -m repro replay    --surrogate surrogate.json --hours 24
    python -m repro serve     --surrogate surrogate.json --manifest tenants.toml
    python -m repro characterize --hours 24
    python -m repro resume    --journal campaign.wal --out dataset.json
    python -m repro verify-artifact dataset.json

``collect`` and ``train`` produce portable JSON artifacts; ``recommend``
is the online call a datastore operator (or agent) makes when the
workload shifts.  ``collect`` and ``train`` accept ``--workers N`` to
run the campaign / ensemble training on a process pool with
bitwise-identical results.

``replay`` and ``serve`` are the online service entry points, both
running on the middleware layer (:mod:`repro.middleware`): ``replay``
races one tuned tenant against a static-default baseline on the same
trace, while ``serve`` hosts a whole tenant fleet from a TOML/JSON
manifest, one shared surrogate amortized across all of them.

Artifacts are written atomically with CRC32 checksums, and the long
offline stages are crash-safe: ``collect --journal`` appends each
sample to a write-ahead log, ``resume`` finishes a killed campaign from
that log (bit-identical to an uninterrupted run), ``train
--checkpoint-dir`` checkpoints each ensemble member, and
``verify-artifact`` checks any artifact or journal without loading it.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import List, Optional

from repro.bench.collection import CAMPAIGN_JOURNAL_KIND, DataCollectionCampaign
from repro.bench.dataset import load_dataset, save_dataset
from repro.bench.ycsb import YCSBBenchmark
from repro.config import CASSANDRA_KEY_PARAMETERS, SCYLLA_KEY_PARAMETERS
from repro.core.persistence import load_surrogate, save_surrogate
from repro.core.policies import HysteresisPolicy, make_policy
from repro.core.rafiki import Rafiki
from repro.core.surrogate import SurrogateModel
from repro.datastore import CassandraLike, ScyllaLike
from repro.errors import GuardError, PersistenceError, SearchError
from repro.faults import FaultPlan
from repro.middleware import (
    MiddlewareScheduler,
    TenantSpec,
    load_manifest,
    specs_from_manifest,
)
from repro.ml.ensemble import EnsembleConfig
from repro.runtime import EventBus, resolve_backend
from repro.workload.characterize import characterize_trace
from repro.workload.forecast import MarkovRegimeForecaster
from repro.workload.mgrast import MGRastTraceGenerator
from repro.workload.spec import mgrast_workload


def _make_datastore(name: str):
    if name == "cassandra":
        return CassandraLike(), CASSANDRA_KEY_PARAMETERS
    if name == "scylladb":
        return ScyllaLike(), SCYLLA_KEY_PARAMETERS
    raise SystemExit(f"unknown datastore {name!r} (cassandra | scylladb)")


def _subscribe_recovery(events: EventBus) -> None:
    events.subscribe(lambda e: print(f"   {e}"), topic="recovery")


def _load_rafiki(args, datastore) -> Rafiki:
    surrogate = load_surrogate(args.surrogate, datastore.space)
    return Rafiki(datastore, surrogate, surrogate.feature_parameters, seed=args.seed)


# ------------------------------------------------------------------ subcommands


def cmd_collect(args) -> int:
    datastore, key_params = _make_datastore(args.datastore)
    backend = resolve_backend(workers=args.workers)
    events = EventBus()
    if not args.quiet:
        events.subscribe(
            lambda e: print(
                f"\r   sample {e.payload['done']}/{e.payload['total']}",
                end="",
                flush=True,
            ),
            topic="collect.sample",
        )
        _subscribe_recovery(events)
    benchmark = (
        YCSBBenchmark(datastore, run_seconds=args.run_seconds)
        if args.run_seconds is not None
        else None
    )
    with backend:
        campaign = DataCollectionCampaign(
            datastore,
            mgrast_workload(args.base_read_ratio),
            key_parameters=key_params,
            n_workloads=args.workloads,
            n_configurations=args.configurations,
            n_faulty=args.faulty,
            benchmark=benchmark,
            seed=args.seed,
            backend=backend,
            events=events,
            journal=args.journal,
        )
        dataset = campaign.run()
    if not args.quiet:
        print()
    save_dataset(dataset, args.out)
    print(f"wrote {len(dataset)} samples to {args.out}")
    return 0


def cmd_resume(args) -> int:
    """Finish a killed ``collect`` campaign from its journal.

    The journal header is the campaign fingerprint; everything needed to
    rebuild the grid (datastore, seed, shape, fault plan) is read from
    it, journaled samples are skipped, and the remaining grid points run
    — the resulting dataset is bit-identical to an uninterrupted
    campaign's.
    """
    from repro.recovery.journal import read_journal

    header, records = read_journal(args.journal, kind=CAMPAIGN_JOURNAL_KIND)
    space_name = str(header["space"])
    datastore, _ = _make_datastore(space_name.split("-")[0])
    base_workload = replace(
        mgrast_workload(float(header["base_read_ratio"])),
        n_keys=int(header["base_n_keys"]),
    )
    fault_plan = (
        FaultPlan.from_dict(header["fault_plan"])
        if header.get("fault_plan") is not None
        else None
    )
    events = EventBus()
    if not args.quiet:
        events.subscribe(
            lambda e: print(
                f"\r   sample {e.payload['done']}/{e.payload['total']}",
                end="",
                flush=True,
            ),
            topic="collect.sample",
        )
        _subscribe_recovery(events)
    backend = resolve_backend(workers=args.workers)
    with backend:
        campaign = DataCollectionCampaign(
            datastore,
            base_workload,
            key_parameters=header["key_parameters"],
            n_workloads=int(header["n_workloads"]),
            n_configurations=int(header["n_configurations"]),
            n_faulty=int(header["n_faulty"]),
            benchmark=YCSBBenchmark(
                datastore, run_seconds=float(header["run_seconds"])
            ),
            seed=int(header["seed"]),
            backend=backend,
            events=events,
            retry_faulty=int(header["retry_faulty"]),
            fault_plan=fault_plan,
            journal=args.journal,
        )
        dataset = campaign.run()
    if not args.quiet:
        print()
    save_dataset(dataset, args.out)
    print(
        f"resumed from {len(records)} journaled samples; "
        f"wrote {len(dataset)} samples to {args.out}"
    )
    return 0


def cmd_train(args) -> int:
    datastore, _ = _make_datastore(args.datastore)
    events = EventBus()
    if not args.quiet:
        _subscribe_recovery(events)
    dataset = load_dataset(args.dataset, datastore.space, events=events)
    with resolve_backend(workers=args.workers) as backend:
        surrogate = SurrogateModel(
            datastore.space,
            dataset.feature_parameters,
            EnsembleConfig(n_networks=args.networks),
        ).fit(
            dataset,
            seed=args.seed,
            backend=backend,
            checkpoint_dir=args.checkpoint_dir,
            events=events,
        )
    save_surrogate(surrogate, args.out)
    print(
        f"trained on {len(dataset)} samples "
        f"({surrogate.ensemble.active_count} nets kept); wrote {args.out}"
    )
    return 0


def cmd_verify_artifact(args) -> int:
    """Check a checksummed artifact or journal; exit 1 if untrustworthy."""
    from repro.recovery.atomic import verify_artifact
    from repro.recovery.journal import read_journal

    path = args.path
    try:
        with open(path) as fh:
            first_line = fh.readline()
        try:
            is_journal = "journal" in json.loads(first_line)
        except (json.JSONDecodeError, TypeError):
            is_journal = False
        if is_journal:
            header, records = read_journal(path)
            head = json.loads(first_line)
            summary = {
                "path": str(path),
                "kind": "journal",
                "journal": head.get("journal"),
                "format_version": head.get("format_version"),
                "records": len(records),
                "header_keys": sorted(header),
            }
        else:
            summary = verify_artifact(path)
    except OSError as exc:
        print(f"UNREADABLE: {exc}", file=sys.stderr)
        return 1
    except PersistenceError as exc:
        print(f"CORRUPT: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(summary, indent=2, default=str))
    return 0


def cmd_recommend(args) -> int:
    datastore, _ = _make_datastore(args.datastore)
    rafiki = _load_rafiki(args, datastore)
    result = rafiki.recommend(args.read_ratio)
    payload = {
        "read_ratio": args.read_ratio,
        "predicted_throughput": result.predicted_throughput,
        "surrogate_evaluations": result.evaluations,
        "configuration": {
            k: v for k, v in result.configuration.non_default_items().items()
        },
    }
    print(json.dumps(payload, indent=2, default=float))
    return 0


def cmd_replay(args) -> int:
    """Race a tuned tenant against the static-default baseline.

    Both run as middleware tenants on one scheduler: identical trace,
    identical seeds, deterministic interleaving — only the tuning
    differs.
    """
    datastore, _ = _make_datastore(args.datastore)
    rafiki = _load_rafiki(args, datastore)
    series = MGRastTraceGenerator(seed=args.seed).read_ratio_series(args.hours * 3600)
    base_workload = mgrast_workload(0.5)

    fault_plan = None
    if args.fault_seed is not None:
        fault_plan = FaultPlan.generate(
            seed=args.fault_seed,
            n_windows=len(series),
            n_nodes=args.nodes,
            # Node-level faults need a Cluster; a single server only
            # sees control-plane (search/push) faults.
            slowdown_probability=0.05 if args.nodes > 1 else 0.0,
        )
    events = EventBus()
    if not args.quiet:
        events.subscribe(lambda e: print(f"   {e}"), topic="tenant.rafiki.fault")
        events.subscribe(lambda e: print(f"   {e}"), topic="tenant.rafiki.controller")

    forecaster = MarkovRegimeForecaster() if args.mode == "forecast" else None
    scheduler = MiddlewareScheduler(datastore, rafiki, events=events)
    scheduler.add_tenant(
        TenantSpec(
            tenant_id="static",
            rr_series=series,
            base_workload=base_workload,
            use_rafiki=False,
            n_nodes=args.nodes,
            replication_factor=args.replication_factor,
            seed=args.seed,
        )
    )
    scheduler.add_tenant(
        TenantSpec(
            tenant_id="rafiki",
            rr_series=series,
            base_workload=base_workload,
            policy=HysteresisPolicy(
                make_policy(args.mode, forecaster), min_change=0.08
            ),
            n_nodes=args.nodes,
            replication_factor=args.replication_factor,
            seed=args.seed,
            fault_plan=fault_plan,
            canary_margin=args.canary_margin,
        )
    )
    results = scheduler.run()
    static, tuned = results["static"], results["rafiki"]
    gain = tuned.mean_throughput / static.mean_throughput - 1.0
    print(f"windows:          {len(series)}")
    print(f"static default:   {static.mean_throughput:>12,.0f} ops/s")
    print(f"rafiki ({args.mode:>8}): {tuned.mean_throughput:>12,.0f} ops/s ({gain:+.1%})")
    print(f"reconfigurations: {tuned.reconfiguration_count}")
    if fault_plan is not None or args.canary_margin is not None:
        print(f"rollbacks:        {tuned.rollback_count}")
        print(f"degraded windows: {tuned.degraded_count}")
    return 0


def cmd_serve(args) -> int:
    """Run a multi-tenant campaign from a tenant manifest."""
    datastore, _ = _make_datastore(args.datastore)
    try:
        manifest = load_manifest(args.manifest)
        specs = specs_from_manifest(manifest, hours=args.hours)
    except PersistenceError as exc:
        print(f"bad manifest: {exc}", file=sys.stderr)
        return 1
    rafiki = _load_rafiki(args, datastore)
    events = EventBus()
    restart_loss = {spec.tenant_id: 0.0 for spec in specs}
    restarted_nodes = {spec.tenant_id: 0 for spec in specs}
    drift_windows = {spec.tenant_id: 0 for spec in specs}
    drift_repairs = {spec.tenant_id: 0 for spec in specs}

    def on_restart(event):
        # tenant.<id>.actuate.rolling_restart — charge the transient
        # capacity loss to the tenant that paid it.
        parts = event.topic.split(".")
        tenant_id = parts[1]
        restart_loss[tenant_id] += event.payload["ops_lost"]
        restarted_nodes[tenant_id] += event.payload["nodes_restarted"]

    def on_drift(event):
        # tenant.<id>.actuate.drift / actuate.reconciled — the verified
        # actuation story per tenant.
        parts = event.topic.split(".")
        tenant_id, kind = parts[1], parts[-1]
        if kind == "drift":
            drift_windows[tenant_id] += 1
        else:
            drift_repairs[tenant_id] += 1

    for spec in specs:
        events.subscribe(
            on_restart, topic=f"tenant.{spec.tenant_id}.actuate.rolling_restart"
        )
        events.subscribe(
            on_drift, topic=f"tenant.{spec.tenant_id}.actuate.drift"
        )
        events.subscribe(
            on_drift, topic=f"tenant.{spec.tenant_id}.actuate.reconciled"
        )
    if not args.quiet:
        events.subscribe(
            lambda e: print(f"   {e.message}"),
            topic="scheduler",
        )
        events.subscribe(
            lambda e: print(f"   {e.message}"),
            topic="guard",
        )
    cluster_capacity = (
        args.cluster_capacity
        if args.cluster_capacity is not None
        else manifest.cluster_capacity
    )
    try:
        scheduler = MiddlewareScheduler(
            datastore,
            rafiki,
            events=events,
            workers=args.workers,
            cluster_capacity=cluster_capacity,
            shedding=manifest.shedding,
        )
        for spec in specs:
            scheduler.add_tenant(spec)
    except (GuardError, SearchError) as exc:
        print(f"bad fleet: {exc}", file=sys.stderr)
        return 1
    results = scheduler.run()
    print(f"tenants:          {len(results)}  ({manifest.source})")
    guard_report = scheduler.guard_report()
    guarded = cluster_capacity is not None or any(
        scheduler.session(spec.tenant_id).guard is not None for spec in specs
    )
    for spec in specs:
        run = results[spec.tenant_id]
        line = (
            f"tenant {spec.tenant_id:<16} {len(run.events):>4} windows  "
            f"{run.mean_throughput:>12,.0f} ops/s  "
            f"{run.reconfiguration_count:>3} reconfigs  "
            f"{run.rollback_count:>2} rollbacks  "
            f"{run.degraded_count:>2} degraded"
        )
        if spec.restart_policy == "rolling":
            line += (
                f"  {restarted_nodes[spec.tenant_id]} node restarts "
                f"({restart_loss[spec.tenant_id]:,.0f} ops lost)"
            )
        if guarded:
            # The guard columns only appear on guarded fleets, so an
            # unguarded serve prints byte-identical output to before.
            entry = guard_report[spec.tenant_id]
            line += f"  {entry['sheds']:>2} shed"
            if entry["slo"] is not None:
                line += f"  SLO {entry['slo']['attainment']:>6.1%}"
            if entry["breakers"] is not None:
                opens = sum(b["opens"] for b in entry["breakers"].values())
                line += f"  {opens} breaker opens"
        if any(drift_windows.values()):
            # Drift columns only appear when actuation actually drifted,
            # so fault-free serves print byte-identical output to before.
            quarantined = sum(
                1 for e in run.events if getattr(e, "quarantined", False)
            )
            line += (
                f"  {drift_windows[spec.tenant_id]} drift "
                f"({drift_repairs[spec.tenant_id]} repaired, "
                f"{quarantined} quarantined)"
            )
        print(line)
    if guarded and scheduler.ledger is not None:
        ledger = scheduler.ledger
        print(
            f"cluster:          {ledger.capacity:,.0f} ops/s capacity, "
            f"{ledger.rounds_overloaded}/{ledger.rounds_planned} rounds "
            f"overloaded, {sum(ledger.shed_counts.values())} windows shed"
        )
    state_report = scheduler.state_report()
    if state_report is not None:
        # Only sharded serves (--workers > 1) have a shipper, and the
        # hit/miss split depends on which worker drew which task — so this
        # is diagnostics on stderr, keeping stdout byte-identical to a
        # serial serve (the contract tests and smoke scripts compare).
        print(
            f"state shipping:   {state_report['blob_ships']} blob ships "
            f"({state_report['blob_bytes']:,} bytes), "
            f"{state_report['fingerprint_tasks']} fingerprint-only tasks, "
            f"{state_report['state_hits']} cache hits, "
            f"{state_report['state_misses']} misses",
            file=sys.stderr,
        )
    scheduler.close()
    return 0


def cmd_characterize(args) -> int:
    generator = MGRastTraceGenerator(seed=args.seed, queries_per_window=args.queries)
    trace = generator.generate(duration_seconds=args.hours * 3600)
    ch = characterize_trace(trace)
    payload = {
        "windows": ch.n_windows,
        "window_seconds": ch.window_seconds,
        "overall_read_ratio": ch.overall_read_ratio,
        "krd_mean_ops": ch.krd_mean_ops,
        "krd_samples": ch.krd_samples,
        "read_ratios": list(ch.read_ratios),
    }
    print(json.dumps(payload, indent=2, default=float))
    return 0


# ------------------------------------------------------------------ parser


def _positive_int(text):
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parent(*adders) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    for add in adders:
        add(parent)
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Rafiki NoSQL-tuning middleware (reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared flags are defined once, on reusable parent parsers, so every
    # subcommand spells --datastore/--seed/--quiet/--workers identically.
    datastore_p = _parent(
        lambda p: p.add_argument(
            "--datastore", default="cassandra", help="cassandra | scylladb"
        )
    )
    seed_p = _parent(lambda p: p.add_argument("--seed", type=int, default=0))
    quiet_p = _parent(lambda p: p.add_argument("--quiet", action="store_true"))
    workers_p = _parent(
        lambda p: p.add_argument(
            "--workers",
            type=_positive_int,
            default=1,
            help="worker processes for the parallel execution backend "
            "(1 = serial; results are identical either way)",
        )
    )

    p = sub.add_parser(
        "collect",
        help="run the offline benchmarking campaign",
        parents=[datastore_p, seed_p, workers_p, quiet_p],
    )
    p.add_argument("--out", required=True, help="dataset JSON path")
    p.add_argument("--base-read-ratio", type=float, default=0.5)
    p.add_argument("--workloads", type=int, default=11)
    p.add_argument("--configurations", type=int, default=20)
    p.add_argument("--faulty", type=int, default=20)
    p.add_argument(
        "--run-seconds",
        type=float,
        default=None,
        help="simulated benchmark duration per sample (default: paper's 300s)",
    )
    p.add_argument(
        "--journal",
        default=None,
        help="append-only WAL path; a killed campaign resumes from it "
        "(see the 'resume' subcommand)",
    )
    p.set_defaults(func=cmd_collect)

    p = sub.add_parser(
        "resume",
        help="finish a killed collect campaign from its journal",
        parents=[workers_p, quiet_p],
    )
    p.add_argument("--journal", required=True, help="the campaign's WAL path")
    p.add_argument("--out", required=True, help="dataset JSON path")
    p.set_defaults(func=cmd_resume)

    p = sub.add_parser(
        "train",
        help="train the surrogate on a dataset",
        parents=[datastore_p, seed_p, workers_p, quiet_p],
    )
    p.add_argument("--dataset", required=True)
    p.add_argument("--out", required=True, help="surrogate JSON path")
    p.add_argument("--networks", type=int, default=20)
    p.add_argument(
        "--checkpoint-dir",
        default=None,
        dest="checkpoint_dir",
        help="checkpoint each trained ensemble member here; a restarted "
        "train skips finished members",
    )
    p.set_defaults(func=cmd_train)

    p = sub.add_parser(
        "verify-artifact",
        help="verify a checksummed artifact or journal without loading it",
    )
    p.add_argument("path", help="artifact or journal path")
    p.set_defaults(func=cmd_verify_artifact)

    p = sub.add_parser(
        "recommend",
        help="search for a configuration",
        parents=[datastore_p, seed_p],
    )
    p.add_argument("--surrogate", required=True)
    p.add_argument("--read-ratio", type=float, required=True)
    p.set_defaults(func=cmd_recommend)

    p = sub.add_parser(
        "replay",
        help="replay a dynamic MG-RAST day",
        parents=[datastore_p, seed_p, quiet_p],
    )
    p.add_argument("--surrogate", required=True)
    p.add_argument("--hours", type=int, default=24)
    p.add_argument(
        "--mode", default="oracle", choices=("oracle", "reactive", "forecast")
    )
    p.add_argument(
        "--nodes", type=_positive_int, default=1, help="simulated cluster size"
    )
    p.add_argument(
        "--replication-factor", type=_positive_int, default=1, dest="replication_factor"
    )
    p.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="generate and inject a seeded FaultPlan (off by default)",
    )
    p.add_argument(
        "--canary-margin",
        type=float,
        default=None,
        help="enable canary-and-rollback with this undershoot margin, e.g. 0.2",
    )
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser(
        "serve",
        help="run a multi-tenant campaign from a tenant manifest",
        parents=[datastore_p, seed_p, workers_p, quiet_p],
    )
    p.add_argument("--surrogate", required=True, help="shared surrogate JSON path")
    p.add_argument(
        "--manifest",
        required=True,
        help="TOML (Python 3.11+) or JSON tenant manifest",
    )
    p.add_argument(
        "--hours",
        type=float,
        default=None,
        help="override every tenant's campaign length",
    )
    p.add_argument(
        "--cluster-capacity",
        type=float,
        default=None,
        help="shared-cluster capacity (ops/s) for admission control; "
        "overrides the manifest's [guard] cluster_capacity",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "characterize",
        help="synthesize + characterize a trace",
        parents=[seed_p],
    )
    p.add_argument("--hours", type=int, default=24)
    p.add_argument("--queries", type=int, default=1000, help="queries per window")
    p.set_defaults(func=cmd_characterize)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
