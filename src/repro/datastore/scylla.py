"""ScyllaDB-like datastore with an internal auto-tuner.

The paper's two ScyllaDB findings (§4.10, Figure 10) are modelled here:

1. **Hidden parameter**: "user settings for many configuration
   parameters are ignored by ScyllaDB, giving preference to its internal
   auto-tuning".  :meth:`ScyllaLike.effective_knobs` replaces the
   auto-tuned parameters with the tuner's own near-recommended choices,
   so varying them in a config file changes nothing mechanical — which
   is why naive ANOVA on ScyllaDB misattributes significance.
2. **Tuning-induced variance**: "even in an otherwise stationary system
   ... the throughput of ScyllaDB varies significantly" (up to ~60 % for
   ~40 s).  :class:`ScyllaAutotuner` produces a piecewise-constant
   multiplicative modulation whose realization depends on the applied
   configuration (interaction with the hidden tuner), injected through a
   model subclass.
"""

from __future__ import annotations

import hashlib
import math
from typing import Optional, Tuple

import numpy as np

from repro.config.scylla import (
    SCYLLA_AUTOTUNED_PARAMETERS,
    SCYLLA_KEY_PARAMETERS,
    scylla_space,
)
from repro.config.space import Configuration, ConfigurationSpace
from repro.datastore.base import Datastore
from repro.lsm.analytic import AnalyticLSMModel, WorkloadProfile
from repro.lsm.knobs import MB, EngineKnobs
from repro.sim.rng import SeedLike, derive_rng


class ScyllaAutotuner:
    """Piecewise-constant throughput modulation from the internal tuner.

    Every dwell period (mean ~40 s, exponential) the tuner re-balances
    its IO/CPU scheduler; the achieved throughput jumps to a new level
    drawn log-normally around 1.0.  The random realization is seeded from
    the *configuration*, capturing the paper's observation that changing
    any parameter perturbs the tuner's behaviour.
    """

    def __init__(self, seed: int, sigma: float = 0.16, mean_dwell_s: float = 40.0):
        self.rng = derive_rng(seed)
        self.sigma = sigma
        self.mean_dwell_s = mean_dwell_s
        self._level = 1.0
        self._until = 0.0

    def multiplier(self, t: float) -> float:
        """Current modulation factor at simulated time ``t``."""
        while t >= self._until:
            self._until += max(self.rng.exponential(self.mean_dwell_s), 1.0)
            self._level = float(
                np.clip(math.exp(self.sigma * self.rng.standard_normal()), 0.55, 1.6)
            )
        return self._level


class _ScyllaAnalyticModel(AnalyticLSMModel):
    """Analytic model whose throughput the auto-tuner modulates."""

    def __init__(self, *args, autotuner: ScyllaAutotuner, **kwargs):
        super().__init__(*args, **kwargs)
        self.autotuner = autotuner

    def sustainable_throughput(self, read_ratio: float) -> float:
        """Base throughput modulated by the internal tuner's level."""
        base = super().sustainable_throughput(read_ratio)
        return base * self.autotuner.multiplier(self.t)


class ScyllaLike(Datastore):
    """ScyllaDB 1.6 stand-in: Cassandra-compatible, self-tuning."""

    name = "scylladb"

    def _build_space(self) -> ConfigurationSpace:
        return scylla_space()

    @property
    def key_parameters(self) -> Tuple[str, ...]:
        return SCYLLA_KEY_PARAMETERS

    @property
    def autotuned_parameters(self) -> frozenset:
        return SCYLLA_AUTOTUNED_PARAMETERS

    def effective_knobs(self, config: Configuration) -> EngineKnobs:
        """User values for auto-tuned parameters are discarded.

        The internal tuner sizes concurrency near the vendor-recommended
        sweet spots for the hardware (8 threads/core for writes, a
        heap-quarter unified cache, compactors per core), regardless of
        what the YAML file says.
        """
        base = EngineKnobs.from_configuration(config)
        cores = self.hardware.cpu_cores
        return EngineKnobs(
            compaction_method=base.compaction_method,
            concurrent_writes=8 * cores,
            concurrent_reads=8 * cores,
            file_cache_bytes=min(self.hardware.heap_bytes // 4, 2048 * MB),
            memtable_space_bytes=base.memtable_space_bytes,
            memtable_cleanup_threshold=base.memtable_cleanup_threshold,
            memtable_flush_writers=base.memtable_flush_writers,
            concurrent_compactors=max(2, cores // 2),
            compaction_throughput_bytes=base.compaction_throughput_bytes,
            bloom_fp_chance=base.bloom_fp_chance,
            key_cache_bytes=base.key_cache_bytes,
            row_cache_bytes=base.row_cache_bytes,
            commitlog_segment_bytes=base.commitlog_segment_bytes,
            commitlog_sync_period_s=base.commitlog_sync_period_s,
            sstable_target_bytes=base.sstable_target_bytes,
        )

    def new_analytic_instance(
        self,
        config: Configuration,
        profile: Optional[WorkloadProfile] = None,
        seed: SeedLike = 0,
        noise_sigma: float = 0.03,
    ) -> AnalyticLSMModel:
        self.validate_configuration(config)
        seed_rng = derive_rng(seed)
        # The tuner's realization depends on the configuration: every
        # parameter interacts with the hidden tuner (paper §4.10).  A
        # stable digest (not built-in hash(), which is process-salted)
        # keeps experiments reproducible across runs.
        digest = hashlib.md5(
            repr(sorted(config.items())).encode("utf-8")
        ).digest()
        config_entropy = int.from_bytes(digest[:4], "little")
        tuner_seed = (config_entropy ^ int(seed_rng.integers(0, 2**31 - 1))) & 0x7FFFFFFF
        return _ScyllaAnalyticModel(
            knobs=self.effective_knobs(config),
            hardware=self.hardware,
            costs=self.costs,
            profile=profile,
            seed=seed_rng,
            noise_sigma=noise_sigma,
            autotuner=ScyllaAutotuner(seed=tuner_seed),
        )
