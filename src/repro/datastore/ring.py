"""Consistent-hash ring and a data-path replicated cluster.

:class:`Cluster` (cluster.py) models multi-node *throughput*; this
module carries actual *data*: a Cassandra-style consistent-hashing ring
places each key's replicas, and :class:`EngineCluster` runs one
materialized LSM engine per node with last-write-wins resolution,
tunable consistency levels, read repair, and node failures — the
distributed semantics the paper's substrate (§2.1's AP-over-C choice)
relies on.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config.space import Configuration
from repro.datastore.base import Datastore
from repro.datastore.cluster import CONSISTENCY_LEVELS
from repro.errors import DatastoreError
from repro.lsm.engine import LSMEngine
from repro.lsm.record import Record


def _stable_hash(text: str) -> int:
    """64-bit stable hash (md5-based; process-salt-free)."""
    return int.from_bytes(hashlib.md5(text.encode("utf-8")).digest()[:8], "little")


class HashRing:
    """Consistent hashing with virtual nodes.

    Each physical node owns ``vnodes`` points on a 64-bit ring; a key's
    replicas are the owners of the next ``n`` distinct nodes clockwise
    from the key's hash — adding or removing a node only moves the keys
    adjacent to its points.
    """

    def __init__(self, node_ids: Sequence[str], vnodes: int = 64):
        if not node_ids:
            raise DatastoreError("ring needs at least one node")
        if len(set(node_ids)) != len(node_ids):
            raise DatastoreError("duplicate node ids")
        if vnodes < 1:
            raise DatastoreError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []
        for node_id in node_ids:
            self.add_node(node_id)

    @property
    def node_ids(self) -> List[str]:
        return sorted({node for _, node in self._points})

    def add_node(self, node_id: str) -> None:
        """Insert a node's virtual points into the ring."""
        for v in range(self.vnodes):
            point = _stable_hash(f"{node_id}#{v}")
            bisect.insort(self._points, (point, node_id))

    def remove_node(self, node_id: str) -> None:
        """Remove a node's points (its keys re-home to neighbours)."""
        before = len(self._points)
        self._points = [(p, n) for p, n in self._points if n != node_id]
        if len(self._points) == before:
            raise DatastoreError(f"unknown node {node_id!r}")
        if not self._points:
            raise DatastoreError("cannot remove the last node")

    def replicas_for(self, key: str, n: int) -> List[str]:
        """The ``n`` distinct nodes owning ``key``, preference order."""
        nodes = self.node_ids
        if n > len(nodes):
            raise DatastoreError(f"need {n} replicas but ring has {len(nodes)} nodes")
        start = bisect.bisect_right(self._points, (_stable_hash(key), "￿"))
        replicas: List[str] = []
        i = start
        while len(replicas) < n:
            _, node = self._points[i % len(self._points)]
            if node not in replicas:
                replicas.append(node)
            i += 1
        return replicas


class EngineCluster:
    """Replicated key-value store over materialized LSM engines.

    Implements the Cassandra data path: writes go to every *live*
    replica (acked once ``write_quorum`` respond), reads consult
    ``read_quorum`` live replicas and resolve by newest timestamp
    (last-write-wins), optionally writing the winner back to stale
    replicas (read repair).  With ``R + W > RF`` and no permanent
    failures, reads observe the latest acknowledged write.
    """

    def __init__(
        self,
        datastore: Datastore,
        config: Configuration,
        n_nodes: int,
        replication_factor: int = 3,
        consistency_level: str = "QUORUM",
        read_repair: bool = True,
        vnodes: int = 64,
    ):
        if n_nodes < 1:
            raise DatastoreError("need at least one node")
        if not (1 <= replication_factor <= n_nodes):
            raise DatastoreError("replication factor must be within node count")
        if consistency_level not in CONSISTENCY_LEVELS:
            raise DatastoreError(f"unknown consistency level {consistency_level!r}")
        self.datastore = datastore
        self.replication_factor = replication_factor
        self.consistency_level = consistency_level
        self.read_repair = read_repair
        self.nodes: Dict[str, LSMEngine] = {
            f"node{i}": datastore.new_engine_instance(config) for i in range(n_nodes)
        }
        self.ring = HashRing(list(self.nodes), vnodes=vnodes)
        self._down: set = set()
        self._timestamp = 0.0

    # -- membership -------------------------------------------------------------

    def fail_node(self, node_id: str) -> None:
        """Mark a node down (it keeps its data; writes skip it)."""
        if node_id not in self.nodes:
            raise DatastoreError(f"unknown node {node_id!r}")
        # Validate before mutating: the rejected call must leave the
        # down-set untouched rather than mutate and undo.
        if node_id not in self._down and len(self._down) + 1 == len(self.nodes):
            raise DatastoreError("cannot fail the last live node")
        self._down.add(node_id)

    def recover_node(self, node_id: str) -> None:
        """Bring a failed node back; read repair re-syncs it lazily."""
        self._down.discard(node_id)

    @property
    def live_nodes(self) -> List[str]:
        return [n for n in self.nodes if n not in self._down]

    def _quorum(self) -> int:
        if self.consistency_level == "ONE":
            return 1
        if self.consistency_level == "QUORUM":
            return self.replication_factor // 2 + 1
        return self.replication_factor

    def _next_timestamp(self) -> float:
        self._timestamp += 1.0
        return self._timestamp

    def _live_replicas(self, key: str) -> List[str]:
        replicas = self.ring.replicas_for(key, self.replication_factor)
        return [r for r in replicas if r not in self._down]

    # -- data path --------------------------------------------------------------

    def put(self, key: str, value: bytes) -> None:
        """Write to all live replicas; fail if the quorum is unreachable."""
        self._mutate(key, value, delete=False)

    def delete(self, key: str) -> None:
        """Tombstone ``key`` on all live replicas."""
        self._mutate(key, None, delete=True)

    def _mutate(self, key: str, value: Optional[bytes], delete: bool) -> None:
        live = self._live_replicas(key)
        if len(live) < self._quorum():
            raise DatastoreError(
                f"cannot reach {self.consistency_level} "
                f"({len(live)}/{self._quorum()} replicas live for {key!r})"
            )
        ts = self._next_timestamp()
        for node_id in live:
            if delete:
                self.nodes[node_id].delete(key, timestamp=ts)
            else:
                self.nodes[node_id].put(key, value, timestamp=ts)

    def get(self, key: str) -> Optional[bytes]:
        """Read from a consistency-level quorum, newest timestamp wins."""
        live = self._live_replicas(key)
        quorum = self._quorum()
        if len(live) < quorum:
            raise DatastoreError(
                f"cannot reach {self.consistency_level} for read of {key!r}"
            )
        consulted = live[:quorum]
        responses: List[Tuple[str, Optional[Record]]] = [
            (node_id, self.nodes[node_id].get_record(key)) for node_id in consulted
        ]
        winner: Optional[Record] = None
        for _, rec in responses:
            if rec is not None and (winner is None or rec.supersedes(winner)):
                winner = rec
        if winner is not None and self.read_repair:
            for node_id, rec in responses:
                if rec is None or winner.supersedes(rec) and rec.timestamp < winner.timestamp:
                    if winner.is_tombstone:
                        self.nodes[node_id].delete(key, timestamp=winner.timestamp)
                    else:
                        self.nodes[node_id].put(
                            key, winner.value, timestamp=winner.timestamp
                        )
        if winner is None or winner.is_tombstone:
            return None
        return winner.value

    def __repr__(self) -> str:
        return (
            f"EngineCluster({len(self.nodes)} nodes, RF={self.replication_factor}, "
            f"CL={self.consistency_level}, down={sorted(self._down)})"
        )
