"""Simulated NoSQL datastores.

:class:`CassandraLike` and :class:`ScyllaLike` wrap the LSM substrate
with the vendor-specific behaviours the paper relies on: Cassandra obeys
its configuration file verbatim; ScyllaDB's internal auto-tuner silently
overrides several user parameters and makes throughput oscillate
(paper §4.10, Figure 10).  :class:`Cluster` composes several instances
into a replicated peer-to-peer ring (Table 3's multi-server setup), and
:class:`SimulatedDatastoreAdapter` owns the provision / apply-config /
rolling-restart / teardown lifecycle on top of either.
"""

from repro.datastore.adapter import (
    DatastoreAdapter,
    RollingRestartReport,
    SimulatedDatastoreAdapter,
)
from repro.datastore.base import Datastore
from repro.datastore.cassandra import CassandraLike
from repro.datastore.scylla import ScyllaLike, ScyllaAutotuner
from repro.datastore.cluster import Cluster
from repro.datastore.ring import EngineCluster, HashRing

__all__ = [
    "Datastore",
    "DatastoreAdapter",
    "SimulatedDatastoreAdapter",
    "RollingRestartReport",
    "CassandraLike",
    "ScyllaLike",
    "ScyllaAutotuner",
    "Cluster",
    "EngineCluster",
    "HashRing",
]
