"""Actuation layer: datastore lifecycle behind a uniform adapter.

Three call sites used to mint simulated servers by hand — the online
controller's ``_make_server``, the YCSB harness's fresh-instance-per-
sample reset, and the CLI's replay wiring.  The :class:`DatastoreAdapter`
protocol extracts that duplication into one place that owns the full
lifecycle: **provision** (fresh server or cluster), **apply-config**
(the legacy teleport push), **rolling-restart** (per-node config
application that charges the transient capacity loss a real restart
costs), and **teardown**.

The rolling restart is what makes reconfiguration cost a first-class
modeled event instead of a flat penalty constant: each node is taken out
of the serving set for ``restart_seconds_per_node`` simulated seconds
while the rest of the ring carries the load, so the report's ``ops_lost``
is exactly the capacity the restart transient cost — the quantity
Rafiki's hysteresis exists to amortize.

**Verified actuation.**  Pushes are fallible per node: a
:class:`~repro.datastore.cluster.Cluster` node armed with an
ActuationFault refusal (or config-isolated for a StaleRecovery) keeps
its old knobs, and the push reports carry the per-node applied/failed
split.  :meth:`DatastoreAdapter.verify_config` is the read-back — it
returns the intended-vs-applied :class:`DriftReport` the middleware's
reconcile loop consumes — and :meth:`DatastoreAdapter.repair_config`
re-pushes the intended config to just the drifted nodes, charging the
usual per-node rolling-restart transient.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.config.space import Configuration
from repro.datastore.base import Datastore
from repro.datastore.cluster import Cluster, DriftReport
from repro.errors import ActuationError, DatastoreError
from repro.lsm.analytic import StepResult, WorkloadProfile
from repro.lsm.engine import OP_READ
from repro.sim.rng import SeedLike, derive_rng
from repro.workload.generator import OperationGenerator
from repro.workload.spec import WorkloadSpec

#: How a :class:`SimulatedDatastoreAdapter` executes its tenant's load.
EXECUTION_MODES = ("analytic", "engine")

#: Simulated seconds one node needs to restart with a new configuration.
#: Rafiki's targets restart in tens of seconds (JVM warmup for Cassandra,
#: shard re-init for ScyllaDB); 30 s keeps the cost visible without
#: consuming a whole 15-minute window on small rings.
RESTART_SECONDS_PER_NODE = 30.0


@dataclass
class RollingRestartReport:
    """Accounting for one rolling config application."""

    nodes_restarted: int
    skipped_nodes: Tuple[int, ...]   # already-down nodes: knobs pushed, no cycle
    duration_s: float                # simulated time the rolling phase consumed
    ops_served: float                # logical ops completed during the phase
    ops_lost: float                  # capacity shortfall vs. the healthy ring
    steps: List = field(default_factory=list)  # per-step results (window-countable)
    #: Per-node applied results: which nodes actually took the new config
    #: and which silently kept their old one (partial-push faults).
    applied_nodes: Tuple[int, ...] = ()
    failed_nodes: Tuple[int, ...] = ()


class DatastoreAdapter:
    """Protocol for actuating configuration changes on a datastore.

    Implementations own one server (or cluster) end to end.  The online
    session layer only ever talks to this interface, so swapping the
    simulated substrate for a real fleet driver means implementing these
    five methods.
    """

    def provision(self, load_keys: Optional[int] = None,
                  settle_seconds: Optional[float] = None):
        """Create a fresh server; optionally run the load+settle phase."""
        raise NotImplementedError

    def apply_config(self, config: Configuration) -> None:
        """Push ``config`` to every node instantly (legacy semantics)."""
        raise NotImplementedError

    def rolling_restart(self, config: Configuration, read_ratio: float,
                        dt: float = 1.0) -> RollingRestartReport:
        """Apply ``config`` node by node, charging restart downtime."""
        raise NotImplementedError

    def verify_config(self) -> DriftReport:
        """Read back what each node is actually running (drift check)."""
        raise NotImplementedError

    def repair_config(self, nodes, read_ratio: float, rolling: bool = True,
                      dt: float = 1.0) -> RollingRestartReport:
        """Re-push the intended config to just ``nodes`` (drift repair)."""
        raise NotImplementedError

    def run(self, read_ratio: float, duration: float, dt: float = 1.0):
        """Drive the provisioned server for ``duration`` simulated seconds."""
        raise NotImplementedError

    def teardown(self) -> None:
        """Release the server (the analogue of the paper's Docker reset)."""
        raise NotImplementedError


class _EngineServer:
    """Materialized-engine substrate behind the adapter's server protocol.

    Drives a real :class:`~repro.lsm.engine.LSMEngine` through vectorized
    :class:`~repro.workload.generator.OperationBatch` blocks
    (``execute_batch``) and reports :class:`~repro.lsm.analytic.StepResult`
    entries, so the :class:`TenantSession` execute phase and window
    accounting consume engine-mode windows exactly as analytic ones.
    Batches are sized from the last observed rate so a ``run(duration)``
    call overshoots its window boundary by at most one small block.
    """

    #: Ops per execute_batch block: large enough to amortize numpy setup.
    BATCH_OPS = 4096
    #: Block size used before any throughput estimate exists.
    PROBE_OPS = 512

    def __init__(
        self,
        datastore: Datastore,
        config: Configuration,
        workload: WorkloadSpec,
        seed: SeedLike = 0,
    ):
        self.workload = workload
        self.engine = datastore.new_engine_instance(config)
        self.generator = OperationGenerator(workload, derive_rng(seed))
        self._ops_per_second: Optional[float] = None

    def load(self, n_keys: int) -> None:
        """YCSB load phase: ``n_keys`` fresh inserts, as one batch."""
        block = self.generator.load_batch(n_keys)
        self.engine.execute_batch(block.kinds, block.key_names(), block.value_sizes)

    def settle(self, max_seconds: float = 600.0, dt: float = 1.0) -> None:
        self.engine.idle_until_compact(max_seconds=max_seconds)

    def run(self, read_ratio: float, duration: float, dt: float = 1.0) -> List[StepResult]:
        """Serve ``duration`` simulated seconds of the op stream."""
        steps: List[StepResult] = []
        clock = self.engine.clock
        t_end = clock.now + duration
        while clock.now < t_end:
            n = self._next_batch_ops(t_end - clock.now)
            block = self.generator.operation_batch(n, read_ratio=read_ratio)
            t0 = clock.now
            self.engine.execute_batch(
                block.kinds, block.key_names(), block.value_sizes
            )
            elapsed = clock.now - t0
            if elapsed <= 0.0:  # defensive: a zero-advance block would spin
                break
            self._ops_per_second = n / elapsed
            reads = int(np.count_nonzero(block.kinds == OP_READ))
            steps.append(
                StepResult(
                    t=clock.now,
                    dt=elapsed,
                    throughput=n / elapsed,
                    reads=float(reads),
                    writes=float(n - reads),
                    sstable_count=self.engine.sstable_count,
                    cache_hit_ratio=self.engine.cache.hit_ratio,
                    compaction_backlog_bytes=self.engine.compaction_backlog_bytes,
                )
            )
        return steps

    def _next_batch_ops(self, remaining_seconds: float) -> int:
        if self._ops_per_second is None:
            return self.PROBE_OPS
        target = self._ops_per_second * remaining_seconds
        return int(min(self.BATCH_OPS, max(64.0, target)))

    def reconfigure(self, knobs) -> None:
        self.engine.reconfigure(knobs)

    def sustainable_throughput(self, read_ratio: float) -> float:
        """Capacity estimate for restart accounting.

        The engine has no closed-form bottleneck equation, so the last
        observed batch rate stands in; a server that has not yet served
        traffic runs one probe block (at the given mix) to measure it.
        """
        if self._ops_per_second is None:
            block = self.generator.operation_batch(
                self.PROBE_OPS, read_ratio=read_ratio
            )
            t0 = self.engine.clock.now
            self.engine.execute_batch(
                block.kinds, block.key_names(), block.value_sizes
            )
            elapsed = self.engine.clock.now - t0
            if elapsed <= 0.0:
                raise DatastoreError("engine probe did not advance time")
            self._ops_per_second = self.PROBE_OPS / elapsed
        return self._ops_per_second


class SimulatedDatastoreAdapter(DatastoreAdapter):
    """Adapter over the simulated substrate (analytic model / Cluster).

    ``n_nodes == 1`` provisions a single analytic server;
    ``n_nodes > 1`` provisions a :class:`Cluster` with one YCSB shooter
    per node, exactly as ``OnlineController._make_server`` did — a
    single-tenant middleware run stays bit-identical to the legacy
    controller.

    ``execution="engine"`` swaps the analytic substrate for a
    materialized :class:`~repro.lsm.engine.LSMEngine` fed by the
    vectorized op-stream path (:class:`_EngineServer`); it requires a
    ``workload`` spec (the op generator needs the full key/value shape,
    not just the profile) and is single-node only.
    """

    def __init__(
        self,
        datastore: Datastore,
        initial_config: Optional[Configuration] = None,
        *,
        n_nodes: int = 1,
        replication_factor: int = 1,
        profile: Optional[WorkloadProfile] = None,
        seed: SeedLike = 0,
        restart_seconds_per_node: float = RESTART_SECONDS_PER_NODE,
        events=None,
        execution: str = "analytic",
        workload: Optional[WorkloadSpec] = None,
    ):
        if n_nodes < 1:
            raise DatastoreError("adapter needs n_nodes >= 1")
        if restart_seconds_per_node < 0:
            raise DatastoreError("restart_seconds_per_node must be >= 0")
        if execution not in EXECUTION_MODES:
            raise DatastoreError(
                f"unknown execution mode {execution!r} "
                f"(expected one of {EXECUTION_MODES})"
            )
        if execution == "engine":
            if n_nodes != 1:
                raise DatastoreError(
                    "engine execution is single-node (the materialized "
                    "engine has no ring); use n_nodes=1 or execution='analytic'"
                )
            if workload is None:
                raise DatastoreError(
                    "engine execution needs a workload= spec to drive the "
                    "operation generator"
                )
        self.datastore = datastore
        self.config = initial_config or datastore.default_configuration()
        self.n_nodes = n_nodes
        self.replication_factor = replication_factor
        self.profile = profile
        self.seed = seed
        self.restart_seconds_per_node = restart_seconds_per_node
        self.events = events
        self.execution = execution
        self.workload = workload
        self.server = None
        self.cluster: Optional[Cluster] = None
        # Single-server applied-config tracking (clusters track per node).
        self._applied_config: Configuration = self.config

    # -- lifecycle -------------------------------------------------------------

    def provision(self, load_keys: Optional[int] = None,
                  settle_seconds: Optional[float] = None):
        if self.execution == "engine":
            self.server = _EngineServer(
                self.datastore, self.config, self.workload, seed=self.seed
            )
            self.cluster = None
        elif self.n_nodes == 1:
            self.server = self.datastore.new_analytic_instance(
                self.config, profile=self.profile, seed=self.seed
            )
            self.cluster = None
        else:
            self.cluster = Cluster(
                self.datastore,
                self.config,
                n_nodes=self.n_nodes,
                replication_factor=self.replication_factor,
                n_shooters=self.n_nodes,
                profile=self.profile,
                seed=self.seed,
                events=self.events,
            )
            self.server = self.cluster
        if load_keys is not None:
            self.server.load(load_keys)
            if settle_seconds is None:
                self.server.settle()
            else:
                self.server.settle(settle_seconds)
        self._publish("actuate.provision",
                      f"provisioned {self.n_nodes} node(s)",
                      n_nodes=self.n_nodes,
                      replication_factor=self.replication_factor)
        return self.server

    def teardown(self) -> None:
        if self.server is not None:
            self._publish("actuate.teardown", "server released")
        self.server = None
        self.cluster = None

    # -- config application ----------------------------------------------------

    def apply_config(self, config: Configuration) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Push ``config`` to every node instantly; per-node results.

        Returns ``(applied, failed)`` node-index tuples.  On a cluster
        the push lands node by node, so an armed ActuationFault leaves
        its node on the old config — silently, exactly like the rolling
        path; only :meth:`verify_config` read-back tells.
        """
        self._require_server()
        if self.cluster is not None:
            applied, failed = self.cluster.apply_config(config)
        else:
            self.server.reconfigure(self.datastore.effective_knobs(config))
            self._applied_config = config
            applied, failed = (0,), ()
        self.config = config
        return applied, failed

    def rolling_restart(self, config: Configuration, read_ratio: float,
                        dt: float = 1.0) -> RollingRestartReport:
        """Per-node restart into ``config``; the transient is charged.

        While node *i* restarts it is out of the serving set: on a
        cluster the surviving nodes absorb the load (capped by the
        slowest live node, so capacity genuinely drops); on a single
        server the restart is full downtime.  Already-down nodes get the
        new knobs without a restart cycle — they rejoin with the current
        configuration, as :meth:`Cluster.reconfigure` guarantees.
        """
        self._require_server()
        knobs = self.datastore.effective_knobs(config)
        if self.cluster is None:
            report = self._single_node_restart(knobs, read_ratio)
            report.applied_nodes = (0,)
            self._applied_config = config
        else:
            # Declare the intent first: nodes the cycle has not reached
            # yet are *transiently* drifted, nodes a fault kept on the
            # old config remain drifted after — the read-back sees both.
            self.cluster.set_intended(config)
            report = self._cluster_rolling_restart(config, knobs, read_ratio, dt)
        self.config = config
        self._publish(
            "actuate.rolling_restart",
            f"rolling restart: {report.nodes_restarted} node(s) in "
            f"{report.duration_s:.0f}s, {report.ops_lost:,.0f} ops of "
            "capacity lost",
            nodes_restarted=report.nodes_restarted,
            skipped_nodes=report.skipped_nodes,
            duration_s=report.duration_s,
            ops_served=report.ops_served,
            ops_lost=report.ops_lost,
            applied_nodes=report.applied_nodes,
            failed_nodes=report.failed_nodes,
        )
        return report

    # -- verification & repair --------------------------------------------------

    def verify_config(self) -> DriftReport:
        """Read back the per-node applied configs vs. the intended one.

        This is the actuation layer's trust-but-verify step (BestConfig
        restarts-and-verifies every configuration; Tuneful treats failed
        application as a first-class outcome): the report says exactly
        which live nodes serve a configuration other than the intended
        one.  Costless in simulation; on a real fleet this is a config
        read-back RPC per node.
        """
        self._require_server()
        if self.cluster is not None:
            return self.cluster.describe_drift()
        intended = self.config.fingerprint()
        applied = self._applied_config.fingerprint()
        return DriftReport(
            intended_fingerprint=intended,
            node_fingerprints=(applied,),
            drifted_nodes=(0,) if applied != intended else (),
        )

    def repair_config(self, nodes, read_ratio: float, rolling: bool = True,
                      dt: float = 1.0) -> RollingRestartReport:
        """Re-push the intended config to just the drifted ``nodes``.

        ``rolling=True`` cycles each node through a restart window (the
        surviving ring carries the load, so the repair charges the usual
        per-node transient); ``rolling=False`` is the instant-push
        repair.  Nodes that refuse again stay in ``failed_nodes`` — the
        caller decides whether to spend more budget or escalate.
        """
        self._require_server()
        nodes = tuple(nodes)
        if not nodes:
            raise ActuationError("repair_config needs at least one node")
        if self.cluster is None:
            raise ActuationError(
                "repair_config targets ring nodes; a single server cannot "
                "drift (re-push with apply_config instead)"
            )
        cluster = self.cluster
        for i in nodes:
            if not (0 <= i < cluster.n_nodes):
                raise ActuationError(
                    f"repair targets node {i} outside the ring "
                    f"[0, {cluster.n_nodes})"
                )
        config = self.config
        knobs = self.datastore.effective_knobs(config)
        healthy_cap = cluster.sustainable_throughput(read_ratio)
        steps: List = []
        restarted = 0
        skipped: List[int] = []
        applied: List[int] = []
        failed: List[int] = []
        down = set(cluster.down_node_indices)
        for i in nodes:
            if i in down:
                skipped.append(i)
                ok = cluster.apply_node_config(i, config, knobs=knobs)
                (applied if ok else failed).append(i)
                continue
            if rolling:
                try:
                    cluster.fail_node(i)
                except DatastoreError:
                    skipped.append(i)
                    ok = cluster.apply_node_config(i, config, knobs=knobs)
                    (applied if ok else failed).append(i)
                    continue
                if self.restart_seconds_per_node > 0:
                    steps.extend(
                        cluster.run(
                            read_ratio, self.restart_seconds_per_node, dt=dt
                        )
                    )
                ok = cluster.apply_node_config(i, config, knobs=knobs)
                (applied if ok else failed).append(i)
                cluster.recover_node(i)
                restarted += 1
            else:
                ok = cluster.apply_node_config(i, config, knobs=knobs)
                (applied if ok else failed).append(i)
        duration = sum(s.dt for s in steps)
        ops_served = sum(s.throughput * s.dt for s in steps)
        report = RollingRestartReport(
            nodes_restarted=restarted,
            skipped_nodes=tuple(skipped),
            duration_s=duration,
            ops_served=ops_served,
            ops_lost=max(0.0, healthy_cap * duration - ops_served),
            steps=steps,
            applied_nodes=tuple(applied),
            failed_nodes=tuple(failed),
        )
        self._publish(
            "actuate.repair",
            f"drift repair: re-pushed {len(report.applied_nodes)}/"
            f"{len(nodes)} node(s) in {report.duration_s:.0f}s "
            f"({report.ops_lost:,.0f} ops of capacity lost)",
            nodes=nodes,
            applied_nodes=report.applied_nodes,
            failed_nodes=report.failed_nodes,
            duration_s=report.duration_s,
            ops_lost=report.ops_lost,
        )
        return report

    # -- driving ---------------------------------------------------------------

    def run(self, read_ratio: float, duration: float, dt: float = 1.0):
        self._require_server()
        return self.server.run(read_ratio, duration, dt=dt)

    # -- internals -------------------------------------------------------------

    def _single_node_restart(self, knobs, read_ratio: float) -> RollingRestartReport:
        duration = self.restart_seconds_per_node
        healthy = self.server.sustainable_throughput(read_ratio)
        self.server.reconfigure(knobs)
        return RollingRestartReport(
            nodes_restarted=1,
            skipped_nodes=(),
            duration_s=duration,
            ops_served=0.0,
            ops_lost=healthy * duration,
            steps=[],
        )

    def _cluster_rolling_restart(self, config: Configuration, knobs,
                                 read_ratio: float,
                                 dt: float) -> RollingRestartReport:
        cluster = self.cluster
        healthy_cap = cluster.sustainable_throughput(read_ratio)
        steps: List = []
        restarted = 0
        skipped: List[int] = []
        applied: List[int] = []
        failed: List[int] = []
        down_before = set(cluster.down_node_indices)
        for i in range(cluster.n_nodes):
            if i in down_before:
                # Crashed by a fault: push the config (it rejoins with the
                # current configuration — unless config-isolated by a
                # StaleRecovery fault) but do not cycle it — restarting
                # would wrongly resurrect it.
                skipped.append(i)
                ok = cluster.apply_node_config(i, config, knobs=knobs)
                (applied if ok else failed).append(i)
                continue
            try:
                cluster.fail_node(i)
            except DatastoreError:
                # Last live node: push the config without a restart window
                # rather than dropping the ring to zero capacity.
                skipped.append(i)
                ok = cluster.apply_node_config(i, config, knobs=knobs)
                (applied if ok else failed).append(i)
                continue
            if self.restart_seconds_per_node > 0:
                steps.extend(
                    cluster.run(read_ratio, self.restart_seconds_per_node, dt=dt)
                )
            # The restart cycle is spent either way; a push the node
            # refused (ActuationFault) brings it back on its *old*
            # config — a silent partial push the read-back must catch.
            ok = cluster.apply_node_config(i, config, knobs=knobs)
            (applied if ok else failed).append(i)
            cluster.recover_node(i)
            restarted += 1
        duration = sum(s.dt for s in steps)
        ops_served = sum(s.throughput * s.dt for s in steps)
        return RollingRestartReport(
            nodes_restarted=restarted,
            skipped_nodes=tuple(skipped),
            duration_s=duration,
            ops_served=ops_served,
            ops_lost=max(0.0, healthy_cap * duration - ops_served),
            steps=steps,
            applied_nodes=tuple(applied),
            failed_nodes=tuple(failed),
        )

    def _require_server(self) -> None:
        if self.server is None:
            raise DatastoreError(
                "adapter has no provisioned server (call provision() first)"
            )

    def _publish(self, topic: str, message: str, **payload) -> None:
        if self.events is not None:
            self.events.publish(topic, message, **payload)

    def __repr__(self) -> str:
        state = "provisioned" if self.server is not None else "empty"
        return (
            f"SimulatedDatastoreAdapter({self.datastore.name} x{self.n_nodes}, "
            f"RF={self.replication_factor}, {state})"
        )
