"""Cassandra-like datastore: configuration taken at face value."""

from __future__ import annotations

from typing import Tuple

from repro.config.cassandra import CASSANDRA_KEY_PARAMETERS, cassandra_space
from repro.config.space import ConfigurationSpace
from repro.datastore.base import Datastore


class CassandraLike(Datastore):
    """Apache Cassandra 3.7 stand-in.

    Honours every value in its configuration — which is exactly why its
    default file (tuned for write-leaning web workloads) underperforms so
    badly on MG-RAST's read-heavy phases (paper §4.4).
    """

    name = "cassandra"

    def _build_space(self) -> ConfigurationSpace:
        return cassandra_space()

    @property
    def key_parameters(self) -> Tuple[str, ...]:
        return CASSANDRA_KEY_PARAMETERS
