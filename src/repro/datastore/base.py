"""Datastore abstraction over the LSM substrate.

A datastore owns a configuration space and knows how to turn a
configuration into engine knobs (possibly overriding some — ScyllaDB's
auto-tuner does) and how to mint fresh server instances.  Fresh-instance
creation is the analogue of the paper's per-sample Docker reset (§4.2).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.config.space import Configuration, ConfigurationSpace
from repro.errors import ConfigurationError
from repro.lsm.analytic import AnalyticLSMModel, WorkloadProfile
from repro.lsm.engine import LSMEngine
from repro.lsm.knobs import EngineKnobs
from repro.sim.clock import SimClock
from repro.sim.costs import CostConstants, DEFAULT_COSTS
from repro.sim.hardware import DEFAULT_SERVER, HardwareSpec
from repro.sim.rng import SeedLike


class Datastore:
    """Base simulated NoSQL datastore."""

    #: Human-readable engine name, e.g. "cassandra".
    name: str = "abstract"

    def __init__(
        self,
        hardware: HardwareSpec = DEFAULT_SERVER,
        costs: CostConstants = DEFAULT_COSTS,
    ):
        self.hardware = hardware
        self.costs = costs
        self.space = self._build_space()

    # -- subclass hooks ------------------------------------------------------

    def _build_space(self) -> ConfigurationSpace:
        raise NotImplementedError

    @property
    def key_parameters(self) -> Tuple[str, ...]:
        """The vendor's paper-identified key parameters (§3.4.1)."""
        raise NotImplementedError

    def effective_knobs(self, config: Configuration) -> EngineKnobs:
        """Resolve a configuration into the knobs the engine really runs.

        Cassandra honours the file; ScyllaDB overrides auto-tuned values.
        """
        return EngineKnobs.from_configuration(config)

    # -- instance factories ---------------------------------------------------

    def default_configuration(self) -> Configuration:
        """The vendor-shipped configuration file."""
        return self.space.default_configuration()

    def validate_configuration(self, config: Configuration) -> None:
        """Reject configurations built for a different parameter space."""
        if config.space is not self.space:
            # Accept configurations from an identically named space
            # (e.g. deserialized), but insist on matching parameters.
            if set(config.space.names) != set(self.space.names):
                raise ConfigurationError(
                    "configuration does not belong to this datastore's space"
                )

    def new_analytic_instance(
        self,
        config: Configuration,
        profile: Optional[WorkloadProfile] = None,
        seed: SeedLike = 0,
        noise_sigma: float = 0.015,
    ) -> AnalyticLSMModel:
        """Fresh batched-model server (the fast benchmark path)."""
        self.validate_configuration(config)
        return AnalyticLSMModel(
            knobs=self.effective_knobs(config),
            hardware=self.hardware,
            costs=self.costs,
            profile=profile,
            seed=seed,
            noise_sigma=noise_sigma,
        )

    def new_engine_instance(
        self,
        config: Configuration,
        clock: Optional[SimClock] = None,
    ) -> LSMEngine:
        """Fresh materialized engine (the per-operation path)."""
        self.validate_configuration(config)
        return LSMEngine(
            knobs=self.effective_knobs(config),
            hardware=self.hardware,
            clock=clock,
            costs=self.costs,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.hardware.name})"
