"""Multi-node peer-to-peer cluster (paper §4.9, Table 3).

Nodes are independent simulated servers joined in a Cassandra-style
ring.  Each logical write is applied to ``replication_factor`` replicas;
each logical read is served by one replica (consistency level ONE, the
throughput-oriented choice).  Client capacity is bounded by the number
of YCSB "shooters" — the paper adds a shooter per server to keep the
cluster loaded.

Nodes can be marked down (:meth:`Cluster.fail_node`) or given a degraded
disk (:meth:`Cluster.set_disk_slowdown`); throughput and capacity math
then run over the surviving nodes, mirroring the data-path failures in
:mod:`repro.datastore.ring`.  With every node live and no slowdowns the
math is bit-identical to the fault-free model.

**Verified actuation.**  Each node tracks the :class:`Configuration` it
is *actually running* (its applied config), separately from the ring's
*intended* config (:attr:`Cluster.config`).  Config pushes land per node
through :meth:`apply_node_config`, which can fail — a node armed with
push refusals (:meth:`refuse_pushes`, the ActuationFault mechanism) or
config-isolated while down (:meth:`isolate_node`, the StaleRecovery
mechanism) silently keeps its old knobs.  A mixed-config ring is thus a
modeled, measurable state: capacity math consumes each node's own knobs,
and :meth:`describe_drift` reports the intended-vs-applied fingerprint
delta so the middleware's reconcile loop can detect and repair it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.config.space import Configuration
from repro.datastore.base import Datastore
from repro.errors import ActuationError, DatastoreError
from repro.lsm.analytic import AnalyticLSMModel, WorkloadProfile
from repro.lsm.knobs import EngineKnobs
from repro.sim.rng import SeedLike, SeedSequence, derive_rng

#: Operations/second one benchmark client ("shooter") can generate.
SHOOTER_CAPACITY_OPS = 130_000.0

#: Read consistency levels: how many replicas serve each logical read.
CONSISTENCY_LEVELS = ("ONE", "QUORUM", "ALL")


@dataclass
class ClusterStepResult:
    """Aggregate outcome of one cluster time step."""

    t: float
    throughput: float          # logical ops/s across the cluster
    per_node_throughput: List[float]
    dt: float = 1.0


@dataclass(frozen=True)
class DriftReport:
    """Intended-vs-applied configuration state, per node.

    ``drifted_nodes`` are *live* nodes serving a config other than the
    intended one — the hazard the reconcile loop repairs.  Down nodes
    with stale configs are listed separately (they serve nothing; their
    drift is caught when they rejoin).
    """

    intended_fingerprint: str
    node_fingerprints: Tuple[str, ...]
    drifted_nodes: Tuple[int, ...]
    down_drifted_nodes: Tuple[int, ...] = ()

    @property
    def has_drift(self) -> bool:
        return bool(self.drifted_nodes)


class Cluster:
    """A ring of identically configured simulated datastore nodes."""

    def __init__(
        self,
        datastore: Datastore,
        config: Configuration,
        n_nodes: int,
        replication_factor: int = 1,
        n_shooters: int = 1,
        consistency_level: str = "ONE",
        profile: Optional[WorkloadProfile] = None,
        seed: SeedLike = 0,
        events=None,
    ):
        if n_nodes <= 0:
            raise DatastoreError("cluster needs at least one node")
        if not (1 <= replication_factor <= n_nodes):
            raise DatastoreError(
                f"replication factor {replication_factor} must be in [1, {n_nodes}]"
            )
        if n_shooters <= 0:
            raise DatastoreError("need at least one shooter")
        if consistency_level not in CONSISTENCY_LEVELS:
            raise DatastoreError(
                f"consistency level {consistency_level!r} not in {CONSISTENCY_LEVELS}"
            )
        self.datastore = datastore
        self.config = config
        self.n_nodes = n_nodes
        self.replication_factor = replication_factor
        self.n_shooters = n_shooters
        self.consistency_level = consistency_level
        root = seed if isinstance(seed, int) else int(derive_rng(seed).integers(2**31))
        seeds = SeedSequence(root)
        self.nodes: List[AnalyticLSMModel] = [
            datastore.new_analytic_instance(
                config, profile=profile, seed=seeds.stream(f"node{i}")
            )
            for i in range(n_nodes)
        ]
        self.t = 0.0
        self.events = events
        self._down: Set[int] = set()
        self._slowdown: Dict[int, float] = {}
        # Verified actuation: what each node is actually running, plus
        # the fault machinery that can make a push miss a node.
        self._applied: List[Configuration] = [config] * n_nodes
        self._push_refusals: Dict[int, int] = {}
        self._isolated: Set[int] = set()

    def _publish(self, topic: str, message: str, **payload) -> None:
        if self.events is not None:
            self.events.publish(topic, message, **payload)

    # -- fault state ----------------------------------------------------------

    def _check_node_index(self, node: int) -> None:
        if not (0 <= node < self.n_nodes):
            raise DatastoreError(
                f"node index {node} out of range [0, {self.n_nodes})"
            )

    def fail_node(self, node: int) -> None:
        """Mark a node down; it stops serving and absorbing load."""
        self._check_node_index(node)
        if node not in self._down and len(self._down) + 1 == self.n_nodes:
            raise DatastoreError("cannot fail the last live node")
        self._down.add(node)

    def recover_node(self, node: int) -> None:
        """Bring a failed node back into the serving set.

        The node rejoins with whatever configuration it last *applied* —
        not silently with the intended one.  A rejoin whose applied
        config has drifted from the intended config publishes a
        ``cluster.node_recovered`` event carrying both fingerprints, so
        a stale-config rejoin is an observable state the reconcile loop
        can act on instead of a silent throughput anomaly.  (Clean
        rejoins stay silent: fault-free rolling restarts recover nodes
        constantly and must not grow the event log.)
        """
        self._check_node_index(node)
        was_down = node in self._down
        self._down.discard(node)
        self._isolated.discard(node)
        if not was_down:
            return
        applied = self._applied[node].fingerprint()
        intended = self.config.fingerprint()
        if applied != intended:
            self._publish(
                "cluster.node_recovered",
                f"node {node} rejoined on stale config {applied} "
                f"(intended {intended})",
                node=node,
                applied_fingerprint=applied,
                intended_fingerprint=intended,
                drifted=True,
            )

    def refuse_pushes(self, node: int, count: int = 1) -> None:
        """Arm ``count`` consecutive config-push failures on one node.

        The ActuationFault mechanism: the next ``count`` calls to
        :meth:`apply_node_config` targeting ``node`` silently fail,
        leaving the node on its old configuration.  The data plane keeps
        serving — only read-back verification can tell.
        """
        self._check_node_index(node)
        if count < 1:
            raise ActuationError(f"refusal count must be >= 1, got {count}")
        self._push_refusals[node] = self._push_refusals.get(node, 0) + count

    def isolate_node(self, node: int) -> None:
        """Cut a node off from config pushes (StaleRecovery mechanism).

        While isolated, :meth:`apply_node_config` never reaches the node
        — a crashed-and-isolated node rejoins with its pre-crash config.
        Isolation clears when the node recovers.
        """
        self._check_node_index(node)
        self._isolated.add(node)

    def set_disk_slowdown(self, node: int, factor: float) -> None:
        """Degrade a node's effective throughput by ``factor`` (>= 1).

        ``factor=1.0`` clears the slowdown.  A slow disk on one replica
        drags the whole ring because the slowest live node bounds the
        balanced per-node rate.
        """
        self._check_node_index(node)
        if factor < 1.0:
            raise DatastoreError(f"slowdown factor must be >= 1, got {factor}")
        if factor == 1.0:
            self._slowdown.pop(node, None)
        else:
            self._slowdown[node] = float(factor)

    @property
    def live_node_indices(self) -> List[int]:
        return [i for i in range(self.n_nodes) if i not in self._down]

    @property
    def down_node_indices(self) -> List[int]:
        return sorted(self._down)

    # -- replication math -----------------------------------------------------------

    @property
    def read_fanout(self) -> int:
        """Replica reads per logical read, set by the consistency level.

        The paper's throughput-oriented setup reads at ONE; QUORUM and
        ALL trade throughput for stronger consistency (§2.1's CAP
        discussion — metagenomics tolerates stale reads, so ONE is the
        domain-appropriate choice).
        """
        if self.consistency_level == "ONE":
            return 1
        if self.consistency_level == "QUORUM":
            return self.replication_factor // 2 + 1
        return self.replication_factor

    def _effective_rf(self) -> int:
        """Replicas a write can actually land on (down nodes skipped)."""
        return min(self.replication_factor, len(self.live_node_indices))

    def _effective_read_fanout(self) -> int:
        return min(self.read_fanout, self._effective_rf())

    def _node_read_share(self, read_ratio: float) -> float:
        """Read share of the per-node op mix after fan-out."""
        r, w = read_ratio, 1.0 - read_ratio
        reads = r * self._effective_read_fanout()
        return reads / (reads + w * self._effective_rf())

    def _fanout(self, read_ratio: float) -> float:
        """Node-ops per logical op."""
        r, w = read_ratio, 1.0 - read_ratio
        return r * self._effective_read_fanout() + w * self._effective_rf()

    def _node_capacity(self, node: int, node_rr: float) -> float:
        cap = self.nodes[node].sustainable_throughput(node_rr)
        factor = self._slowdown.get(node)
        return cap if factor is None else cap / factor

    def sustainable_throughput(self, read_ratio: float) -> float:
        """Logical ops/s the cluster sustains at this instant."""
        live = self.live_node_indices
        if not live:
            raise DatastoreError("no live nodes")
        node_rr = self._node_read_share(read_ratio)
        fanout = self._fanout(read_ratio)
        per_node = min(self._node_capacity(i, node_rr) for i in live)
        server_cap = per_node * len(live) / fanout
        client_cap = self.n_shooters * SHOOTER_CAPACITY_OPS
        return min(server_cap, client_cap)

    # -- stepping --------------------------------------------------------------

    def step(self, read_ratio: float, dt: float = 1.0) -> ClusterStepResult:
        """Advance the whole cluster ``dt`` seconds."""
        x = self.sustainable_throughput(read_ratio)
        live = self.live_node_indices
        node_rr = self._node_read_share(read_ratio)
        node_ops = x * self._fanout(read_ratio) / len(live)
        per_node = []
        for i, node in enumerate(self.nodes):
            if i in self._down:
                per_node.append(0.0)
                continue
            node.apply_external_load(
                reads=node_ops * node_rr * dt,
                writes=node_ops * (1.0 - node_rr) * dt,
                dt=dt,
            )
            per_node.append(node_ops)
        self.t += dt
        return ClusterStepResult(
            t=self.t, throughput=x, per_node_throughput=per_node, dt=dt
        )

    def run(self, read_ratio: float, duration: float, dt: float = 1.0):
        """Step the cluster for ``duration`` seconds; per-step results."""
        steps = max(1, int(round(duration / dt)))
        return [self.step(read_ratio, dt) for _ in range(steps)]

    def load(self, n_keys: int) -> None:
        """Load phase: each node stores its replicated share of keys.

        The total stored replica count is exactly
        ``n_keys * replication_factor``: the division remainder is
        spread over the first nodes instead of being silently dropped.
        """
        total = n_keys * self.replication_factor
        base, remainder = divmod(total, self.n_nodes)
        for i, node in enumerate(self.nodes):
            node.load(base + (1 if i < remainder else 0))

    def reconfigure(self, knobs: EngineKnobs) -> None:
        """Push new engine knobs to every node (legacy uniform push).

        This is the pre-verified-actuation path: it cannot fail, ignores
        refusals/isolation, and syncs every node's applied config to the
        intended one (the knobs are assumed to derive from it).  New code
        should go through :meth:`apply_config`, which applies per node
        and reports what actually landed.
        """
        for node in self.nodes:
            node.reconfigure(knobs)
        self._applied = [self.config] * self.n_nodes

    # -- verified actuation ---------------------------------------------------

    def set_intended(self, config: Configuration) -> None:
        """Declare the ring's intended configuration (no knobs pushed)."""
        self.config = config

    def apply_node_config(
        self, node: int, config: Configuration, knobs: Optional[EngineKnobs] = None
    ) -> bool:
        """Push ``config`` to one node; returns whether it actually landed.

        A node armed with push refusals consumes one refusal and keeps
        its old configuration; a config-isolated node is unreachable and
        keeps it too.  Either way the failure is *silent* at the data
        plane — the return value (and :meth:`describe_drift` read-back)
        is the only way to know, exactly like a real partial push.
        """
        self._check_node_index(node)
        if self._push_refusals.get(node, 0) > 0:
            remaining = self._push_refusals[node] - 1
            if remaining:
                self._push_refusals[node] = remaining
            else:
                del self._push_refusals[node]
            return False
        if node in self._isolated:
            return False
        if knobs is None:
            knobs = self.datastore.effective_knobs(config)
        self.nodes[node].reconfigure(knobs)
        self._applied[node] = config
        return True

    def apply_config(
        self, config: Configuration, nodes: Optional[Sequence[int]] = None
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Push ``config`` to ``nodes`` (default: all); per-node results.

        Sets the intended config, then applies node by node; returns
        ``(applied, failed)`` index tuples.  Partial failure is not an
        exception — it is the drift state :meth:`describe_drift` reports
        and the middleware reconciles.
        """
        targets = range(self.n_nodes) if nodes is None else list(nodes)
        for node in targets:
            self._check_node_index(node)
        self.config = config
        knobs = self.datastore.effective_knobs(config)
        applied: List[int] = []
        failed: List[int] = []
        for node in targets:
            if self.apply_node_config(node, config, knobs=knobs):
                applied.append(node)
            else:
                failed.append(node)
        return tuple(applied), tuple(failed)

    @property
    def applied_configs(self) -> Tuple[Configuration, ...]:
        """The configuration each node is actually running."""
        return tuple(self._applied)

    def describe_drift(self) -> DriftReport:
        """Intended-vs-applied fingerprints, per node.

        Live nodes whose applied config differs from the intended one
        are the drifted set (they are *serving* the wrong knobs); down
        drifted nodes are reported separately.
        """
        intended = self.config.fingerprint()
        fingerprints = tuple(c.fingerprint() for c in self._applied)
        drifted = tuple(
            i
            for i, fp in enumerate(fingerprints)
            if fp != intended and i not in self._down
        )
        down_drifted = tuple(
            i
            for i, fp in enumerate(fingerprints)
            if fp != intended and i in self._down
        )
        return DriftReport(
            intended_fingerprint=intended,
            node_fingerprints=fingerprints,
            drifted_nodes=drifted,
            down_drifted_nodes=down_drifted,
        )

    def settle(self, max_seconds: float = 600.0) -> None:
        """Drain every node's background work (between phases)."""
        for node in self.nodes:
            node.settle(max_seconds)

    def __repr__(self) -> str:
        down = f", down={sorted(self._down)}" if self._down else ""
        return (
            f"Cluster({self.datastore.name} x{self.n_nodes}, "
            f"RF={self.replication_factor}, shooters={self.n_shooters}{down})"
        )
