"""Multi-node peer-to-peer cluster (paper §4.9, Table 3).

Nodes are independent simulated servers joined in a Cassandra-style
ring.  Each logical write is applied to ``replication_factor`` replicas;
each logical read is served by one replica (consistency level ONE, the
throughput-oriented choice).  Client capacity is bounded by the number
of YCSB "shooters" — the paper adds a shooter per server to keep the
cluster loaded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config.space import Configuration
from repro.datastore.base import Datastore
from repro.errors import DatastoreError
from repro.lsm.analytic import AnalyticLSMModel, WorkloadProfile
from repro.sim.rng import SeedLike, SeedSequence, derive_rng

#: Operations/second one benchmark client ("shooter") can generate.
SHOOTER_CAPACITY_OPS = 130_000.0

#: Read consistency levels: how many replicas serve each logical read.
CONSISTENCY_LEVELS = ("ONE", "QUORUM", "ALL")


@dataclass
class ClusterStepResult:
    """Aggregate outcome of one cluster time step."""

    t: float
    throughput: float          # logical ops/s across the cluster
    per_node_throughput: List[float]


class Cluster:
    """A ring of identically configured simulated datastore nodes."""

    def __init__(
        self,
        datastore: Datastore,
        config: Configuration,
        n_nodes: int,
        replication_factor: int = 1,
        n_shooters: int = 1,
        consistency_level: str = "ONE",
        profile: Optional[WorkloadProfile] = None,
        seed: SeedLike = 0,
    ):
        if n_nodes <= 0:
            raise DatastoreError("cluster needs at least one node")
        if not (1 <= replication_factor <= n_nodes):
            raise DatastoreError(
                f"replication factor {replication_factor} must be in [1, {n_nodes}]"
            )
        if n_shooters <= 0:
            raise DatastoreError("need at least one shooter")
        if consistency_level not in CONSISTENCY_LEVELS:
            raise DatastoreError(
                f"consistency level {consistency_level!r} not in {CONSISTENCY_LEVELS}"
            )
        self.datastore = datastore
        self.config = config
        self.n_nodes = n_nodes
        self.replication_factor = replication_factor
        self.n_shooters = n_shooters
        self.consistency_level = consistency_level
        root = seed if isinstance(seed, int) else int(derive_rng(seed).integers(2**31))
        seeds = SeedSequence(root)
        self.nodes: List[AnalyticLSMModel] = [
            datastore.new_analytic_instance(
                config, profile=profile, seed=seeds.stream(f"node{i}")
            )
            for i in range(n_nodes)
        ]
        self.t = 0.0

    # -- replication math -----------------------------------------------------------

    @property
    def read_fanout(self) -> int:
        """Replica reads per logical read, set by the consistency level.

        The paper's throughput-oriented setup reads at ONE; QUORUM and
        ALL trade throughput for stronger consistency (§2.1's CAP
        discussion — metagenomics tolerates stale reads, so ONE is the
        domain-appropriate choice).
        """
        if self.consistency_level == "ONE":
            return 1
        if self.consistency_level == "QUORUM":
            return self.replication_factor // 2 + 1
        return self.replication_factor

    def _node_read_share(self, read_ratio: float) -> float:
        """Read share of the per-node op mix after fan-out."""
        r, w = read_ratio, 1.0 - read_ratio
        reads = r * self.read_fanout
        return reads / (reads + w * self.replication_factor)

    def _fanout(self, read_ratio: float) -> float:
        """Node-ops per logical op."""
        r, w = read_ratio, 1.0 - read_ratio
        return r * self.read_fanout + w * self.replication_factor

    def sustainable_throughput(self, read_ratio: float) -> float:
        """Logical ops/s the cluster sustains at this instant."""
        node_rr = self._node_read_share(read_ratio)
        fanout = self._fanout(read_ratio)
        per_node = min(n.sustainable_throughput(node_rr) for n in self.nodes)
        server_cap = per_node * self.n_nodes / fanout
        client_cap = self.n_shooters * SHOOTER_CAPACITY_OPS
        return min(server_cap, client_cap)

    # -- stepping --------------------------------------------------------------

    def step(self, read_ratio: float, dt: float = 1.0) -> ClusterStepResult:
        """Advance the whole cluster ``dt`` seconds."""
        x = self.sustainable_throughput(read_ratio)
        node_rr = self._node_read_share(read_ratio)
        node_ops = x * self._fanout(read_ratio) / self.n_nodes
        per_node = []
        for node in self.nodes:
            node.apply_external_load(
                reads=node_ops * node_rr * dt,
                writes=node_ops * (1.0 - node_rr) * dt,
                dt=dt,
            )
            per_node.append(node_ops)
        self.t += dt
        return ClusterStepResult(t=self.t, throughput=x, per_node_throughput=per_node)

    def run(self, read_ratio: float, duration: float, dt: float = 1.0):
        """Step the cluster for ``duration`` seconds; per-step results."""
        steps = max(1, int(round(duration / dt)))
        return [self.step(read_ratio, dt) for _ in range(steps)]

    def load(self, n_keys: int) -> None:
        """Load phase: each node stores its replicated share of keys."""
        per_node_keys = int(n_keys * self.replication_factor / self.n_nodes)
        for node in self.nodes:
            node.load(per_node_keys)

    def settle(self, max_seconds: float = 600.0) -> None:
        """Drain every node's background work (between phases)."""
        for node in self.nodes:
            node.settle(max_seconds)

    def __repr__(self) -> str:
        return (
            f"Cluster({self.datastore.name} x{self.n_nodes}, "
            f"RF={self.replication_factor}, shooters={self.n_shooters})"
        )
