"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration problems from runtime ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """An invalid parameter name, value, or configuration was supplied."""


class WorkloadError(ReproError):
    """A workload specification or trace is malformed."""


class DatastoreError(ReproError):
    """The datastore was driven into an invalid state or misused."""


class KeyNotFound(DatastoreError):
    """A read targeted a key that does not exist (or was deleted)."""

    def __init__(self, key: str):
        super().__init__(f"key not found: {key!r}")
        self.key = key


class ActuationError(DatastoreError):
    """The verified-actuation layer was misused.

    Raised for repair requests that target unknown or non-drifted nodes,
    drift verification against an unprovisioned adapter, and other
    misuses of the push/verify/repair protocol.  *Detected* drift is
    never an exception — it is a reported, reconcilable state
    (``actuate.drift`` events); this error marks protocol misuse.
    """


class TrainingError(ReproError):
    """Model training could not proceed (bad shapes, empty data, ...)."""


class PersistenceError(ReproError):
    """An on-disk artifact is missing, truncated, or corrupt.

    Raised by every loader of external state (surrogate files, dataset
    artifacts, campaign journals, training checkpoints, SSTable scrubs)
    so callers never see raw ``JSONDecodeError``/``KeyError`` from a
    torn or bit-flipped file.
    """


class SearchError(ReproError):
    """Configuration search was invoked with an unusable setup."""


class FaultError(ReproError):
    """A fault — injected or real — disrupted an operation.

    Raised for fault-plan misuse (out-of-range node, negative schedule)
    and for failures that will not go away on their own.  See
    :class:`TransientError` for the retryable flavour.
    """


class MiddlewareError(ReproError):
    """The multi-tenant middleware was misused or hit an unservable state.

    Raised by the serve layer for conditions that are not a single
    tenant's fault — e.g. a sharded window round whose shared
    recommendation cache evicted mid-round, which would silently break
    the sharded-equals-serial bit-identity contract.
    """


class GuardError(MiddlewareError):
    """An overload-protection (guard) spec or component was misconfigured.

    Raised for invalid SLO specs (negative throughput floors, error
    budgets outside [0, 1]), breaker/bulkhead settings that cannot work
    (zero failure thresholds, empty spans), and capacity ledgers with a
    non-positive modeled capacity.
    """


class TransientError(FaultError):
    """A retryable fault: the same operation may succeed if reissued.

    The online controller's retry/backoff machinery and the execution
    backend's worker-crash containment both key off this type; anything
    else escapes immediately.
    """
