"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration problems from runtime ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """An invalid parameter name, value, or configuration was supplied."""


class WorkloadError(ReproError):
    """A workload specification or trace is malformed."""


class DatastoreError(ReproError):
    """The datastore was driven into an invalid state or misused."""


class KeyNotFound(DatastoreError):
    """A read targeted a key that does not exist (or was deleted)."""

    def __init__(self, key: str):
        super().__init__(f"key not found: {key!r}")
        self.key = key


class TrainingError(ReproError):
    """Model training could not proceed (bad shapes, empty data, ...)."""


class SearchError(ReproError):
    """Configuration search was invoked with an unusable setup."""
