"""Execution runtime: backends and structured progress events.

The offline Rafiki stages — the 220-point data-collection campaign
(§4.2), the ~25-parameter OFAT ANOVA sweep (§3.4), and the 20-net
ensemble training (§3.6) — are all embarrassingly parallel: every work
unit is independent and carries its own pre-derived random stream.  This
package provides the two pieces that let those stages scale with cores
without giving up the repo's core invariant (bitwise determinism under a
seed):

* :class:`ExecutionBackend` — ``map_tasks(fn, tasks)`` over independent,
  picklable work units.  :class:`SerialBackend` runs them inline;
  :class:`ProcessPoolBackend` fans them out over worker processes.
  Because every task ships its own :class:`~repro.sim.rng.SeedSequence`-
  derived generator, results are identical regardless of scheduling.
* :class:`EventBus` — structured pub/sub progress events replacing the
  ad-hoc ``progress: Callable[[str], None]`` callbacks that used to be
  threaded through :class:`~repro.core.rafiki.RafikiPipeline`.
* :mod:`repro.runtime.stateship` — content-addressed state shipping for
  persistent pools: the scheduler ships big shared state (the rafiki
  blob) once per fingerprint change and fingerprints-only afterwards,
  with worker-side blob caches and a one-shot miss/refetch protocol.
"""

from repro.runtime.backend import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    resolve_backend,
)
from repro.runtime.deprecation import reset_deprecation_registry, warn_deprecated
from repro.runtime.events import Event, EventBus, ScopedEventBus, callback_subscriber
from repro.runtime.stateship import (
    StateMiss,
    StateMissError,
    StateShipment,
    StateShipper,
    install_shipment,
    state_fingerprint,
)

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "resolve_backend",
    "Event",
    "EventBus",
    "ScopedEventBus",
    "callback_subscriber",
    "warn_deprecated",
    "reset_deprecation_registry",
    "StateShipment",
    "StateShipper",
    "StateMiss",
    "StateMissError",
    "install_shipment",
    "state_fingerprint",
]
