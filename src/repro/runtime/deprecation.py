"""One funnel for the package's deprecation warnings.

The legacy shims (string ``progress`` callbacks bridged onto the
:class:`~repro.runtime.events.EventBus`, the controller's string
``decision_mode``) each used to document their deprecation in prose
only; this module makes them *warn*, exactly once per process per shim,
so long-running campaigns are not spammed while interactive users still
see the migration hint.
"""

from __future__ import annotations

import warnings
from typing import Set

__all__ = ["warn_deprecated", "reset_deprecation_registry"]

_warned: Set[str] = set()


def warn_deprecated(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` for ``key`` the first time only.

    ``key`` names the shim (e.g. ``"pipeline.progress"``); subsequent
    calls with the same key are silent.  ``stacklevel`` defaults to the
    shim's caller (helper -> shim -> caller).
    """
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_registry() -> None:
    """Forget which shims have warned (test isolation hook)."""
    _warned.clear()
