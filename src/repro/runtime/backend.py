"""Execution backends for independent work units.

Contract: ``map_tasks(fn, tasks)`` applies ``fn`` to every task and
returns the results **in task order**.  Tasks must be self-contained —
in particular, any randomness a task consumes must travel *inside* the
task as a pre-derived :class:`numpy.random.Generator` (see
:class:`~repro.sim.rng.SeedSequence`).  Under that discipline the
results are bitwise-identical no matter how the backend schedules the
work, which is what lets the determinism test suite run the same
pipeline through :class:`SerialBackend` and :class:`ProcessPoolBackend`
and compare artifacts exactly.

``on_result(index, result)`` is an optional completion hook, invoked in
the *parent* process as results arrive (completion order for the process
pool, task order for the serial backend).  Progress reporting hangs off
this hook so workers never need a channel back to the UI.

Worker crashes are contained rather than fatal: when the pool breaks
(a worker segfaults, is OOM-killed, or otherwise dies mid-task), the
in-flight tasks are requeued onto a fresh pool with a bounded per-task
retry budget, and if the pool keeps collapsing the remaining tasks run
serially in the parent — so a campaign finishes instead of dying with a
raw ``BrokenProcessPool``.  Because a re-run task re-pickles its
pristine parent-side state (including its RNG), retried results are
bitwise-identical to first-try results.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence

from repro.runtime.events import EventBus

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "resolve_backend",
]


class ExecutionBackend:
    """Protocol for executing independent tasks."""

    def map_tasks(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """Apply ``fn`` to each task; return results in task order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Run every task inline, in order — the reference scheduling."""

    def map_tasks(self, fn, tasks, on_result=None) -> List[Any]:
        results: List[Any] = []
        for index, task in enumerate(tasks):
            result = fn(task)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results


def _warm_task(index: int) -> int:
    """No-op task used by :meth:`ProcessPoolBackend.warm`."""
    return index


class ProcessPoolBackend(ExecutionBackend):
    """Fan tasks out over worker processes.

    ``fn`` and the tasks must be picklable (module-level functions and
    plain dataclasses/arrays).  With ``workers=1`` or a single task,
    execution falls back to the serial path to avoid pointless process
    overhead.

    **Pool lifecycle.**  In the default *persistent* mode one pool is
    created lazily on first use and reused across ``map_tasks`` calls
    until ``close()`` (or context-manager exit) shuts it down — a
    long-lived serve loop pays worker spawn (and any worker-side state
    warm-up, see :mod:`repro.runtime.stateship`) once, not per round.
    ``persistent=False`` tears the pool down after every ``map_tasks``
    call instead, trading the reuse for a zero-idle-footprint backend;
    it is also the reference mode the state-shipping tests use to force
    cold workers.  ``pools_created`` / ``map_calls`` count both modes'
    behaviour for observability, and ``warm()`` pre-spawns the workers
    so the first real round does not absorb the fork/exec cost.

    ``task_retries`` bounds how many times one task may be requeued
    after taking its pool down with it; ``pool_restarts`` bounds how
    many fresh pools one ``map_tasks`` call will build before giving up
    on process isolation and finishing the remaining tasks serially.
    ``events`` (optional) receives ``backend.pool_broken`` /
    ``backend.serial_fallback`` records for auditing.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        max_pending: Optional[int] = None,
        task_retries: int = 2,
        pool_restarts: int = 2,
        events: Optional[EventBus] = None,
        persistent: bool = True,
    ):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if task_retries < 0:
            raise ValueError("task_retries must be >= 0")
        if pool_restarts < 0:
            raise ValueError("pool_restarts must be >= 0")
        self.workers = workers or os.cpu_count() or 1
        #: Cap on simultaneously submitted futures, bounding memory for
        #: large campaigns; defaults to 4 in-flight tasks per worker.
        self.max_pending = max_pending or 4 * self.workers
        self.task_retries = task_retries
        self.pool_restarts = pool_restarts
        self.events = events
        self.persistent = persistent
        #: Lifetime counters: pools built (lazy creations + post-crash
        #: rebuilds) and ``map_tasks`` calls served.  A persistent pool
        #: that never breaks shows ``pools_created == 1`` however many
        #: rounds it serves.
        self.pools_created = 0
        self.map_calls = 0
        self._executor: Optional[ProcessPoolExecutor] = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
            self.pools_created += 1
        return self._executor

    def warm(self) -> None:
        """Pre-spawn the worker processes (persistent mode's one-time
        cost), so the first real ``map_tasks`` call measures work, not
        fork/exec.  A no-op for ``workers=1``."""
        if self.workers == 1:
            return
        pool = self._pool()
        list(pool.map(_warm_task, range(2 * self.workers)))

    def _discard_pool(self) -> None:
        """Drop a broken executor without waiting on its corpses."""
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    def _publish(self, topic: str, message: str, **payload) -> None:
        if self.events is not None:
            self.events.publish(topic, message, **payload)

    def map_tasks(self, fn, tasks, on_result=None) -> List[Any]:
        self.map_calls += 1
        tasks = list(tasks)
        if self.workers == 1 or len(tasks) <= 1:
            return SerialBackend().map_tasks(fn, tasks, on_result=on_result)
        try:
            return self._map_pooled(fn, tasks, on_result)
        finally:
            if not self.persistent:
                self.close()

    def _map_pooled(self, fn, tasks, on_result) -> List[Any]:
        results: List[Any] = [None] * len(tasks)
        completed = [False] * len(tasks)
        attempts = [0] * len(tasks)
        queue = deque(range(len(tasks)))
        pending: dict = {}
        restarts = 0

        def finish(index: int, result: Any) -> None:
            results[index] = result
            completed[index] = True
            if on_result is not None:
                on_result(index, result)

        def run_serially() -> None:
            for index in range(len(tasks)):
                if not completed[index]:
                    finish(index, fn(tasks[index]))

        while queue or pending:
            victims: Optional[List[int]] = None
            try:
                while queue and len(pending) < self.max_pending:
                    index = queue.popleft()
                    attempts[index] += 1
                    pending[self._pool().submit(fn, tasks[index])] = index
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                # ``done`` can mix real completions with futures poisoned
                # by the pool's death; harvest the former, collect the
                # latter as victims alongside the still-pending tasks.
                crashed: List[int] = []
                for future in done:
                    index = pending.pop(future)
                    try:
                        finish(index, future.result())  # re-raises task errors
                    except BrokenProcessPool:
                        crashed.append(index)
                if crashed:
                    victims = sorted(crashed + list(pending.values()))
            except BrokenProcessPool:
                # submit()/wait() on an already-broken pool: every
                # in-flight task died without a result, all safe to re-run.
                victims = sorted(pending.values())
            if victims is None:
                continue
            pending.clear()
            self._discard_pool()
            restarts += 1
            exhausted = [i for i in victims if attempts[i] > self.task_retries]
            self._publish(
                "backend.pool_broken",
                f"worker pool broke (restart {restarts}); "
                f"{len(victims)} tasks requeued",
                restarts=restarts, victims=victims, exhausted=exhausted,
            )
            if restarts > self.pool_restarts or exhausted:
                # Containment failed: give up on process isolation and
                # finish the remainder in the parent, in order.
                self._publish(
                    "backend.serial_fallback",
                    "falling back to serial execution for "
                    f"{sum(1 for c in completed if not c)} remaining tasks",
                    restarts=restarts, exhausted=exhausted,
                )
                run_serially()
                return results
            # Retry the victims first, preserving their original order.
            queue.extendleft(reversed(victims))
        return results

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None


def resolve_backend(
    backend: Optional[ExecutionBackend] = None, workers: Optional[int] = None
) -> ExecutionBackend:
    """Normalize backend arguments: an explicit backend wins; otherwise
    ``workers > 1`` selects a process pool and ``workers = 1`` is serial."""
    if backend is not None:
        return backend
    if workers is not None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers > 1:
            return ProcessPoolBackend(workers)
    return SerialBackend()
