"""Execution backends for independent work units.

Contract: ``map_tasks(fn, tasks)`` applies ``fn`` to every task and
returns the results **in task order**.  Tasks must be self-contained —
in particular, any randomness a task consumes must travel *inside* the
task as a pre-derived :class:`numpy.random.Generator` (see
:class:`~repro.sim.rng.SeedSequence`).  Under that discipline the
results are bitwise-identical no matter how the backend schedules the
work, which is what lets the determinism test suite run the same
pipeline through :class:`SerialBackend` and :class:`ProcessPoolBackend`
and compare artifacts exactly.

``on_result(index, result)`` is an optional completion hook, invoked in
the *parent* process as results arrive (completion order for the process
pool, task order for the serial backend).  Progress reporting hangs off
this hook so workers never need a channel back to the UI.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, List, Optional, Sequence

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "resolve_backend",
]


class ExecutionBackend:
    """Protocol for executing independent tasks."""

    def map_tasks(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """Apply ``fn`` to each task; return results in task order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Run every task inline, in order — the reference scheduling."""

    def map_tasks(self, fn, tasks, on_result=None) -> List[Any]:
        results: List[Any] = []
        for index, task in enumerate(tasks):
            result = fn(task)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results


class ProcessPoolBackend(ExecutionBackend):
    """Fan tasks out over worker processes.

    ``fn`` and the tasks must be picklable (module-level functions and
    plain dataclasses/arrays).  The pool is created lazily on first use
    and reused across calls; ``close()`` (or use as a context manager)
    shuts it down.  With ``workers=1`` or a single task, execution falls
    back to the serial path to avoid pointless process overhead.
    """

    def __init__(self, workers: Optional[int] = None, max_pending: Optional[int] = None):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers or os.cpu_count() or 1
        #: Cap on simultaneously submitted futures, bounding memory for
        #: large campaigns; defaults to 4 in-flight tasks per worker.
        self.max_pending = max_pending or 4 * self.workers
        self._executor: Optional[ProcessPoolExecutor] = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def map_tasks(self, fn, tasks, on_result=None) -> List[Any]:
        tasks = list(tasks)
        if self.workers == 1 or len(tasks) <= 1:
            return SerialBackend().map_tasks(fn, tasks, on_result=on_result)

        pool = self._pool()
        results: List[Any] = [None] * len(tasks)
        pending = {}
        next_index = 0

        def drain(return_when):
            nonlocal pending
            done, not_done = wait(pending, return_when=return_when)
            for future in done:
                index = pending[future]
                results[index] = future.result()  # re-raises worker errors
                if on_result is not None:
                    on_result(index, results[index])
            pending = {f: pending[f] for f in not_done}

        while next_index < len(tasks):
            while next_index < len(tasks) and len(pending) < self.max_pending:
                pending[pool.submit(fn, tasks[next_index])] = next_index
                next_index += 1
            drain(FIRST_COMPLETED)
        while pending:
            drain(FIRST_COMPLETED)
        return results

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None


def resolve_backend(
    backend: Optional[ExecutionBackend] = None, workers: Optional[int] = None
) -> ExecutionBackend:
    """Normalize backend arguments: an explicit backend wins; otherwise
    ``workers > 1`` selects a process pool and ``workers = 1`` is serial."""
    if backend is not None:
        return backend
    if workers is not None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers > 1:
            return ProcessPoolBackend(workers)
    return SerialBackend()
