"""Content-addressed state shipping for persistent worker pools.

The sharded serve loop used to re-pickle the entire shared rafiki state
— full ensemble weights plus recommendation cache — into *every* worker
task of *every* window round.  That is the classic inference-serving
IPC-amortization problem: the model should ship once, and steady-state
rounds should ship O(1) bytes.

This module provides the two halves of that protocol:

* **Parent side** — :class:`StateShipper` remembers the fingerprint of
  the last blob it broadcast.  ``prepare(fingerprint, blob_factory)``
  returns a :class:`StateShipment` carrying the full blob only when the
  fingerprint changed (first round, post-retrain, cache growth);
  otherwise the shipment carries just the fingerprint — a few dozen
  bytes.  ``refetch()`` re-attaches the blob for workers that missed.
* **Worker side** — :func:`install_shipment` resolves a shipment
  against a small per-process blob cache keyed by fingerprint.  A
  fingerprint-only shipment that finds no cached blob (a brand-new or
  restarted worker) raises :class:`StateMissError`; the task function
  returns a :class:`StateMiss` marker instead of a result, and the
  parent re-runs exactly that task with the blob attached.

The protocol is observable on the event bus:

* ``backend.state_shipped_bytes`` — a full blob travelled (payload:
  ``bytes``, ``fingerprint``, ``reason`` of ``"change"`` or
  ``"refetch"``).
* ``backend.state_hit`` — a worker served a task from its blob cache.
* ``backend.state_miss`` — a worker lacked the blob; a one-shot refetch
  followed.

Determinism: the shipped blob bytes (and therefore every worker-side
unpickle) are identical whether they travelled this round or were
cached rounds ago, so results are bit-identical to full shipping.  The
``backend.state_*`` events themselves are *exempt* from the serial ==
sharded event-sequence contract — which worker holds which blob depends
on OS scheduling — and equivalence checks filter them out (see
``tests/test_sharded_scheduler.py``).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

from repro.runtime.events import EventBus

__all__ = [
    "StateShipment",
    "StateShipper",
    "StateMiss",
    "StateMissError",
    "install_shipment",
    "state_fingerprint",
    "reset_worker_state_cache",
]

#: Hex digest length of a fingerprint — 16 hex chars (64 bits) keeps the
#: steady-state payload tiny while making accidental collision between
#: the handful of states one pool ever sees astronomically unlikely.
FINGERPRINT_HEX_CHARS = 16

#: Blobs a worker process retains, newest-first.  One slot would do for
#: a single scheduler; a few slots keep interleaved backends (tests,
#: serial fallbacks running in the parent) from thrashing each other.
WORKER_CACHE_SLOTS = 4


def state_fingerprint(blob: bytes) -> str:
    """Stable content hash of a state blob."""
    return hashlib.sha256(blob).hexdigest()[:FINGERPRINT_HEX_CHARS]


@dataclass(frozen=True)
class StateShipment:
    """One round's state payload: a fingerprint, with the blob attached
    only when the receiving side cannot already have it."""

    fingerprint: str
    blob: Optional[bytes] = None

    @property
    def payload_bytes(self) -> int:
        """Bytes this shipment adds to one task's pickle."""
        return len(self.fingerprint) + (len(self.blob) if self.blob else 0)


@dataclass(frozen=True)
class StateMiss:
    """Returned by a task function whose worker lacked the blob; the
    parent re-runs the task with the blob attached."""

    fingerprint: str


class StateMissError(KeyError):
    """A fingerprint-only shipment found no cached blob in this worker."""


#: Per-process blob cache, fingerprint -> blob, newest last.
_WORKER_BLOBS: "OrderedDict[str, bytes]" = OrderedDict()


def install_shipment(shipment: StateShipment) -> tuple:
    """Resolve a shipment to blob bytes in the current (worker) process.

    Returns ``(blob, from_cache)``.  A shipment carrying its blob is
    cached and returned (``from_cache=False``); a fingerprint-only
    shipment is served from the cache (``from_cache=True``) or raises
    :class:`StateMissError`.
    """
    if shipment.blob is not None:
        _WORKER_BLOBS[shipment.fingerprint] = shipment.blob
        _WORKER_BLOBS.move_to_end(shipment.fingerprint)
        while len(_WORKER_BLOBS) > WORKER_CACHE_SLOTS:
            _WORKER_BLOBS.popitem(last=False)
        return shipment.blob, False
    blob = _WORKER_BLOBS.get(shipment.fingerprint)
    if blob is None:
        raise StateMissError(shipment.fingerprint)
    _WORKER_BLOBS.move_to_end(shipment.fingerprint)
    return blob, True


def reset_worker_state_cache() -> None:
    """Drop every cached blob in this process (test isolation hook)."""
    _WORKER_BLOBS.clear()


class StateShipper:
    """Parent-side half of the protocol: decides when the blob travels.

    One shipper serves one logical state (the scheduler's shared
    rafiki).  Counters (``blob_ships``, ``blob_bytes``, ``hits``,
    ``misses``, ``fingerprint_tasks``, ``payload_bytes``) accumulate
    over the shipper's life and feed the serve benchmark's
    ``payload_bytes_per_round`` column.
    """

    def __init__(self, events: Optional[EventBus] = None):
        self.events = events
        self.last_fingerprint: Optional[str] = None
        self._blob: Optional[bytes] = None
        self.blob_ships = 0
        self.blob_bytes = 0
        self.fingerprint_tasks = 0
        self.payload_bytes = 0
        self.hits = 0
        self.misses = 0

    def _publish(self, topic: str, message: str, **payload) -> None:
        if self.events is not None:
            self.events.publish(topic, message, **payload)

    def prepare(
        self, fingerprint: str, blob_factory: Callable[[], bytes]
    ) -> StateShipment:
        """Shipment for one round: blob attached only on a fingerprint
        change.  ``blob_factory`` is only invoked when the blob must
        actually travel, so steady-state rounds skip the pickling too."""
        if fingerprint == self.last_fingerprint and self._blob is not None:
            return StateShipment(fingerprint)
        blob = blob_factory()
        self.last_fingerprint = fingerprint
        self._blob = blob
        self.blob_ships += 1
        self.blob_bytes += len(blob)
        self._publish(
            "backend.state_shipped_bytes",
            f"state blob shipped ({len(blob):,} bytes, "
            f"fingerprint {fingerprint})",
            bytes=len(blob),
            fingerprint=fingerprint,
            reason="change",
        )
        return StateShipment(fingerprint, blob)

    def refetch(self, fingerprint: str) -> StateShipment:
        """Blob-attached shipment for a worker that missed; one-shot."""
        if fingerprint != self.last_fingerprint or self._blob is None:
            raise StateMissError(
                f"no blob held for fingerprint {fingerprint!r} "
                f"(last shipped: {self.last_fingerprint!r})"
            )
        self.blob_ships += 1
        self.blob_bytes += len(self._blob)
        self._publish(
            "backend.state_shipped_bytes",
            f"state blob re-shipped after worker miss "
            f"({len(self._blob):,} bytes)",
            bytes=len(self._blob),
            fingerprint=fingerprint,
            reason="refetch",
        )
        return StateShipment(fingerprint, self._blob)

    def count_task(self, shipment: StateShipment) -> None:
        """Account one task's state payload."""
        self.payload_bytes += shipment.payload_bytes
        if shipment.blob is None:
            self.fingerprint_tasks += 1

    def record_hit(self, **payload) -> None:
        """A worker served its task from the cached blob."""
        self.hits += 1
        self._publish(
            "backend.state_hit", "worker served state from blob cache", **payload
        )

    def record_miss(self, **payload) -> None:
        """A worker lacked the blob; the task is being refetched."""
        self.misses += 1
        self._publish(
            "backend.state_miss",
            "worker missed state blob; refetching",
            **payload,
        )

    def report(self) -> dict:
        """Counters snapshot for benchmarks and CLI summaries."""
        return {
            "blob_ships": self.blob_ships,
            "blob_bytes": self.blob_bytes,
            "fingerprint_tasks": self.fingerprint_tasks,
            "payload_bytes": self.payload_bytes,
            "state_hits": self.hits,
            "state_misses": self.misses,
        }
