"""Structured progress events.

The seed repo threaded ``progress: Callable[[str], None]`` callbacks
through the pipeline, which meant every layer had to agree on a string
format and nothing downstream could filter or aggregate.  The
:class:`EventBus` replaces that: producers publish :class:`Event`
records on dotted topics (``"collect.sample"``, ``"anova.parameter"``,
``"train.member"``, ``"pipeline.stage"``) and consumers subscribe to
exact topics or topic prefixes.

Crash-recovery actions publish under the ``recovery`` prefix (see
:mod:`repro.recovery`): ``recovery.resumed`` when durable state let a
restarted campaign or fit skip work, ``recovery.journal_replayed`` when
a write-ahead log was re-applied (LSM commitlog replay), and
``recovery.corrupt_artifact`` when a checksummed file failed
verification.

The bus is intentionally synchronous and in-process: it is a progress /
observability channel, not a task queue (that is the execution
backend's job, see :mod:`repro.runtime.backend`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Event", "EventBus", "ScopedEventBus", "callback_subscriber"]


@dataclass(frozen=True)
class Event:
    """One structured progress record."""

    topic: str
    message: str = ""
    payload: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # human-readable fallback rendering
        return f"[{self.topic}] {self.message}" if self.message else f"[{self.topic}]"


class EventBus:
    """Synchronous pub/sub over dotted topics.

    A subscription to ``"collect"`` receives ``"collect"`` and every
    subtopic (``"collect.sample"``, ...); ``topic=None`` receives
    everything.  ``subscribe`` returns an unsubscribe callable.
    """

    def __init__(self):
        self._subscribers: List[Tuple[Optional[str], Callable[[Event], None]]] = []
        self.published_count = 0

    def subscribe(
        self, handler: Callable[[Event], None], topic: Optional[str] = None
    ) -> Callable[[], None]:
        entry = (topic, handler)
        self._subscribers.append(entry)

        def unsubscribe() -> None:
            if entry in self._subscribers:
                self._subscribers.remove(entry)

        return unsubscribe

    @staticmethod
    def _matches(subscription: Optional[str], topic: str) -> bool:
        if subscription is None or subscription == topic:
            return True
        return topic.startswith(subscription + ".")

    def publish(self, topic: str, message: str = "", **payload: Any) -> Event:
        event = Event(topic=topic, message=message, payload=payload)
        self.published_count += 1
        for subscription, handler in list(self._subscribers):
            if self._matches(subscription, topic):
                handler(event)
        return event

    def scoped(self, prefix: str) -> "ScopedEventBus":
        """A view of this bus that namespaces every topic under ``prefix``.

        ``bus.scoped("tenant.3").publish("controller.retry", ...)``
        publishes ``tenant.3.controller.retry`` on this bus, so existing
        publish sites (controller, fault injector, adapters) compose with
        per-tenant prefixes without being rewritten.  Subscriptions made
        through the scoped view are prefixed the same way; scopes nest
        (``bus.scoped("a").scoped("b")`` is the ``a.b`` scope).
        """
        return ScopedEventBus(self, prefix)


class ScopedEventBus:
    """Prefix-namespacing view over a parent :class:`EventBus`.

    Implements the same ``publish`` / ``subscribe`` / ``scoped`` surface,
    so any component that takes an ``events=`` bus can transparently be
    handed a tenant-scoped view.  All events land on the shared parent
    bus (there is exactly one delivery loop per run), just under dotted
    ``<prefix>.<topic>`` names.
    """

    def __init__(self, parent: EventBus, prefix: str):
        if not prefix or prefix != prefix.strip("."):
            raise ValueError(f"scope prefix must be a dotted name, got {prefix!r}")
        if any(not part for part in prefix.split(".")):
            raise ValueError(f"scope prefix has an empty segment: {prefix!r}")
        # Collapse nested scopes onto the root bus so delivery is always
        # a single hop regardless of scoping depth.
        if isinstance(parent, ScopedEventBus):
            prefix = f"{parent.prefix}.{prefix}"
            parent = parent.parent
        self.parent = parent
        self.prefix = prefix

    @property
    def published_count(self) -> int:
        return self.parent.published_count

    def publish(self, topic: str, message: str = "", **payload: Any) -> Event:
        full = f"{self.prefix}.{topic}" if topic else self.prefix
        return self.parent.publish(full, message, **payload)

    def subscribe(
        self, handler: Callable[[Event], None], topic: Optional[str] = None
    ) -> Callable[[], None]:
        full = self.prefix if topic is None else f"{self.prefix}.{topic}"
        return self.parent.subscribe(handler, topic=full)

    def scoped(self, prefix: str) -> "ScopedEventBus":
        return ScopedEventBus(self, prefix)

    def __repr__(self) -> str:
        return f"ScopedEventBus({self.prefix!r} on {self.parent!r})"


def callback_subscriber(progress: Callable[[str], None]) -> Callable[[Event], None]:
    """Adapt a legacy ``progress(msg)`` callback into an event handler.

    Lets code that migrated to the bus keep honouring the deprecated
    ``progress=`` constructor arguments: the callback sees each event's
    human-readable message, exactly as the old string callbacks did.
    """

    def handler(event: Event) -> None:
        progress(event.message or event.topic)

    return handler
