"""Regression error metrics used in the paper's Tables 2 and Figure 7-9."""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError


def _pair(y_true, y_pred) -> tuple:
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.shape != y_pred.shape:
        raise TrainingError("prediction/target shape mismatch")
    if y_true.size == 0:
        raise TrainingError("empty metric input")
    return y_true, y_pred


def mean_absolute_percentage_error(y_true, y_pred) -> float:
    """MAPE in percent — the paper's "prediction error" (e.g. 7.5%)."""
    y_true, y_pred = _pair(y_true, y_pred)
    if np.any(y_true == 0):
        raise TrainingError("MAPE undefined for zero targets")
    return float(np.mean(np.abs((y_pred - y_true) / y_true)) * 100.0)


def percentage_errors(y_true, y_pred) -> np.ndarray:
    """Signed percentage errors (for the Figure 8/9 histograms)."""
    y_true, y_pred = _pair(y_true, y_pred)
    return (y_pred - y_true) / y_true * 100.0


def rmse(y_true, y_pred) -> float:
    """Root-mean-square error in ops/s (Table 2's "Avg. RMSE")."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.sqrt(np.mean((y_pred - y_true) ** 2)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination (Table 2's "R2 Value")."""
    y_true, y_pred = _pair(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot
