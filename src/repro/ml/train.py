"""Network training: Bayesian-regularized Levenberg-Marquardt.

This is the from-scratch analogue of MATLAB's ``trainbr`` the paper uses
(§3.6.2): minimize ``F = beta * E_D + alpha * E_W`` where ``E_D`` is the
sum of squared residuals and ``E_W`` the sum of squared weights, with
the hyperparameters re-estimated each epoch from MacKay's evidence
framework:

* ``gamma = W - alpha * tr(H^-1)`` — the effective number of parameters,
* ``alpha = gamma / (2 E_W)``, ``beta = (N - gamma) / (2 E_D)``.

Training runs to convergence or 200 epochs, whichever comes first — the
paper stresses it must not early-stop (§3.6.2).  An Adam + fixed-L2
trainer is provided as a cheaper fallback for large datasets.

Numerical note (factorization reuse): the regularized Hessians here —
``beta J^T J + (alpha + mu) I`` for the LM step and ``beta J^T J +
alpha I`` for the evidence update — are symmetric positive definite by
construction, so each is factored **once with Cholesky** and the factor
is reused for every solve against it: the step solve runs two
triangular substitutions, and the evidence trace term uses
``tr(H^-1) = ||L^-1||_F^2`` (one triangular solve against the
identity) instead of the explicit ``np.linalg.inv`` + ``trace`` the
seed implementation paid per epoch.  The original ``LinAlgError``
fallbacks are preserved verbatim: a non-positive-definite step Hessian
escalates ``mu``, a failed evidence factorization falls back to
``gamma = W/2``.  Equivalence to the LU-solve/explicit-inverse
reference is *numerical, not bitwise* — factorization order differs —
within ``EQUIVALENCE_RTOL`` relative tolerance on weights, gamma, and
the objective (pinned by ``tests/test_ml_train.py``); determinism
under a fixed seed is unaffected.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

import numpy as np

from repro.errors import TrainingError
from repro.ml.network import FeedForwardNetwork

try:  # Triangular solves without the general-LU detour; optional.
    from scipy.linalg import solve_triangular as _solve_triangular
except ImportError:  # pragma: no cover - exercised where scipy is absent
    _solve_triangular = None

#: The paper's epoch cap (§4.3).
MAX_EPOCHS = 200

#: Documented numerical-equivalence tolerance of the Cholesky path
#: against the LU-solve / explicit-inverse reference implementation.
EQUIVALENCE_RTOL = 1e-6


def _tri_solve(chol_lower: np.ndarray, b: np.ndarray, transpose: bool = False):
    """Solve ``L x = b`` (or ``L^T x = b``) for a lower-triangular L."""
    if _solve_triangular is not None:
        return _solve_triangular(
            chol_lower, b, lower=True, trans=1 if transpose else 0,
            check_finite=False,
        )
    return np.linalg.solve(chol_lower.T if transpose else chol_lower, b)


def _chol_solve(chol_lower: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``(L L^T) x = b`` by two triangular substitutions."""
    return _tri_solve(chol_lower, _tri_solve(chol_lower, b), transpose=True)


def _chol_inverse_trace(chol_lower: np.ndarray, identity: np.ndarray) -> float:
    """``tr(H^-1)`` for ``H = L L^T``: since ``H^-1 = L^-T L^-1``,
    the trace is the squared Frobenius norm of ``L^-1``."""
    inv_l = _tri_solve(chol_lower, identity)
    return float(np.einsum("ij,ij->", inv_l, inv_l))


@dataclass
class TrainingResult:
    """Diagnostics from one training run."""

    epochs: int
    train_mse: float
    objective: float
    alpha: float
    beta: float
    effective_parameters: float
    converged: bool

    def to_dict(self) -> dict:
        """JSON-ready form (checkpoint payloads); floats round-trip exactly."""
        return asdict(self)

    @classmethod
    def from_dict(cls, blob: dict) -> "TrainingResult":
        try:
            return cls(**blob)
        except TypeError as exc:
            raise TrainingError(f"malformed training result: {exc}") from exc


def _check_data(x: np.ndarray, y: np.ndarray) -> tuple:
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if x.ndim != 2:
        raise TrainingError("x must be a 2-D feature matrix")
    if x.shape[0] != y.shape[0]:
        raise TrainingError("x and y disagree on sample count")
    if x.shape[0] == 0:
        raise TrainingError("no training samples")
    return x, y


def train_bayesian_lm(
    net: FeedForwardNetwork,
    x: np.ndarray,
    y: np.ndarray,
    max_epochs: int = MAX_EPOCHS,
    tolerance: float = 1e-7,
    mu0: float = 5e-3,
    mu_max: float = 1e10,
) -> TrainingResult:
    """Train ``net`` in place with LM + Bayesian regularization.

    ``x``/``y`` should already be standardized (see
    :class:`~repro.ml.scaler.StandardScaler`); the evidence estimates
    assume unit-scale targets.
    """
    x, y = _check_data(x, y)
    n_samples = x.shape[0]
    n_weights = net.n_weights
    identity = np.eye(n_weights)

    alpha, beta = 1e-2, 1.0
    mu = mu0
    w = net.get_weights()

    def energies(weights: np.ndarray) -> tuple:
        net.set_weights(weights)
        residuals = net.predict(x) - y
        e_d = float(residuals @ residuals)
        e_w = float(weights @ weights)
        return residuals, e_d, e_w

    _, e_d, e_w = energies(w)
    objective = beta * e_d + alpha * e_w
    converged = False
    epoch = 0
    jtj: Optional[np.ndarray] = None
    # Whether ``jtj`` was computed at the *current* ``w`` — lets the
    # final-report block skip a redundant Jacobian when the last epoch
    # left the weights unchanged (trust-region-exhausted break).
    jtj_current = False

    for epoch in range(1, max_epochs + 1):
        # One forward pass serves both the residuals and the Jacobian
        # rows (``energies`` already left the net at ``w``).
        pred, jac = net.forward_with_jacobian(x)
        residuals = pred - y
        jtj = jac.T @ jac
        jtj_current = True
        grad = beta * (jac.T @ residuals) + alpha * w

        improved = False
        while mu <= mu_max:
            hessian = beta * jtj + (alpha + mu) * identity
            try:
                chol = np.linalg.cholesky(hessian)
            except np.linalg.LinAlgError:
                mu *= 10.0
                continue
            step = _chol_solve(chol, grad)
            w_new = w - step
            _, e_d_new, e_w_new = energies(w_new)
            objective_new = beta * e_d_new + alpha * e_w_new
            if objective_new < objective:
                w, e_d, e_w = w_new, e_d_new, e_w_new
                jtj_current = False
                gain = objective - objective_new
                objective = objective_new
                mu = max(mu / 10.0, 1e-12)
                improved = True
                if gain < tolerance * max(objective, 1e-12):
                    converged = True
                break
            mu *= 10.0
        if not improved:
            converged = True  # LM trust region exhausted: local optimum
            net.set_weights(w)
            break

        # MacKay evidence update of (alpha, beta).
        hessian = beta * jtj + alpha * identity
        try:
            chol = np.linalg.cholesky(hessian)
            gamma = n_weights - alpha * _chol_inverse_trace(chol, identity)
        except np.linalg.LinAlgError:
            gamma = n_weights / 2.0
        gamma = float(np.clip(gamma, 0.1, n_weights))
        alpha = gamma / max(2.0 * e_w, 1e-12)
        n_eff = max(n_samples - gamma, 1e-3)
        beta = n_eff / max(2.0 * e_d, 1e-12)
        objective = beta * e_d + alpha * e_w

        if converged:
            break

    net.set_weights(w)
    # Final gamma for reporting; reuse the loop's J^T J when the weights
    # have not moved since it was computed.
    try:
        if jtj is None or not jtj_current:
            jac = net.jacobian(x)
            jtj = jac.T @ jac
        chol = np.linalg.cholesky(beta * jtj + alpha * identity)
        gamma = n_weights - alpha * _chol_inverse_trace(chol, identity)
    except np.linalg.LinAlgError:
        gamma = float("nan")
    return TrainingResult(
        epochs=epoch,
        train_mse=e_d / n_samples,
        objective=objective,
        alpha=alpha,
        beta=beta,
        effective_parameters=gamma,
        converged=converged,
    )


def train_adam(
    net: FeedForwardNetwork,
    x: np.ndarray,
    y: np.ndarray,
    epochs: int = 400,
    learning_rate: float = 0.01,
    l2: float = 1e-4,
    batch_size: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> TrainingResult:
    """Plain Adam with fixed L2 — a fallback for large datasets where
    the LM normal equations get expensive."""
    x, y = _check_data(x, y)
    rng = rng if rng is not None else np.random.default_rng(0)
    n = x.shape[0]
    batch = n if batch_size <= 0 else min(batch_size, n)
    w = net.get_weights()
    m = np.zeros_like(w)
    v = np.zeros_like(w)
    beta1, beta2, eps = 0.9, 0.999, 1e-8
    t = 0
    for _ in range(epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch):
            idx = order[start : start + batch]
            net.set_weights(w)
            pred, jac = net.forward_with_jacobian(x[idx])
            residuals = pred - y[idx]
            grad = 2.0 * (jac.T @ residuals) / len(idx) + 2.0 * l2 * w
            t += 1
            m = beta1 * m + (1 - beta1) * grad
            v = beta2 * v + (1 - beta2) * grad**2
            m_hat = m / (1 - beta1**t)
            v_hat = v / (1 - beta2**t)
            w = w - learning_rate * m_hat / (np.sqrt(v_hat) + eps)
    net.set_weights(w)
    residuals = net.predict(x) - y
    e_d = float(residuals @ residuals)
    return TrainingResult(
        epochs=epochs,
        train_mse=e_d / n,
        objective=e_d + l2 * float(w @ w),
        alpha=l2,
        beta=1.0,
        effective_parameters=float(net.n_weights),
        converged=True,
    )
