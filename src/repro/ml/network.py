"""Feed-forward neural network with analytic Jacobians.

Matches the paper's surrogate topology — 6 inputs, hidden layers of 14
and 4 tanh units, one linear output (§4.3) — and exposes the per-sample
output-weight Jacobian needed by Levenberg-Marquardt training.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TrainingError


class FeedForwardNetwork:
    """Dense tanh network with a linear output unit.

    Weights are owned as per-layer ``(W, b)`` pairs and can be viewed as
    one flat vector (:meth:`get_weights`/:meth:`set_weights`) for the
    optimizer and the Bayesian-evidence bookkeeping.
    """

    def __init__(self, layer_sizes: Sequence[int], rng: Optional[np.random.Generator] = None):
        if len(layer_sizes) < 2:
            raise TrainingError("need at least input and output layers")
        if any(s <= 0 for s in layer_sizes):
            raise TrainingError("layer sizes must be positive")
        self.layer_sizes = list(layer_sizes)
        rng = rng if rng is not None else np.random.default_rng()
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(layer_sizes, layer_sizes[1:]):
            # Nguyen-Widrow-flavoured init: small scaled uniform weights.
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self.weights.append(rng.uniform(-limit, limit, size=(fan_in, fan_out)))
            self.biases.append(rng.uniform(-limit, limit, size=fan_out))

    # -- weight vector view ---------------------------------------------------

    @property
    def n_weights(self) -> int:
        return sum(w.size + b.size for w, b in zip(self.weights, self.biases))

    def get_weights(self) -> np.ndarray:
        parts = []
        for w, b in zip(self.weights, self.biases):
            parts.append(w.ravel())
            parts.append(b.ravel())
        return np.concatenate(parts)

    def set_weights(self, flat: np.ndarray) -> None:
        flat = np.asarray(flat, dtype=float)
        if flat.size != self.n_weights:
            raise TrainingError(
                f"weight vector has {flat.size} entries, expected {self.n_weights}"
            )
        offset = 0
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            self.weights[i] = flat[offset : offset + w.size].reshape(w.shape)
            offset += w.size
            self.biases[i] = flat[offset : offset + b.size].reshape(b.shape)
            offset += b.size

    def clone(self) -> "FeedForwardNetwork":
        # Bypass __init__: drawing a full random init just to overwrite it
        # was measurable in the ensemble checkpoint/canary hot paths.
        other = FeedForwardNetwork.__new__(FeedForwardNetwork)
        other.layer_sizes = list(self.layer_sizes)
        other.weights = [w.copy() for w in self.weights]
        other.biases = [b.copy() for b in self.biases]
        return other

    # -- forward ----------------------------------------------------------------

    def _forward_full(self, x: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Forward pass keeping post-activation values per layer."""
        a = np.asarray(x, dtype=float)
        if a.ndim == 1:
            a = a[None, :]
        activations = [a]
        n_layers = len(self.weights)
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = a @ w + b
            a = z if i == n_layers - 1 else np.tanh(z)
            activations.append(a)
        return a, activations

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Network output; (n,) for a single output unit."""
        out, _ = self._forward_full(x)
        return out[:, 0] if out.shape[1] == 1 else out

    def forward_rows(self, x: np.ndarray) -> np.ndarray:
        """Row-stable inference forward pass: ``(n, d) -> (n,)``.

        The inference hot path (ensemble queries, batched GA fitness)
        needs each output row to be bit-identical whether the row is
        evaluated alone or inside a larger matrix.  BLAS ``@`` does not
        guarantee that — gemm and gemv accumulate in different orders —
        so this path contracts with ``einsum``, whose per-row reduction
        order is independent of the batch size.  Training keeps the BLAS
        path (:meth:`predict`/:meth:`jacobian`), where row stability is
        irrelevant and raw speed on large Jacobians wins.
        """
        if self.layer_sizes[-1] != 1:
            raise TrainingError("forward_rows supports single-output networks only")
        a = np.asarray(x, dtype=float)
        if a.ndim == 1:
            a = a[None, :]
        n_layers = len(self.weights)
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = np.einsum("ij,jk->ik", a, w) + b
            a = z if i == n_layers - 1 else np.tanh(z)
        return a[:, 0]

    # -- jacobian -------------------------------------------------------------------

    def jacobian(self, x: np.ndarray) -> np.ndarray:
        """d output / d weights, one row per sample (single-output nets).

        Standard backprop with a unit seed at the linear output; used by
        the Levenberg-Marquardt trainer where residual Jacobian rows are
        exactly these derivatives.
        """
        return self.forward_with_jacobian(x)[1]

    def forward_with_jacobian(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """One forward pass serving both prediction and weight Jacobian.

        Both trainers need the network output *and* its derivative at
        the same weights every step; calling :meth:`predict` then
        :meth:`jacobian` forwards the batch twice.  The forward pass
        already produces the activations backprop needs, so this method
        returns ``(predictions, jacobian)`` for the cost of one forward
        — bit-identical to the two separate calls (same
        :meth:`_forward_full` path, same reduction order).
        """
        if self.layer_sizes[-1] != 1:
            raise TrainingError(
                "forward_with_jacobian supports single-output networks only"
            )
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        out, acts = self._forward_full(x)
        n = x.shape[0]
        grads: List[np.ndarray] = []
        # delta at output: d out / d z_L = 1 (linear unit).
        delta = np.ones((n, 1))
        for i in range(len(self.weights) - 1, -1, -1):
            a_prev = acts[i]
            # dW = a_prev^T delta per sample; db = delta.
            gw = a_prev[:, :, None] * delta[:, None, :]  # (n, fan_in, fan_out)
            gb = delta
            grads.append(np.concatenate([gw.reshape(n, -1), gb], axis=1))
            if i > 0:
                delta = (delta @ self.weights[i].T) * (1.0 - acts[i] ** 2)
        # grads collected output->input; the flat vector is input->output.
        return out[:, 0], np.concatenate(list(reversed(grads)), axis=1)

    def __repr__(self) -> str:
        return f"FeedForwardNetwork({self.layer_sizes}, {self.n_weights} weights)"
