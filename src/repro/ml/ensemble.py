"""Network ensembles with worst-member pruning.

"To improve generalizability, we initialize the same neural network
using different edge weights and utilize the average across multiple
(20) networks.  Further, we utilize simple ensemble pruning by removing
the top 30% of the networks that produce the highest reported training
error.  The final performance value would be an average of 14 networks"
(paper §3.6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.ml.network import FeedForwardNetwork
from repro.ml.scaler import StandardScaler
from repro.ml.train import TrainingResult, train_bayesian_lm
from repro.runtime.backend import ExecutionBackend, resolve_backend
from repro.sim.rng import SeedLike, derive_rng

#: Paper defaults (§3.6.2, §4.3).
DEFAULT_ENSEMBLE_SIZE = 20
DEFAULT_PRUNE_FRACTION = 0.30
DEFAULT_HIDDEN_LAYERS = (14, 4)


@dataclass(frozen=True)
class EnsembleConfig:
    """Hyperparameters of the surrogate ensemble."""

    hidden_layers: Sequence[int] = DEFAULT_HIDDEN_LAYERS
    n_networks: int = DEFAULT_ENSEMBLE_SIZE
    prune_fraction: float = DEFAULT_PRUNE_FRACTION
    max_epochs: int = 200

    def __post_init__(self):
        if self.n_networks < 1:
            raise TrainingError("ensemble needs at least one network")
        if not (0.0 <= self.prune_fraction < 1.0):
            raise TrainingError("prune_fraction must be in [0, 1)")


@dataclass(frozen=True)
class MemberTask:
    """One ensemble member's training job (standardized data + seed)."""

    member: int
    seed: int
    layer_sizes: Tuple[int, ...]
    x: np.ndarray
    y: np.ndarray
    max_epochs: int


def train_member_task(task: MemberTask) -> Tuple[FeedForwardNetwork, TrainingResult]:
    """Initialize and train one member (module-level for picklability)."""
    net = FeedForwardNetwork(task.layer_sizes, rng=np.random.default_rng(task.seed))
    result = train_bayesian_lm(net, task.x, task.y, max_epochs=task.max_epochs)
    return net, result


class NetworkEnsemble:
    """Average of independently initialized Bayesian-regularized nets.

    Handles feature/target standardization internally: callers pass raw
    features (RR + unit-encoded parameters) and raw AOPS targets.
    """

    def __init__(self, config: Optional[EnsembleConfig] = None):
        self.config = config or EnsembleConfig()
        self.networks: List[FeedForwardNetwork] = []
        self.training_results: List[TrainingResult] = []
        self.pruned_count = 0
        self.x_scaler = StandardScaler()
        self.y_scaler = StandardScaler()

    @property
    def is_fitted(self) -> bool:
        return bool(self.networks)

    @property
    def active_count(self) -> int:
        return len(self.networks)

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        seed: SeedLike = 0,
        backend: Optional[ExecutionBackend] = None,
        checkpoint_dir=None,
        events=None,
    ) -> "NetworkEnsemble":
        """Train the full ensemble, then prune by training error.

        Each member trains from its own pre-derived stream (spawned from
        ``seed`` up front), so members are independent work units:
        ``backend`` fans the training out across processes with results
        identical to a serial run.

        With a ``checkpoint_dir`` each trained member is persisted
        atomically, and a restarted fit loads the members whose
        checkpoints match this exact run (seed, topology, standardized
        data) instead of retraining them — landing on bitwise-identical
        weights.  Corrupt or stale checkpoints are ignored (and reported
        on ``events`` as ``recovery.corrupt_artifact``); the member just
        retrains.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise TrainingError("bad training data shapes")
        xs = self.x_scaler.fit_transform(x)
        ys = self.y_scaler.fit_transform(y)

        rng = derive_rng(seed)
        layer_sizes = [x.shape[1], *self.config.hidden_layers, 1]
        member_seeds = [
            int(rng.integers(0, 2**63 - 1)) for _ in range(self.config.n_networks)
        ]

        fingerprint = None
        loaded = {}
        if checkpoint_dir is not None:
            from repro.recovery.checkpoint import (
                load_member_checkpoint,
                save_member_checkpoint,
                training_fingerprint,
            )

            config_tag = (
                f"{tuple(layer_sizes)}|{self.config.max_epochs}"
                f"|{self.config.prune_fraction}"
            )
            fingerprint = training_fingerprint(xs, ys, config_tag)
            for i, member_seed in enumerate(member_seeds):
                restored = load_member_checkpoint(
                    checkpoint_dir,
                    i,
                    member_seed,
                    tuple(layer_sizes),
                    fingerprint,
                    events=events,
                )
                if restored is not None:
                    loaded[i] = restored
            if loaded and events is not None:
                events.publish(
                    "recovery.resumed",
                    f"resumed {len(loaded)}/{self.config.n_networks} ensemble "
                    "members from checkpoints",
                    resumed=len(loaded),
                    total=self.config.n_networks,
                    path=str(checkpoint_dir),
                )

        tasks = [
            MemberTask(
                member=i,
                seed=member_seed,
                layer_sizes=tuple(layer_sizes),
                x=xs,
                y=ys,
                max_epochs=self.config.max_epochs,
            )
            for i, member_seed in enumerate(member_seeds)
            if i not in loaded
        ]
        on_member = None
        if checkpoint_dir is not None:
            # Checkpoint each member as it lands, not after the whole
            # batch: a kill mid-fit keeps every finished member.
            def on_member(position: int, pair) -> None:
                task = tasks[position]
                save_member_checkpoint(
                    checkpoint_dir, task.member, task.seed, fingerprint, *pair
                )

        fresh = resolve_backend(backend).map_tasks(
            train_member_task, tasks, on_result=on_member
        )

        # Merge restored + freshly trained members back into member
        # order before sorting, so a resumed fit sees the same sequence
        # an uninterrupted one does.
        by_member = dict(loaded)
        for task, pair in zip(tasks, fresh):
            by_member[task.member] = pair
        trained = [by_member[i] for i in range(self.config.n_networks)]

        # Stable sort + per-member training being scheduling-independent
        # keeps the pruned ensemble identical across backends.
        trained.sort(key=lambda pair: pair[1].train_mse)
        keep = max(
            1,
            int(round(self.config.n_networks * (1.0 - self.config.prune_fraction))),
        )
        self.pruned_count = len(trained) - keep
        self.networks = [net for net, _ in trained[:keep]]
        self.training_results = [res for _, res in trained[:keep]]
        return self

    def _mean_std_scaled(self, xs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Member mean and spread in *standardized* target units.

        One forward pass per member, accumulated sequentially with
        elementwise ops: unlike ``np.mean``/``np.std`` axis reductions
        (whose unrolled base cases change accumulation order with the
        column count), the result for each row is bit-identical whether
        it is evaluated alone or inside a batch.
        """
        forwards = [net.forward_rows(xs) for net in self.networks]
        total = forwards[0].copy()
        for f in forwards[1:]:
            total += f
        mean = total / len(forwards)
        sq = np.zeros_like(mean)
        for f in forwards:
            sq += (f - mean) ** 2
        std = np.sqrt(sq / len(forwards))
        return mean, std

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Ensemble-mean prediction in original target units (AOPS)."""
        if not self.is_fitted:
            raise TrainingError("ensemble used before fit()")
        x = np.asarray(x, dtype=float)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[None, :]
        xs = self.x_scaler.transform(x)
        mean, _ = self._mean_std_scaled(xs)
        out = self.y_scaler.inverse_transform(mean)
        return float(out[0]) if squeeze else out

    def predict_std(self, x: np.ndarray) -> np.ndarray:
        """Across-member prediction spread (a cheap uncertainty proxy)."""
        if not self.is_fitted:
            raise TrainingError("ensemble used before fit()")
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        xs = self.x_scaler.transform(x)
        _, std = self._mean_std_scaled(xs)
        return std * self.y_scaler.scale_[0]

    def predict_mean_std(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Mean and spread from a single walk over the member networks.

        ``predict`` followed by ``predict_std`` runs every member twice
        on the same rows; uncertainty-penalized search needs both, so
        this returns ``(mean, std)`` — both ``(n,)``, original target
        units — from one set of forward passes.
        """
        if not self.is_fitted:
            raise TrainingError("ensemble used before fit()")
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        xs = self.x_scaler.transform(x)
        mean, std = self._mean_std_scaled(xs)
        return (
            self.y_scaler.inverse_transform(mean),
            std * self.y_scaler.scale_[0],
        )
