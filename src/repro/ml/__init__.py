"""From-scratch neural-network machinery for the surrogate model.

The paper trains a [6, 14, 4, 1] feed-forward network with MATLAB's
``trainbr`` (Levenberg-Marquardt + MacKay Bayesian regularization) and
averages an ensemble of 20 differently initialized networks after
pruning the worst 30 % by training error (§3.6.2, §4.3).  This package
implements that stack on numpy, plus the interpretable decision-tree
baseline the paper tried and rejected (§3.7.2).
"""

from repro.ml.scaler import StandardScaler
from repro.ml.network import FeedForwardNetwork
from repro.ml.train import TrainingResult, train_bayesian_lm, train_adam
from repro.ml.ensemble import NetworkEnsemble, EnsembleConfig
from repro.ml.metrics import mean_absolute_percentage_error, r2_score, rmse
from repro.ml.decision_tree import DecisionTreeRegressor, ModelTreeRegressor

__all__ = [
    "StandardScaler",
    "FeedForwardNetwork",
    "TrainingResult",
    "train_bayesian_lm",
    "train_adam",
    "NetworkEnsemble",
    "EnsembleConfig",
    "mean_absolute_percentage_error",
    "r2_score",
    "rmse",
    "DecisionTreeRegressor",
    "ModelTreeRegressor",
]
