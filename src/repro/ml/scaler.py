"""Feature/target standardization."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import TrainingError


class StandardScaler:
    """Zero-mean, unit-variance scaling with safe inverse.

    Constant columns get a unit scale so they pass through unchanged
    (the surrogate sees them but they carry no signal).
    """

    def __init__(self):
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self.mean_ is not None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[:, None]
        if x.shape[0] == 0:
            raise TrainingError("cannot fit a scaler on empty data")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        std[std < 1e-12] = 1.0
        self.scale_ = std
        return self

    def _check(self):
        if not self.is_fitted:
            raise TrainingError("scaler used before fit()")

    def transform(self, x: np.ndarray) -> np.ndarray:
        self._check()
        x = np.asarray(x, dtype=float)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        out = (x - self.mean_) / self.scale_
        return out[:, 0] if squeeze else out

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        self._check()
        x = np.asarray(x, dtype=float)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        out = x * self.scale_ + self.mean_
        return out[:, 0] if squeeze else out
