"""Decision-tree surrogates: the interpretable models the paper rejected.

§3.7.2: "we experimented with an interpretable model, the decision tree,
with the node at each level having a single decision variable ... We
found that this was woefully inadequate.  When each node was allowed to
have a linear combination of the parameters, the performance improved."

:class:`DecisionTreeRegressor` is the axis-aligned CART variant;
:class:`ModelTreeRegressor` adds ridge-linear leaf models (the "linear
combination" upgrade).  Both are used in the ablation benches to show
the expressivity gap against the DNN ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import TrainingError


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float = 0.0
    linear: Optional[np.ndarray] = None  # leaf ridge model (model trees)

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """Axis-aligned CART regression tree (variance-reduction splits)."""

    def __init__(self, max_depth: int = 6, min_samples_leaf: int = 4):
        if max_depth < 1 or min_samples_leaf < 1:
            raise TrainingError("bad tree hyperparameters")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._root: Optional[_Node] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if x.ndim != 2 or x.shape[0] != y.shape[0] or x.shape[0] == 0:
            raise TrainingError("bad training data shapes")
        self._root = self._build(x, y, depth=0)
        return self

    def _leaf(self, x: np.ndarray, y: np.ndarray) -> _Node:
        return _Node(value=float(y.mean()))

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf or np.ptp(y) == 0:
            return self._leaf(x, y)
        best = self._best_split(x, y)
        if best is None:
            return self._leaf(x, y)
        feature, threshold = best
        mask = x[:, feature] <= threshold
        node = _Node(feature=feature, threshold=threshold)
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        node.value = float(y.mean())
        return node

    def _best_split(self, x: np.ndarray, y: np.ndarray):
        n, d = x.shape
        parent_sse = float(np.sum((y - y.mean()) ** 2))
        best_gain, best = 1e-12, None
        for f in range(d):
            order = np.argsort(x[:, f], kind="stable")
            xs, ys = x[order, f], y[order]
            # candidate thresholds between distinct values
            for i in range(self.min_samples_leaf, n - self.min_samples_leaf + 1):
                if i < n and xs[i - 1] == xs[i]:
                    continue
                left, right = ys[:i], ys[i:]
                if len(left) < self.min_samples_leaf or len(right) < self.min_samples_leaf:
                    continue
                sse = float(np.sum((left - left.mean()) ** 2)) + float(
                    np.sum((right - right.mean()) ** 2)
                )
                gain = parent_sse - sse
                if gain > best_gain:
                    best_gain = gain
                    best = (f, float((xs[i - 1] + xs[i]) / 2.0))
        return best

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise TrainingError("tree used before fit()")
        x = np.asarray(x, dtype=float)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[None, :]
        out = np.array([self._predict_one(row) for row in x])
        return float(out[0]) if squeeze else out

    def _predict_one(self, row: np.ndarray) -> float:
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        if node.linear is not None:
            return float(node.linear[0] + row @ node.linear[1:])
        return node.value

    def depth(self) -> int:
        def walk(node, d):
            if node is None or node.is_leaf:
                return d
            return max(walk(node.left, d + 1), walk(node.right, d + 1))

        return walk(self._root, 0)


class ModelTreeRegressor(DecisionTreeRegressor):
    """CART with ridge-linear leaf models — more expressive, less
    interpretable; the paper's halfway house before giving up on
    interpretability.

    Predictions are clamped to the training-target range: linear leaves
    extrapolate without bound outside their fitting hull, and an
    unclamped model tree can be *worse* than the plain tree on held-out
    configurations.
    """

    def __init__(self, max_depth: int = 4, min_samples_leaf: int = 8, ridge: float = 1e-3):
        super().__init__(max_depth=max_depth, min_samples_leaf=min_samples_leaf)
        self.ridge = ridge
        self._y_min: Optional[float] = None
        self._y_max: Optional[float] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "ModelTreeRegressor":
        y = np.asarray(y, dtype=float).ravel()
        if y.size:
            self._y_min, self._y_max = float(y.min()), float(y.max())
        super().fit(x, y)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        out = super().predict(x)
        if self._y_min is not None:
            out = np.clip(out, self._y_min, self._y_max)
            if np.ndim(out) == 0:
                return float(out)
        return out

    def _leaf(self, x: np.ndarray, y: np.ndarray) -> _Node:
        node = _Node(value=float(y.mean()))
        if len(y) >= x.shape[1] + 2:
            design = np.hstack([np.ones((len(y), 1)), x])
            gram = design.T @ design + self.ridge * np.eye(design.shape[1])
            try:
                node.linear = np.linalg.solve(gram, design.T @ y)
            except np.linalg.LinAlgError:
                node.linear = None
        return node
