"""Deterministic fault schedules.

A :class:`FaultPlan` is *data*: a frozen schedule of node crashes and
recoveries, disk slowdowns, benchmark-client faults, and transient
control-plane failures, addressed by controller window index (or, for
benchmark faults, by campaign grid index).  Plans are either written by
hand (canned scenarios, CI smoke jobs) or drawn from a seed with
:meth:`FaultPlan.generate`; either way the same plan replayed against
the same seeded system produces the identical event sequence, which is
what makes fault runs auditable and regressions bisectable.

The plan never *acts* — applying it to a live cluster/controller is the
:class:`~repro.faults.injector.FaultInjector`'s job.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Optional, Tuple

from repro.errors import FaultError
from repro.sim.rng import SeedLike, derive_rng

#: Control-plane operations a :class:`TransientFault` can target.
TRANSIENT_KINDS = ("search", "push")


@dataclass(frozen=True)
class NodeCrash:
    """A node goes down at ``window`` and (optionally) comes back."""

    window: int
    node: int
    recover_window: Optional[int] = None

    def validate(self) -> None:
        if self.window < 0 or self.node < 0:
            raise FaultError(f"node crash schedule must be non-negative: {self}")
        if self.recover_window is not None and self.recover_window <= self.window:
            raise FaultError(f"recovery must come after the crash: {self}")


@dataclass(frozen=True)
class DiskSlowdown:
    """A node's disk degrades by ``factor`` between two windows."""

    window: int
    node: int
    factor: float
    end_window: Optional[int] = None

    def validate(self) -> None:
        if self.window < 0 or self.node < 0:
            raise FaultError(f"slowdown schedule must be non-negative: {self}")
        if self.factor < 1.0:
            raise FaultError(f"slowdown factor must be >= 1, got {self.factor}")
        if self.end_window is not None and self.end_window <= self.window:
            raise FaultError(f"slowdown must end after it starts: {self}")


@dataclass(frozen=True)
class TransientFault:
    """A control-plane operation fails ``failures`` times at ``window``.

    ``kind`` is ``"search"`` (the surrogate search / recommendation) or
    ``"push"`` (applying a configuration to the server).  A retry budget
    larger than ``failures`` heals the fault; a smaller one drives the
    controller into degraded mode.
    """

    kind: str
    window: int
    failures: int = 1

    def validate(self) -> None:
        if self.kind not in TRANSIENT_KINDS:
            raise FaultError(f"unknown transient fault kind {self.kind!r}")
        if self.window < 0 or self.failures < 1:
            raise FaultError(f"transient fault schedule invalid: {self}")


@dataclass(frozen=True)
class ActuationFault:
    """A config push silently fails on one node at ``window``.

    The node stays up and keeps serving on its *old* configuration — a
    partial push.  ``repairs_blocked`` extends the refusal to that many
    subsequent re-pushes as well, so a plan can exercise the repair
    budget (0 means the first repair attempt succeeds).  Detection is
    the actuation layer's job (``verify_config`` read-back), which is
    the point: the failure itself is invisible at push time.
    """

    window: int
    node: int
    repairs_blocked: int = 0

    def validate(self) -> None:
        if self.window < 0 or self.node < 0:
            raise FaultError(f"actuation fault schedule must be non-negative: {self}")
        if self.repairs_blocked < 0:
            raise FaultError(
                f"repairs_blocked must be >= 0, got {self.repairs_blocked}"
            )


@dataclass(frozen=True)
class StaleRecovery:
    """A node crashes at ``window`` and rejoins on its pre-crash config.

    Unlike a plain :class:`NodeCrash`, config pushes issued while the
    node is down never reach it, so if the controller re-tunes during
    the outage the rejoining node serves stale knobs — the classic
    silent-drift source this PR's reconciler exists to catch.
    """

    window: int
    node: int
    recover_window: int

    def validate(self) -> None:
        if self.window < 0 or self.node < 0:
            raise FaultError(f"stale recovery schedule must be non-negative: {self}")
        if self.recover_window <= self.window:
            raise FaultError(f"recovery must come after the crash: {self}")


@dataclass(frozen=True)
class CrashPoint:
    """A process kill striking an LSM engine after ``op`` operations.

    The crash drops all volatile engine state (memtable, caches,
    in-flight background work); durable state (commitlog, SSTables)
    survives and :meth:`~repro.lsm.engine.LSMEngine.recover` rebuilds
    from it.  Addressed by zero-based operation index: the crash strikes
    *before* the op at ``op`` executes.  Crash points are authored (or
    drawn by tests), not produced by :meth:`FaultPlan.generate` — they
    target the storage engine, not the online loop.
    """

    op: int

    def validate(self) -> None:
        if self.op < 0:
            raise FaultError(f"crash point op index must be >= 0, got {self.op}")


@dataclass(frozen=True)
class BenchFault:
    """A load-generating client fault on one campaign grid point.

    ``transient=True`` (the §4.2 reading: a flaky client, not a broken
    server) means a retried sample comes back clean; a persistent fault
    re-applies ``degradation`` on every retry.
    """

    index: int
    degradation: float
    transient: bool = True

    def validate(self) -> None:
        if self.index < 0:
            raise FaultError(f"bench fault index must be >= 0, got {self.index}")
        if not (0.0 < self.degradation < 1.0):
            raise FaultError(
                f"bench degradation must be in (0, 1), got {self.degradation}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic fault schedule."""

    node_crashes: Tuple[NodeCrash, ...] = ()
    disk_slowdowns: Tuple[DiskSlowdown, ...] = ()
    transient_faults: Tuple[TransientFault, ...] = ()
    bench_faults: Tuple[BenchFault, ...] = field(default_factory=tuple)
    crash_points: Tuple[CrashPoint, ...] = field(default_factory=tuple)
    actuation_faults: Tuple[ActuationFault, ...] = field(default_factory=tuple)
    stale_recoveries: Tuple[StaleRecovery, ...] = field(default_factory=tuple)

    def __post_init__(self):
        # Tolerate lists in hand-written plans.
        object.__setattr__(self, "node_crashes", tuple(self.node_crashes))
        object.__setattr__(self, "disk_slowdowns", tuple(self.disk_slowdowns))
        object.__setattr__(self, "transient_faults", tuple(self.transient_faults))
        object.__setattr__(self, "bench_faults", tuple(self.bench_faults))
        object.__setattr__(self, "crash_points", tuple(self.crash_points))
        object.__setattr__(self, "actuation_faults", tuple(self.actuation_faults))
        object.__setattr__(self, "stale_recoveries", tuple(self.stale_recoveries))

    def validate(self, n_nodes: Optional[int] = None) -> None:
        """Check schedule sanity; with ``n_nodes``, also node ranges."""
        for item in (
            *self.node_crashes,
            *self.disk_slowdowns,
            *self.transient_faults,
            *self.bench_faults,
            *self.crash_points,
            *self.actuation_faults,
            *self.stale_recoveries,
        ):
            item.validate()
        if n_nodes is not None:
            for item in (
                *self.node_crashes,
                *self.disk_slowdowns,
                *self.actuation_faults,
                *self.stale_recoveries,
            ):
                if item.node >= n_nodes:
                    raise FaultError(
                        f"fault targets node {item.node} but the cluster has "
                        f"{n_nodes} nodes"
                    )

    @property
    def is_empty(self) -> bool:
        return not (
            self.node_crashes
            or self.disk_slowdowns
            or self.transient_faults
            or self.bench_faults
            or self.crash_points
            or self.actuation_faults
            or self.stale_recoveries
        )

    @property
    def max_node(self) -> int:
        """Highest node index any fault touches (-1 if none)."""
        nodes = [
            f.node
            for f in (
                *self.node_crashes,
                *self.disk_slowdowns,
                *self.actuation_faults,
                *self.stale_recoveries,
            )
        ]
        return max(nodes) if nodes else -1

    # -- generation ----------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: SeedLike,
        n_windows: int,
        n_nodes: int = 1,
        crash_probability: float = 0.05,
        slowdown_probability: float = 0.05,
        search_fault_probability: float = 0.03,
        push_fault_probability: float = 0.03,
        max_outage_windows: int = 3,
        max_slowdown_factor: float = 4.0,
        actuation_fault_probability: float = 0.0,
        stale_recovery_probability: float = 0.0,
    ) -> "FaultPlan":
        """Draw a random-but-reproducible plan for an online run.

        Per window, each fault class fires independently with its
        configured probability; crashed nodes recover after 1..
        ``max_outage_windows`` windows.  At most one node is scheduled
        down at a time so a plan can never strand the cluster below one
        live node.
        """
        if n_windows < 1:
            raise FaultError("need at least one window")
        if n_nodes < 1:
            raise FaultError("need at least one node")
        rng = derive_rng(seed)
        crashes = []
        slowdowns = []
        transients = []
        actuations = []
        stales = []
        down_until = -1  # last window of the currently scheduled outage
        for w in range(n_windows):
            if n_nodes > 1 and w > down_until and rng.random() < crash_probability:
                node = int(rng.integers(n_nodes))
                outage = int(rng.integers(1, max_outage_windows + 1))
                recover = w + outage
                crashes.append(
                    NodeCrash(
                        window=w,
                        node=node,
                        recover_window=recover if recover < n_windows else None,
                    )
                )
                down_until = recover
            if rng.random() < slowdown_probability:
                node = int(rng.integers(n_nodes))
                factor = float(1.5 + (max_slowdown_factor - 1.5) * rng.random())
                length = int(rng.integers(1, max_outage_windows + 1))
                end = w + length
                slowdowns.append(
                    DiskSlowdown(
                        window=w,
                        node=node,
                        factor=factor,
                        end_window=end if end < n_windows else None,
                    )
                )
            if rng.random() < search_fault_probability:
                transients.append(
                    TransientFault(
                        kind="search", window=w, failures=int(rng.integers(1, 3))
                    )
                )
            if rng.random() < push_fault_probability:
                transients.append(
                    TransientFault(
                        kind="push", window=w, failures=int(rng.integers(1, 3))
                    )
                )
            # The actuation classes default to probability 0 and short-circuit
            # before touching the RNG, so plans drawn by older callers keep
            # their exact draw sequence.
            if (
                n_nodes > 1
                and actuation_fault_probability > 0.0
                and rng.random() < actuation_fault_probability
            ):
                actuations.append(
                    ActuationFault(
                        window=w,
                        node=int(rng.integers(n_nodes)),
                        repairs_blocked=int(rng.integers(0, 2)),
                    )
                )
            if (
                n_nodes > 1
                and stale_recovery_probability > 0.0
                and w > down_until
                and w + 1 < n_windows
                and rng.random() < stale_recovery_probability
            ):
                node = int(rng.integers(n_nodes))
                outage = int(rng.integers(1, max_outage_windows + 1))
                recover = min(w + outage, n_windows - 1)
                stales.append(
                    StaleRecovery(window=w, node=node, recover_window=recover)
                )
                down_until = recover
        return cls(
            node_crashes=tuple(crashes),
            disk_slowdowns=tuple(slowdowns),
            transient_faults=tuple(transients),
            actuation_faults=tuple(actuations),
            stale_recoveries=tuple(stales),
        )

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "node_crashes": [asdict(c) for c in self.node_crashes],
            "disk_slowdowns": [asdict(s) for s in self.disk_slowdowns],
            "transient_faults": [asdict(t) for t in self.transient_faults],
            "bench_faults": [asdict(b) for b in self.bench_faults],
            "crash_points": [asdict(p) for p in self.crash_points],
            "actuation_faults": [asdict(a) for a in self.actuation_faults],
            "stale_recoveries": [asdict(s) for s in self.stale_recoveries],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        try:
            return cls(
                node_crashes=tuple(
                    NodeCrash(**c) for c in payload.get("node_crashes", [])
                ),
                disk_slowdowns=tuple(
                    DiskSlowdown(**s) for s in payload.get("disk_slowdowns", [])
                ),
                transient_faults=tuple(
                    TransientFault(**t) for t in payload.get("transient_faults", [])
                ),
                bench_faults=tuple(
                    BenchFault(**b) for b in payload.get("bench_faults", [])
                ),
                crash_points=tuple(
                    CrashPoint(**p) for p in payload.get("crash_points", [])
                ),
                actuation_faults=tuple(
                    ActuationFault(**a) for a in payload.get("actuation_faults", [])
                ),
                stale_recoveries=tuple(
                    StaleRecovery(**s) for s in payload.get("stale_recoveries", [])
                ),
            )
        except TypeError as exc:
            raise FaultError(f"malformed fault plan: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)
