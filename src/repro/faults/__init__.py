"""Deterministic fault injection (the robustness subsystem).

The paper tunes a *live* datastore, and flags reconfiguration disruption
as the open risk (§4.8); this package supplies the weather for testing
that story: seeded :class:`FaultPlan` schedules (node crash/recover,
disk slowdowns, benchmark-client faults, transient search/push
failures) executed by a :class:`FaultInjector` against the throughput
cluster, the collection campaign, and the online controller.  With no
plan — or an empty one — every injection point is inert and the
pipeline is bit-identical to a fault-free build.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ActuationFault,
    BenchFault,
    CrashPoint,
    DiskSlowdown,
    FaultPlan,
    NodeCrash,
    StaleRecovery,
    TransientFault,
)

__all__ = [
    "ActuationFault",
    "BenchFault",
    "CrashPoint",
    "DiskSlowdown",
    "FaultInjector",
    "FaultPlan",
    "NodeCrash",
    "StaleRecovery",
    "TransientFault",
]
