"""Applies a :class:`~repro.faults.plan.FaultPlan` to a running system.

The injector is the single choke point between a plan and the components
it disturbs: the online controller calls :meth:`begin_window` once per
window (node crashes/recoveries and disk slowdowns land on the cluster
there) and :meth:`check` immediately before each fault-prone operation
(search, config push), which raises
:class:`~repro.errors.TransientError` while the window's failure budget
lasts.  Every action publishes a ``fault.*`` event so a run's full fault
history can be captured from the bus.

All injector state is rebuilt by :meth:`reset`, so one injector can
drive the same plan through repeated runs and produce the identical
event sequence each time.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DatastoreError, FaultError, TransientError
from repro.faults.plan import FaultPlan
from repro.runtime.events import EventBus


class FaultInjector:
    """Stateful executor of one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan, events: Optional[EventBus] = None):
        plan.validate()
        self.plan = plan
        self.events = events or EventBus()
        self.injected_count = 0
        self._budgets: dict = {}
        self.reset()

    def reset(self) -> None:
        """Restore every per-run failure budget (between runs)."""
        self.injected_count = 0
        budgets: dict = {}
        for fault in self.plan.transient_faults:
            key = (fault.kind, fault.window)
            budgets[key] = budgets.get(key, 0) + fault.failures
        self._budgets = budgets

    def _publish(self, topic: str, message: str, **payload) -> None:
        self.events.publish(topic, message, **payload)

    # -- node/disk faults ----------------------------------------------------

    def begin_window(self, window: int, cluster=None) -> None:
        """Apply the node-level faults scheduled for ``window``.

        ``cluster`` is anything with ``fail_node(i)`` / ``recover_node(i)``
        / ``set_disk_slowdown(i, factor)`` (see
        :class:`~repro.datastore.cluster.Cluster`).  Scheduling a node
        fault without a cluster to land it on is a plan/runtime mismatch
        and raises :class:`FaultError`; a fault the cluster itself
        refuses (e.g. failing the last live node) is skipped and
        reported as ``fault.skipped`` rather than crashing the run.
        """
        has_node_faults = (
            any(
                c.window == window or c.recover_window == window
                for c in self.plan.node_crashes
            )
            or any(
                s.window == window or s.end_window == window
                for s in self.plan.disk_slowdowns
            )
            or any(a.window == window for a in self.plan.actuation_faults)
            or any(
                s.window == window or s.recover_window == window
                for s in self.plan.stale_recoveries
            )
        )
        if not has_node_faults:
            return
        if cluster is None:
            raise FaultError(
                f"fault plan schedules node faults at window {window} but the "
                "run has no multi-node cluster to inject them into"
            )
        for crash in self.plan.node_crashes:
            if crash.window == window:
                self._apply(
                    "node-crash", window, crash.node,
                    lambda: cluster.fail_node(crash.node),
                )
            if crash.recover_window == window:
                self._apply(
                    "node-recover", window, crash.node,
                    lambda: cluster.recover_node(crash.node), recovery=True,
                )
        for slow in self.plan.disk_slowdowns:
            if slow.window == window:
                self._apply(
                    "disk-slowdown", window, slow.node,
                    lambda: cluster.set_disk_slowdown(slow.node, slow.factor),
                    factor=slow.factor,
                )
            if slow.end_window == window:
                self._apply(
                    "disk-recover", window, slow.node,
                    lambda: cluster.set_disk_slowdown(slow.node, 1.0),
                    recovery=True,
                )
        for act in self.plan.actuation_faults:
            if act.window == window:
                # Arm silent push refusals: the initial push plus any
                # blocked repair re-pushes all fail invisibly on this node.
                refusals = 1 + act.repairs_blocked
                try:
                    cluster.refuse_pushes(act.node, refusals)
                except DatastoreError as exc:
                    self._publish(
                        "fault.skipped",
                        f"skipped partial-push on node {act.node}: {exc}",
                        kind="partial-push", window=window, node=act.node,
                        reason=str(exc),
                    )
                    continue
                self.injected_count += 1
                self._publish(
                    "fault.actuation.partial_push",
                    f"armed partial push on node {act.node} "
                    f"(window {window}, {refusals} refusal(s))",
                    kind="partial-push", window=window, node=act.node,
                    refusals=refusals,
                )
        for stale in self.plan.stale_recoveries:
            if stale.window == window:
                def crash_isolated(node=stale.node):
                    cluster.fail_node(node)
                    cluster.isolate_node(node)
                self._apply(
                    "stale-crash", window, stale.node, crash_isolated,
                    topic="fault.actuation.stale_crash",
                )
            if stale.recover_window == window:
                self._apply(
                    "stale-recover", window, stale.node,
                    lambda node=stale.node: cluster.recover_node(node),
                    recovery=True, topic="fault.actuation.stale_recovery",
                )

    def _apply(self, kind, window, node, action, recovery=False, topic=None,
               **payload):
        try:
            action()
        except DatastoreError as exc:
            self._publish(
                "fault.skipped",
                f"skipped {kind} on node {node}: {exc}",
                kind=kind, window=window, node=node, reason=str(exc),
            )
            return
        if topic is None:
            topic = "fault.recovered" if recovery else "fault.injected"
        if not recovery:
            self.injected_count += 1
        self._publish(
            topic,
            f"{kind} node {node} (window {window})",
            kind=kind, window=window, node=node, **payload,
        )

    # -- transient control-plane faults --------------------------------------

    def check(self, kind: str, window: int) -> None:
        """Fail the caller's operation while this window's budget lasts.

        Raises :class:`TransientError` and decrements the remaining
        failure budget for ``(kind, window)``; once the budget is spent
        the operation goes through, which is what makes these faults
        retryable.
        """
        key = (kind, window)
        remaining = self._budgets.get(key, 0)
        if remaining <= 0:
            return
        self._budgets[key] = remaining - 1
        self.injected_count += 1
        self._publish(
            "fault.injected",
            f"transient {kind} fault (window {window})",
            kind=kind, window=window, remaining=remaining - 1,
        )
        raise TransientError(f"injected transient {kind} fault at window {window}")
