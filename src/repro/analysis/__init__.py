"""Reporting helpers: paper-vs-measured tables from bench results."""

from repro.analysis.reporting import (
    ExperimentResult,
    format_comparison_table,
    load_results,
    render_experiments_markdown,
)

__all__ = [
    "ExperimentResult",
    "load_results",
    "format_comparison_table",
    "render_experiments_markdown",
]
