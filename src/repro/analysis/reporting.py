"""Turn ``benchmarks/results/*.json`` into human-readable reports.

The benches record, for every table and figure, the measured rows next
to the paper's published numbers; these helpers render the comparisons
(used by ``scripts/generate_experiments_md.py`` to refresh
EXPERIMENTS.md and available to downstream users for their own runs).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class ExperimentResult:
    """One bench's recorded payload."""

    name: str
    payload: Dict

    @property
    def paper(self) -> Dict:
        return self.payload.get("paper", {})


def load_results(results_dir) -> Dict[str, ExperimentResult]:
    """Load every ``<name>.json`` under ``results_dir``."""
    results: Dict[str, ExperimentResult] = {}
    directory = pathlib.Path(results_dir)
    if not directory.exists():
        return results
    for path in sorted(directory.glob("*.json")):
        with open(path) as fh:
            results[path.stem] = ExperimentResult(name=path.stem, payload=json.load(fh))
    return results


def _fmt(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) < 1 and value != 0:
            return f"{value:.3f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_comparison_table(
    rows: Sequence[tuple],
    headers: tuple = ("metric", "paper", "measured"),
) -> str:
    """GitHub-markdown table from (metric, paper, measured) triples."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join(["---"] * len(headers)) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
    return "\n".join(lines)


def render_experiments_markdown(results_dir) -> str:
    """A compact paper-vs-measured digest across all recorded benches."""
    results = load_results(results_dir)
    if not results:
        return "_No bench results found; run `pytest benchmarks/ --benchmark-only` first._"
    sections: List[str] = []
    for name, result in results.items():
        sections.append(f"### {name}\n")
        payload = dict(result.payload)
        paper = payload.pop("paper", {})
        if not isinstance(paper, dict):
            paper = {}
        flat = _flatten_scalars(payload)
        paper_flat = _flatten_scalars(paper)
        if flat:
            rows = [(key, paper_flat.get(key, "-"), value) for key, value in flat.items()]
            sections.append(format_comparison_table(rows))
        else:
            sections.append("_structured payload; see the JSON file_")
        sections.append("")
    return "\n".join(sections)


def _flatten_scalars(payload: Dict, prefix: str = "", depth: int = 2) -> Dict:
    """Scalar entries of a dict, flattening nested dicts to dotted keys."""
    out: Dict = {}
    for key, value in payload.items():
        name = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[name] = value
        elif isinstance(value, dict) and depth > 0:
            out.update(_flatten_scalars(value, prefix=f"{name}.", depth=depth - 1))
    return out
