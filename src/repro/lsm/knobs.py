"""Engine knobs: the bridge from a datastore configuration to the engine.

A :class:`~repro.config.space.Configuration` holds vendor-file parameter
values; :class:`EngineKnobs` is the resolved, engine-facing view of the
subset that has mechanical meaning in the simulated LSM engine, with all
unit conversions (MB -> bytes, ms -> s) done once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.cassandra import LEVELED, SIZE_TIERED
from repro.config.space import Configuration
from repro.errors import ConfigurationError

MB = 1024 * 1024


@dataclass(frozen=True)
class EngineKnobs:
    """Resolved engine tuning values (SI units)."""

    compaction_method: str
    concurrent_writes: int
    concurrent_reads: int
    file_cache_bytes: int
    memtable_space_bytes: int
    memtable_cleanup_threshold: float
    memtable_flush_writers: int
    concurrent_compactors: int
    compaction_throughput_bytes: float
    bloom_fp_chance: float
    key_cache_bytes: int
    row_cache_bytes: int
    commitlog_segment_bytes: int
    commitlog_sync_period_s: float
    sstable_target_bytes: int

    def __post_init__(self):
        if self.compaction_method not in (SIZE_TIERED, LEVELED):
            raise ConfigurationError(
                f"unknown compaction method {self.compaction_method!r}"
            )
        if self.memtable_cleanup_threshold <= 0 or self.memtable_cleanup_threshold > 1:
            raise ConfigurationError("cleanup threshold must be in (0, 1]")

    @property
    def flush_trigger_bytes(self) -> float:
        """Memtable bytes at which a flush fires (MT x space, §3.4.1)."""
        return self.memtable_cleanup_threshold * self.memtable_space_bytes

    @classmethod
    def from_configuration(cls, config: Configuration) -> "EngineKnobs":
        """Resolve a Cassandra/ScyllaDB configuration into engine knobs.

        Mirrors the vendor semantics the paper describes: memtable space
        is the sum of the heap and off-heap pools, and the cleanup
        threshold is the flush trigger fraction of that space.
        """
        space_bytes = (
            config["memtable_heap_space_in_mb"]
            + config["memtable_offheap_space_in_mb"]
        ) * MB
        return cls(
            compaction_method=config["compaction_method"],
            concurrent_writes=int(config["concurrent_writes"]),
            concurrent_reads=int(config["concurrent_reads"]),
            file_cache_bytes=int(config["file_cache_size_in_mb"]) * MB,
            memtable_space_bytes=int(space_bytes),
            memtable_cleanup_threshold=float(config["memtable_cleanup_threshold"]),
            memtable_flush_writers=int(config["memtable_flush_writers"]),
            concurrent_compactors=int(config["concurrent_compactors"]),
            compaction_throughput_bytes=float(
                config["compaction_throughput_mb_per_sec"]
            )
            * MB,
            bloom_fp_chance=float(config["bloom_filter_fp_chance"]),
            key_cache_bytes=int(config["key_cache_size_in_mb"]) * MB,
            row_cache_bytes=int(config["row_cache_size_in_mb"]) * MB,
            commitlog_segment_bytes=int(config["commitlog_segment_size_in_mb"]) * MB,
            commitlog_sync_period_s=float(config["commitlog_sync_period_in_ms"])
            / 1000.0,
            sstable_target_bytes=int(config["sstable_size_in_mb"]) * MB,
        )
