"""Bloom filter for SSTable membership tests.

Cassandra attaches a bloom filter to every SSTable so reads can skip
tables that definitely do not hold a key; the ``bloom_filter_fp_chance``
parameter trades memory for wasted probes.  This is a standard k-hash
bit-array implementation sized from the target false-positive rate.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Tuple

import numpy as np

# A simple 64-bit FNV-1a; two independent hashes are derived per key and
# combined (Kirsch-Mitzenmacher) into k hash functions.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1

_H1_SEED = 0x9E3779B9
_H2_SEED = 0x85EBCA6B


def _fnv1a(data: bytes, seed: int = 0) -> int:
    h = (_FNV_OFFSET ^ seed) & _MASK64
    for b in data:
        h ^= b
        h = (h * _FNV_PRIME) & _MASK64
    return h


def hash_keys(names: np.ndarray) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Vectorized (h1, h2) FNV-1a pair for a batch of ASCII key strings.

    ``names`` is a numpy unicode (``<U``) array.  Returns uint64 arrays
    bitwise-identical to the scalar :func:`_fnv1a` pair used by
    :meth:`BloomFilter._positions`, or ``None`` when the batch contains
    non-ASCII characters or embedded NULs (callers fall back to the
    scalar path — correctness never depends on vectorization).
    """
    if names.size == 0 or names.dtype.kind != "U":
        return None
    width = names.dtype.itemsize // 4
    codes = names.view(np.uint32).reshape(names.size, width)
    if codes.max(initial=0) > 127:
        return None  # multi-byte UTF-8: byte stream != code points
    nonzero = codes != 0
    # Keys must be a contiguous run of characters followed by padding:
    # an embedded NUL would corrupt the length computation below.
    if nonzero.shape[1] > 1 and not bool(np.all(nonzero[:, :-1] >= nonzero[:, 1:])):
        return None
    lengths = nonzero.sum(axis=1)
    codes64 = codes.astype(np.uint64)
    prime = np.uint64(_FNV_PRIME)
    h1 = np.full(names.size, _FNV_OFFSET ^ _H1_SEED, dtype=np.uint64)
    h2 = np.full(names.size, _FNV_OFFSET ^ _H2_SEED, dtype=np.uint64)
    with np.errstate(over="ignore"):  # uint64 wrap-around is the FNV mask
        for j in range(width):
            active = j < lengths
            b = codes64[:, j]
            h1 = np.where(active, (h1 ^ b) * prime, h1)
            h2 = np.where(active, (h2 ^ b) * prime, h2)
    return h1, h2 | np.uint64(1)


class BloomFilter:
    """Bit-array bloom filter with configurable false-positive chance."""

    __slots__ = ("n_bits", "n_hashes", "_bits", "n_items")

    def __init__(self, expected_items: int, fp_chance: float):
        if expected_items <= 0:
            raise ValueError("expected_items must be positive")
        if not (0.0 < fp_chance < 1.0):
            raise ValueError("fp_chance must be in (0, 1)")
        # Optimal sizing: m = -n ln(p) / (ln 2)^2, k = m/n ln(2).
        m = int(math.ceil(-expected_items * math.log(fp_chance) / (math.log(2) ** 2)))
        self.n_bits = max(m, 8)
        self.n_hashes = max(1, int(round((self.n_bits / expected_items) * math.log(2))))
        self._bits = bytearray((self.n_bits + 7) // 8)
        self.n_items = 0

    @classmethod
    def from_keys(cls, keys: Iterable[str], fp_chance: float) -> "BloomFilter":
        keys = list(keys)
        bf = cls(expected_items=max(len(keys), 1), fp_chance=fp_chance)
        hashed = hash_keys(np.asarray(keys)) if keys else None
        if hashed is None:
            for k in keys:
                bf.add(k)
        else:
            bf.add_many(*hashed)
        return bf

    def _positions(self, key: str):
        data = key.encode("utf-8")
        h1 = _fnv1a(data, seed=0x9E3779B9)
        h2 = _fnv1a(data, seed=0x85EBCA6B) | 1
        for i in range(self.n_hashes):
            yield ((h1 + i * h2) & _MASK64) % self.n_bits

    def add(self, key: str) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self.n_items += 1

    def add_many(self, h1: np.ndarray, h2: np.ndarray) -> None:
        """Bulk :meth:`add` of pre-hashed keys (see :func:`hash_keys`).

        Produces a bit array identical to adding the keys one at a time:
        the same Kirsch-Mitzenmacher positions are derived, and setting
        bits is an OR, so order and duplicates cannot change the result.
        """
        bits = np.frombuffer(self._bits, dtype=np.uint8)
        with np.errstate(over="ignore"):  # uint64 wrap == the scalar & MASK64
            pos = (
                h1[:, None] + self._hash_indices() * h2[:, None]
            ) % np.uint64(self.n_bits)
        np.bitwise_or.at(
            bits,
            (pos >> np.uint64(3)).astype(np.int64).ravel(),
            (np.uint8(1) << (pos & np.uint64(7)).astype(np.uint8)).ravel(),
        )
        self.n_items += len(h1)

    def _hash_indices(self) -> np.ndarray:
        """The ``0..k-1`` Kirsch-Mitzenmacher row, shaped for broadcast."""
        return np.arange(self.n_hashes, dtype=np.uint64)[None, :]

    def might_contain(self, key: str) -> bool:
        """True if the key *may* be present (false positives possible)."""
        return all(self._bits[p >> 3] & (1 << (p & 7)) for p in self._positions(key))

    def might_contain_many(self, h1: np.ndarray, h2: np.ndarray) -> np.ndarray:
        """Batch membership test over pre-hashed keys (see :func:`hash_keys`).

        Returns a bool array bitwise-identical to mapping
        :meth:`might_contain` over the corresponding keys: the same
        Kirsch-Mitzenmacher positions are derived and the same bits
        tested, just across the whole batch per hash index.
        """
        bits = np.frombuffer(self._bits, dtype=np.uint8)
        with np.errstate(over="ignore"):  # uint64 wrap == the scalar & MASK64
            pos = (
                h1[:, None] + self._hash_indices() * h2[:, None]
            ) % np.uint64(self.n_bits)
        byte = bits[(pos >> np.uint64(3)).astype(np.int64)]
        hit = (byte >> (pos & np.uint64(7)).astype(np.uint8)) & 1 > 0
        return hit.all(axis=1)

    def __contains__(self, key: str) -> bool:
        return self.might_contain(key)

    @property
    def size_bytes(self) -> int:
        return len(self._bits)

    @property
    def expected_fp_rate(self) -> float:
        """Theoretical false-positive rate at the current fill."""
        if self.n_items == 0:
            return 0.0
        fill = 1.0 - math.exp(-self.n_hashes * self.n_items / self.n_bits)
        return fill**self.n_hashes
