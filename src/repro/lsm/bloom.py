"""Bloom filter for SSTable membership tests.

Cassandra attaches a bloom filter to every SSTable so reads can skip
tables that definitely do not hold a key; the ``bloom_filter_fp_chance``
parameter trades memory for wasted probes.  This is a standard k-hash
bit-array implementation sized from the target false-positive rate.
"""

from __future__ import annotations

import math
from typing import Iterable

# A simple 64-bit FNV-1a; two independent hashes are derived per key and
# combined (Kirsch-Mitzenmacher) into k hash functions.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def _fnv1a(data: bytes, seed: int = 0) -> int:
    h = (_FNV_OFFSET ^ seed) & _MASK64
    for b in data:
        h ^= b
        h = (h * _FNV_PRIME) & _MASK64
    return h


class BloomFilter:
    """Bit-array bloom filter with configurable false-positive chance."""

    __slots__ = ("n_bits", "n_hashes", "_bits", "n_items")

    def __init__(self, expected_items: int, fp_chance: float):
        if expected_items <= 0:
            raise ValueError("expected_items must be positive")
        if not (0.0 < fp_chance < 1.0):
            raise ValueError("fp_chance must be in (0, 1)")
        # Optimal sizing: m = -n ln(p) / (ln 2)^2, k = m/n ln(2).
        m = int(math.ceil(-expected_items * math.log(fp_chance) / (math.log(2) ** 2)))
        self.n_bits = max(m, 8)
        self.n_hashes = max(1, int(round((self.n_bits / expected_items) * math.log(2))))
        self._bits = bytearray((self.n_bits + 7) // 8)
        self.n_items = 0

    @classmethod
    def from_keys(cls, keys: Iterable[str], fp_chance: float) -> "BloomFilter":
        keys = list(keys)
        bf = cls(expected_items=max(len(keys), 1), fp_chance=fp_chance)
        for k in keys:
            bf.add(k)
        return bf

    def _positions(self, key: str):
        data = key.encode("utf-8")
        h1 = _fnv1a(data, seed=0x9E3779B9)
        h2 = _fnv1a(data, seed=0x85EBCA6B) | 1
        for i in range(self.n_hashes):
            yield ((h1 + i * h2) & _MASK64) % self.n_bits

    def add(self, key: str) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self.n_items += 1

    def might_contain(self, key: str) -> bool:
        """True if the key *may* be present (false positives possible)."""
        return all(self._bits[p >> 3] & (1 << (p & 7)) for p in self._positions(key))

    def __contains__(self, key: str) -> bool:
        return self.might_contain(key)

    @property
    def size_bytes(self) -> int:
        return len(self._bits)

    @property
    def expected_fp_rate(self) -> float:
        """Theoretical false-positive rate at the current fill."""
        if self.n_items == 0:
            return 0.0
        fill = 1.0 - math.exp(-self.n_hashes * self.n_items / self.n_bits)
        return fill**self.n_hashes
