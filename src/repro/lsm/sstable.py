"""Immutable sorted string tables (SSTables).

Each memtable flush produces one SSTable: records sorted by key, a bloom
filter, and a sparse block index.  SSTables are never modified; compaction
merges several into new ones and discards the inputs (paper §2.2.1).
"""

from __future__ import annotations

import bisect
import struct
import zlib
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.lsm.bloom import BloomFilter
from repro.lsm.record import Record

#: Logical block size used for cache accounting (Cassandra reads 64k
#: buffered chunks through its file cache).
BLOCK_BYTES = 64 * 1024


def checksum_records(records: Sequence[Record]) -> int:
    """CRC32 over a record run's full content (keys, timestamps, values).

    The analogue of Cassandra's per-SSTable digest file: computed when a
    table is built, recomputed by a recovery scrub to detect at-rest
    corruption before a read can return damaged data.  Timestamps are
    hashed as raw IEEE-754 bytes so the checksum is exact, not
    repr-dependent.
    """
    crc = 0
    for rec in records:
        crc = zlib.crc32(rec.key.encode("utf-8"), crc)
        crc = zlib.crc32(struct.pack("<d", rec.timestamp), crc)
        if rec.value is None:
            crc = zlib.crc32(b"\x01", crc)  # tombstone marker
        else:
            crc = zlib.crc32(b"\x00", crc)
            crc = zlib.crc32(rec.value, crc)
    return crc & 0xFFFFFFFF


class SSTable:
    """An immutable, sorted, bloom-filtered run of records.

    Records are stored key-sorted with one version per key (the flush /
    compaction that built the table already collapsed versions).
    """

    __slots__ = (
        "table_id",
        "level",
        "_keys",
        "_keys_arr",
        "_records",
        "bloom",
        "size_bytes",
        "created_at",
        "checksum",
    )

    def __init__(
        self,
        table_id: int,
        records: Sequence[Record],
        fp_chance: float,
        level: int = 0,
        created_at: float = 0.0,
    ):
        if not records:
            raise ValueError("an SSTable cannot be empty")
        keys = [r.key for r in records]
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            raise ValueError("records must be strictly sorted by key")
        self.table_id = table_id
        self.level = level
        self._keys: List[str] = keys
        self._keys_arr: Optional[np.ndarray] = None  # lazy, for batch probes
        self._records: List[Record] = list(records)
        self.bloom = BloomFilter.from_keys(keys, fp_chance)
        self.size_bytes = sum(r.size_bytes for r in records)
        self.created_at = created_at
        self.checksum = checksum_records(self._records)

    # -- pickling --------------------------------------------------------------

    def __getstate__(self):
        # The lazy key-array cache is derived state; dropping it keeps
        # pickled artifacts identical whether or not a batch probe ran.
        return {
            s: getattr(self, s) for s in self.__slots__ if s != "_keys_arr"
        }

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)
        self._keys_arr = None

    # -- metadata --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    @property
    def key_count(self) -> int:
        return len(self._records)

    @property
    def min_key(self) -> str:
        return self._keys[0]

    @property
    def max_key(self) -> str:
        return self._keys[-1]

    @property
    def block_count(self) -> int:
        return max(1, (self.size_bytes + BLOCK_BYTES - 1) // BLOCK_BYTES)

    def overlaps(self, other: "SSTable") -> bool:
        """Whether the key ranges of two tables intersect."""
        return self.min_key <= other.max_key and other.min_key <= self.max_key

    def overlaps_range(self, min_key: str, max_key: str) -> bool:
        return self.min_key <= max_key and min_key <= self.max_key

    # -- reads ---------------------------------------------------------------

    def verify(self) -> bool:
        """Recompute the content checksum (a recovery scrub's read pass)."""
        return checksum_records(self._records) == self.checksum

    def might_contain(self, key: str) -> bool:
        """Bloom-filter membership test (false positives possible)."""
        if key < self.min_key or key > self.max_key:
            return False
        return self.bloom.might_contain(key)

    def get(self, key: str) -> Optional[Record]:
        """Exact lookup; None if absent (bloom said maybe but lied)."""
        i = bisect.bisect_left(self._keys, key)
        if i < len(self._keys) and self._keys[i] == key:
            return self._records[i]
        return None

    def record_at(self, i: int) -> Record:
        """Record at a known sorted position (from a batched searchsorted)."""
        return self._records[i]

    def block_of(self, key: str) -> int:
        """Index of the logical block holding ``key`` (for the cache)."""
        i = bisect.bisect_left(self._keys, key)
        i = min(i, len(self._keys) - 1)
        # Records are roughly uniform in size; map record index -> block.
        return int(i * self.size_bytes / max(len(self._keys), 1)) // BLOCK_BYTES

    def keys_array(self) -> np.ndarray:
        """Key column as a numpy array (cached) for batched searchsorted.

        Tables are immutable, so the array is built once on first use;
        it does not survive pickling (rebuilt lazily after a restore).
        """
        if self._keys_arr is None:
            self._keys_arr = np.array(self._keys)
        return self._keys_arr

    def block_of_many(self, idx: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`block_of` over *clamped record indices*.

        ``idx`` must already be ``min(bisect_left(key), len-1)`` per key.
        The float expression mirrors the scalar one exactly; the int64
        product is exact in float64 whenever it stays under 2**53, which
        a guard enforces by falling back to the scalar form.
        """
        n = max(len(self._keys), 1)
        if (n - 1) * self.size_bytes >= 2**53:  # pragma: no cover - huge tables
            return np.array(
                [int(int(i) * self.size_bytes / n) // BLOCK_BYTES for i in idx],
                dtype=np.int64,
            )
        scaled = (idx.astype(np.int64) * self.size_bytes).astype(np.float64) / n
        return np.trunc(scaled).astype(np.int64) // BLOCK_BYTES

    def records(self) -> Iterable[Record]:
        return iter(self._records)

    def records_in_range(self, start_key: str, end_key: str) -> Iterable[Record]:
        """Records with start <= key <= end, in key order."""
        lo = bisect.bisect_left(self._keys, start_key)
        hi = bisect.bisect_right(self._keys, end_key)
        return iter(self._records[lo:hi])

    def range_fraction(self, start_key: str, end_key: str) -> float:
        """Fraction of this table's rows inside [start, end]."""
        lo = bisect.bisect_left(self._keys, start_key)
        hi = bisect.bisect_right(self._keys, end_key)
        return max(hi - lo, 0) / max(len(self._keys), 1)

    def __repr__(self) -> str:
        return (
            f"SSTable(id={self.table_id}, L{self.level}, {self.key_count} keys, "
            f"{self.size_bytes}B, [{self.min_key}..{self.max_key}])"
        )


def merge_records(
    runs: Sequence[Iterable[Record]],
    drop_tombstones: bool = False,
) -> List[Record]:
    """K-way merge of sorted runs, keeping the newest version per key.

    ``drop_tombstones`` is only safe when merging *all* tables that could
    contain older versions of a key (e.g. a full merge or bottom-level
    leveled compaction); otherwise tombstones must be retained so they
    keep shadowing older versions elsewhere.
    """
    newest: Dict[str, Record] = {}
    for run in runs:
        for rec in run:
            cur = newest.get(rec.key)
            if cur is None or rec.supersedes(cur):
                newest[rec.key] = rec
    merged = [newest[k] for k in sorted(newest)]
    if drop_tombstones:
        merged = [r for r in merged if not r.is_tombstone]
    return merged


def split_into_tables(
    records: Sequence[Record],
    max_table_bytes: int,
    next_id,
    fp_chance: float,
    level: int,
    created_at: float,
) -> List[SSTable]:
    """Chop a sorted record run into SSTables of bounded size.

    Used by leveled compaction, which maintains equal-sized,
    non-overlapping tables per level; ``next_id`` is a callable issuing
    fresh table ids.
    """
    tables: List[SSTable] = []
    chunk: List[Record] = []
    chunk_bytes = 0
    for rec in records:
        chunk.append(rec)
        chunk_bytes += rec.size_bytes
        if chunk_bytes >= max_table_bytes:
            tables.append(
                SSTable(next_id(), chunk, fp_chance, level=level, created_at=created_at)
            )
            chunk, chunk_bytes = [], 0
    if chunk:
        tables.append(
            SSTable(next_id(), chunk, fp_chance, level=level, created_at=created_at)
        )
    return tables
