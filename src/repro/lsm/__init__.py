"""LSM-tree storage substrate.

A real, working log-structured merge-tree key-value store — memtable,
commit log, bloom-filtered SSTables, size-tiered and leveled compaction —
that doubles as the performance simulator: every operation charges
simulated time through the cost models in :mod:`repro.sim`.

Two execution granularities share one cost model:

* :class:`~repro.lsm.engine.LSMEngine` — fully materialized store with a
  per-operation API (used for correctness tests and small workloads).
* :class:`~repro.lsm.analytic.AnalyticLSMModel` — evolves the same
  aggregate state (memtable fill, table layout, compaction backlog,
  cache) in time steps, fast enough for the paper's 220-point data
  collection and exhaustive-search baselines.
"""

from repro.lsm.record import Record
from repro.lsm.bloom import BloomFilter
from repro.lsm.memtable import Memtable
from repro.lsm.commitlog import CommitLog
from repro.lsm.sstable import SSTable
from repro.lsm.compaction import (
    CompactionTask,
    SizeTieredStrategy,
    LeveledStrategy,
    make_strategy,
)
from repro.lsm.knobs import EngineKnobs
from repro.lsm.engine import LSMEngine
from repro.lsm.analytic import AnalyticLSMModel

__all__ = [
    "Record",
    "BloomFilter",
    "Memtable",
    "CommitLog",
    "SSTable",
    "CompactionTask",
    "SizeTieredStrategy",
    "LeveledStrategy",
    "make_strategy",
    "EngineKnobs",
    "LSMEngine",
    "AnalyticLSMModel",
]
