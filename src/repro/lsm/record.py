"""Row records and tombstones."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Fixed per-record storage overhead (key bytes, timestamps, row header).
RECORD_OVERHEAD_BYTES = 40


@dataclass(frozen=True, order=True)
class Record:
    """One row version: a (key, value, timestamp) triple.

    ``value is None`` marks a tombstone (a delete marker).  Ordering is by
    ``(key, timestamp)`` so merged iteration during compaction can pick
    the newest version of each key.
    """

    key: str
    timestamp: float
    value: Optional[bytes] = None

    @property
    def is_tombstone(self) -> bool:
        return self.value is None

    @property
    def size_bytes(self) -> int:
        """Approximate on-disk footprint of this record."""
        value_len = len(self.value) if self.value is not None else 0
        return RECORD_OVERHEAD_BYTES + len(self.key) + value_len

    @staticmethod
    def tombstone(key: str, timestamp: float) -> "Record":
        return Record(key=key, timestamp=timestamp, value=None)

    def supersedes(self, other: "Record") -> bool:
        """Whether this version should win over ``other`` for the same key."""
        if self.key != other.key:
            raise ValueError("cannot compare versions of different keys")
        return self.timestamp >= other.timestamp
