"""Batched analytic LSM performance model.

Evolves the same aggregate state as :class:`~repro.lsm.engine.LSMEngine`
— memtable fill, SSTable layout, compaction backlog, file-cache warmth —
in fixed time steps, pricing work through the *same* cost functions in
:mod:`repro.sim.costs`.  Each step solves the fluid bottleneck equation
for the closed-loop throughput the server can sustain at the current
read ratio, then applies that step's structural consequences (flushes,
compaction progress).

This is the fast path used for the paper's 220-point data collection,
the exhaustive-search baselines, and anything else that would need hours
of per-operation simulation.  ``tests/test_consistency.py`` checks that
it agrees with the materialized engine on ordering and trends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Deque, List, Optional
from collections import deque

import numpy as np

from repro.config.cassandra import LEVELED
from repro.lsm.compaction import (
    BUCKET_HIGH,
    BUCKET_LOW,
    L0_COMPACTION_TRIGGER,
    LEVEL_FANOUT,
    SIZE_TIERED_MIN_THRESHOLD,
)
from repro.lsm.engine import COMPACTOR_STREAM_BYTES, LEVELED_MIN_COMPACTION_BYTES
from repro.lsm.knobs import EngineKnobs
from repro.lsm.record import RECORD_OVERHEAD_BYTES
from repro.lsm.sstable import BLOCK_BYTES
from repro.sim.costs import (
    CostConstants,
    DEFAULT_COSTS,
    commitlog_bytes_per_write,
    expected_disk_probes_per_read,
    expected_version_spread,
    read_cpu_seconds,
    thread_contention,
    write_cpu_seconds,
)
from repro.sim.hardware import DEFAULT_SERVER, HardwareSpec
from repro.sim.rng import SeedLike, derive_rng

#: Seconds for the file cache to reach steady-state hit ratio from cold.
CACHE_WARMUP_SECONDS = 45.0

#: Softness of the bottleneck combination (higher = closer to hard min).
_SOFTMIN_POWER = 8.0


def _soft_min(caps) -> float:
    """Power-mean soft minimum of resource capacities.

    A hard ``min`` produces kinked response surfaces; real servers show
    rounded knees because nearly saturated resources already queue.  The
    power mean ``(sum c_i^-p)^(-1/p)`` sits a few percent below the
    binding cap when a second resource is close, and converges to the
    min as p grows.
    """
    finite = np.array([c for c in caps if np.isfinite(c)], dtype=float)
    if finite.size == 0:
        return float("inf")
    scale = finite.min()
    if scale <= 0:
        return 0.0
    return float(scale * np.power(np.sum((scale / finite) ** _SOFTMIN_POWER), -1.0 / _SOFTMIN_POWER))


@dataclass
class WorkloadProfile:
    """Workload characteristics that shape per-op costs (paper §3.3).

    ``krd_mean_ops`` is the mean key-reuse distance in operations (the
    paper fits an exponential distribution to it); ``update_fraction`` is
    the share of writes hitting existing keys (vs fresh inserts).
    """

    value_bytes: int = 200
    key_bytes: int = 16
    update_fraction: float = 0.3
    krd_mean_ops: float = 200_000.0

    @property
    def record_bytes(self) -> float:
        return RECORD_OVERHEAD_BYTES + self.key_bytes + self.value_bytes


@dataclass
class StepResult:
    """Outcome of one analytic time step.

    Latencies are closed-loop means via Little's law: the YCSB-style
    benchmark keeps the worker pools saturated, so mean latency is the
    pool size divided by the class throughput (and never below the bare
    service time).  The paper optimizes throughput (§2.3) — MG-RAST is
    not latency-sensitive — but a middleware user will still want to see
    the latency consequences of a configuration.
    """

    t: float
    dt: float
    throughput: float  # ops/s sustained this step
    reads: float
    writes: float
    sstable_count: int
    cache_hit_ratio: float
    compaction_backlog_bytes: float
    read_latency_s: float = 0.0
    write_latency_s: float = 0.0


@dataclass
class _BacklogTask:
    remaining_io_bytes: float
    kind: str          # "st_merge" | "l0_to_l1" | "spill"
    payload: tuple = ()


class AnalyticLSMModel:
    """Fluid-approximation LSM server with the engine's cost model."""

    def __init__(
        self,
        knobs: EngineKnobs,
        hardware: HardwareSpec = DEFAULT_SERVER,
        costs: CostConstants = DEFAULT_COSTS,
        profile: Optional[WorkloadProfile] = None,
        seed: SeedLike = 0,
        noise_sigma: float = 0.015,
        run_bias_sigma: float = 0.02,
    ):
        self.knobs = knobs
        self.hardware = hardware
        self.costs = costs
        self.profile = profile if profile is not None else WorkloadProfile()
        self.rng = derive_rng(seed)
        self.noise_sigma = noise_sigma
        # Run-level measurement bias: two benchmark runs of the same
        # (config, workload) on real hardware differ by a few percent
        # (thermal state, page-cache luck, JIT warmth).  Sampled once per
        # server instance.
        if run_bias_sigma > 0:
            self.run_bias = float(
                np.clip(1.0 + run_bias_sigma * self.rng.standard_normal(), 0.85, 1.15)
            )
        else:
            self.run_bias = 1.0

        self.t = 0.0
        self.memtable_bytes = 0.0
        self.dataset_bytes = 0.0
        # Size-tiered layout: individual table sizes; leveled layout: L0
        # table sizes plus per-level byte totals.
        self.st_tables: List[float] = []
        self.l0_tables: List[float] = []
        self.level_bytes: List[float] = [0.0]  # index 0 unused for leveled math
        self.backlog: Deque[_BacklogTask] = deque()
        self.cache_age = 0.0
        self.total_ops = 0.0
        self.total_flushes = 0
        self.total_compactions = 0

    # ------------------------------------------------------------------ layout stats

    @property
    def is_leveled(self) -> bool:
        return self.knobs.compaction_method == LEVELED

    @property
    def sstable_count(self) -> int:
        if self.is_leveled:
            target = max(self.knobs.sstable_target_bytes, 1)
            leveled = sum(
                int(math.ceil(b / target)) for b in self.level_bytes[1:] if b > 0
            )
            return len(self.l0_tables) + leveled
        return len(self.st_tables)

    @property
    def tables_bloom_checked(self) -> float:
        """Expected tables consulted per read (bloom or range index)."""
        if self.is_leveled:
            nonempty_levels = sum(1 for b in self.level_bytes[1:] if b > 0)
            return len(self.l0_tables) + nonempty_levels
        return float(len(self.st_tables))

    @property
    def compaction_backlog_bytes(self) -> float:
        return sum(task.remaining_io_bytes for task in self.backlog)

    def cache_hit_ratio(self) -> float:
        """Steady-state che-approximation hit ratio with a warm-up ramp.

        A cached page covers ``cache_coverage_ops_per_page`` operations
        of reuse distance; with exponentially distributed KRD of mean
        ``d`` ops, a re-access hits iff its distance falls inside the
        cache's coverage: ``1 - exp(-coverage / d)`` (paper §3.3: huge
        KRD is exactly why caching is of limited value for MG-RAST).
        """
        pages = self.knobs.file_cache_bytes / BLOCK_BYTES
        if pages <= 0:
            return 0.0
        working_set_pages = max(self.dataset_bytes / BLOCK_BYTES, 1.0)
        if working_set_pages <= pages:
            steady = 1.0
        else:
            coverage = self.costs.cache_coverage_ops_per_page
            if self.is_leveled:
                coverage *= self.costs.leveled_cache_locality
            coverage_ops = pages * coverage
            steady = 1.0 - math.exp(-coverage_ops / self.profile.krd_mean_ops)
        ramp = 1.0 - math.exp(-self.cache_age / CACHE_WARMUP_SECONDS)
        return steady * ramp

    # ------------------------------------------------------------------ throughput

    def sustainable_throughput(self, read_ratio: float) -> float:
        """Solve the fluid bottleneck equation for ops/s at this instant."""
        if not (0.0 <= read_ratio <= 1.0):
            raise ValueError("read_ratio must be in [0, 1]")
        r = read_ratio
        w = 1.0 - r
        costs = self.costs
        hit = self.cache_hit_ratio()

        n_checked = self.tables_bloom_checked
        spread = expected_version_spread(
            max(n_checked, 1.0), self.profile.update_fraction
        )
        probed = min(
            spread + self.knobs.bloom_fp_chance * max(n_checked - spread, 0.0),
            max(n_checked, 1.0),
        )
        disk_probes = expected_disk_probes_per_read(
            spread, n_checked, self.knobs.bloom_fp_chance, hit
        )

        cpu_r = read_cpu_seconds(n_checked, probed, probed * hit, costs)
        cpu_w = write_cpu_seconds(costs)

        bg_cpu, bg_seq = self._background_utilization()
        cores = max(
            self.hardware.cpu_cores * (1.0 - bg_cpu) * (self.hardware.cpu_ghz / 3.0),
            0.5,
        )

        def contention(threads: int) -> float:
            return thread_contention(threads, cores, costs)

        cpu_per_op = (
            r * cpu_r * contention(self.knobs.concurrent_reads)
            + w * cpu_w * contention(self.knobs.concurrent_writes)
        )
        caps = [cores / cpu_per_op if cpu_per_op > 0 else math.inf]

        # Sequential disk: commit-log bytes per write.
        if w > 0:
            cl_bytes = commitlog_bytes_per_write(self.profile.record_bytes, costs)
            seq_bw = self.hardware.disk_seq_bandwidth * (1.0 - bg_seq)
            caps.append(seq_bw / (w * cl_bytes))
            # Flush writers must keep pace with ingest.
            flush_bw = (
                self.knobs.memtable_flush_writers * costs.flush_writer_bandwidth
            )
            caps.append(flush_bw / (w * self.profile.record_bytes))
            # Write worker pool.
            caps.append(self.knobs.concurrent_writes / (w * costs.write_thread_hold))

        if r > 0:
            iops = self.hardware.disk_rand_iops * self.hardware.disk_count
            # A denormal read ratio can underflow these products to 0.0,
            # which would divide by zero; an underflowed denominator means
            # the cap is unbounded, so it imposes no constraint.
            if r * disk_probes > 0:
                caps.append(iops / (r * disk_probes))
            if r * costs.read_thread_hold > 0:
                caps.append(self.knobs.concurrent_reads / (r * costs.read_thread_hold))

        return max(_soft_min(caps) * self.run_bias, 1.0)

    # ------------------------------------------------------------------ stepping

    def step(self, read_ratio: float, dt: float = 1.0) -> StepResult:
        """Advance ``dt`` simulated seconds at the given read ratio."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        x = self.sustainable_throughput(read_ratio)
        if self.noise_sigma > 0:
            x *= max(0.2, 1.0 + self.noise_sigma * self.rng.standard_normal())

        reads = x * read_ratio * dt
        writes = x * (1.0 - read_ratio) * dt
        read_lat, write_lat = self._latencies(x, read_ratio)
        self._apply_writes(writes)
        self._drain_background(dt)
        self.t += dt
        self.cache_age += dt
        self.total_ops += reads + writes
        return StepResult(
            t=self.t,
            dt=dt,
            throughput=x,
            reads=reads,
            writes=writes,
            sstable_count=self.sstable_count,
            cache_hit_ratio=self.cache_hit_ratio(),
            compaction_backlog_bytes=self.compaction_backlog_bytes,
            read_latency_s=read_lat,
            write_latency_s=write_lat,
        )

    def _latencies(self, throughput: float, read_ratio: float) -> tuple:
        """Closed-loop mean latencies per class (Little's law)."""
        read_rate = throughput * read_ratio
        write_rate = throughput * (1.0 - read_ratio)
        read_lat = (
            max(self.knobs.concurrent_reads / read_rate, self.costs.read_thread_hold)
            if read_rate > 0
            else 0.0
        )
        write_lat = (
            max(self.knobs.concurrent_writes / write_rate, self.costs.write_thread_hold)
            if write_rate > 0
            else 0.0
        )
        return read_lat, write_lat

    def apply_external_load(self, reads: float, writes: float, dt: float) -> None:
        """Apply work whose rate was decided elsewhere (cluster path).

        A cluster coordinator solves the throughput equation across
        replicas and then pushes each node its share; the node only has
        to absorb the structural consequences.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        if reads < 0 or writes < 0:
            raise ValueError("work cannot be negative")
        self._apply_writes(writes)
        self._drain_background(dt)
        self.t += dt
        self.cache_age += dt
        self.total_ops += reads + writes

    def run(
        self, read_ratio: float, duration: float, dt: float = 1.0
    ) -> List[StepResult]:
        """Run ``duration`` seconds and return the per-step series."""
        steps = max(1, int(round(duration / dt)))
        return [self.step(read_ratio, dt) for _ in range(steps)]

    def load(self, n_keys: int) -> None:
        """Load phase: bulk-insert ``n_keys`` fresh rows (YCSB load)."""
        target_bytes = n_keys * self.profile.record_bytes
        while self.dataset_bytes < target_bytes:
            x = self.sustainable_throughput(read_ratio=0.0)
            dt = min(
                5.0,
                max(
                    0.5,
                    (target_bytes - self.dataset_bytes)
                    / max(x * self.profile.record_bytes, 1.0),
                ),
            )
            inserted = x * dt
            self._apply_writes(inserted, all_inserts=True)
            self._drain_background(dt)
            self.t += dt

    def reconfigure(self, knobs: EngineKnobs) -> None:
        """Apply new knobs online; a strategy switch restructures lazily."""
        old = self.knobs
        self.knobs = knobs
        if knobs.file_cache_bytes != old.file_cache_bytes:
            # Shrinks lose warmth proportionally; growth re-warms.
            self.cache_age = min(self.cache_age, CACHE_WARMUP_SECONDS / 2)
        if knobs.compaction_method != old.compaction_method:
            self._switch_strategy()

    def settle(self, max_seconds: float = 600.0, dt: float = 1.0) -> None:
        """Drain flush/compaction backlog (between benchmark phases)."""
        elapsed = 0.0
        while self.backlog and elapsed < max_seconds:
            self._drain_background(dt)
            self.t += dt
            elapsed += dt

    # ------------------------------------------------------------------ write effects

    def _apply_writes(self, n_writes: float, all_inserts: bool = False) -> None:
        if n_writes <= 0:
            return
        insert_fraction = 1.0 if all_inserts else (1.0 - self.profile.update_fraction)
        self.dataset_bytes += n_writes * insert_fraction * self.profile.record_bytes
        self.memtable_bytes += n_writes * self.profile.record_bytes
        trigger = self.knobs.flush_trigger_bytes
        while self.memtable_bytes >= trigger:
            self._flush(trigger)
            self.memtable_bytes -= trigger

    def _flush(self, flush_bytes: float) -> None:
        self.total_flushes += 1
        if self.is_leveled:
            self.l0_tables.append(flush_bytes)
            self._maybe_trigger_leveled()
        else:
            self.st_tables.append(flush_bytes)
            self._maybe_trigger_size_tiered()

    # ------------------------------------------------------------------ compaction triggers

    def _busy_st_tables(self) -> set:
        busy = set()
        for task in self.backlog:
            if task.kind == "st_merge":
                busy.update(task.payload[0])
        return busy

    def _maybe_trigger_size_tiered(self) -> None:
        busy = self._busy_st_tables()
        idle = [
            (i, s) for i, s in enumerate(self.st_tables) if i not in busy
        ]
        # Bucket by similar size, as SizeTieredStrategy does.
        buckets: List[List[tuple]] = []
        averages: List[float] = []
        for i, s in sorted(idle, key=lambda p: p[1]):
            placed = False
            for bi, avg in enumerate(averages):
                if BUCKET_LOW * avg <= s <= BUCKET_HIGH * avg:
                    buckets[bi].append((i, s))
                    averages[bi] = sum(x[1] for x in buckets[bi]) / len(buckets[bi])
                    placed = True
                    break
            if not placed:
                buckets.append([(i, s)])
                averages.append(s)
        for bucket in buckets:
            if len(bucket) >= SIZE_TIERED_MIN_THRESHOLD:
                indices = tuple(i for i, _ in bucket)
                total = sum(s for _, s in bucket)
                self.backlog.append(
                    _BacklogTask(
                        remaining_io_bytes=self.costs.compaction_io_factor * total,
                        kind="st_merge",
                        payload=(indices, total),
                    )
                )

    def _busy_l0(self) -> bool:
        return any(task.kind == "l0_to_l1" for task in self.backlog)

    def _maybe_trigger_leveled(self) -> None:
        if len(self.l0_tables) >= L0_COMPACTION_TRIGGER and not self._busy_l0():
            l0_bytes = sum(self.l0_tables)
            self._ensure_level(1)
            # Flushes span the whole keyspace, so the merge rewrites L1.
            io = self.costs.compaction_io_factor * (l0_bytes + self.level_bytes[1])
            self.backlog.append(
                _BacklogTask(
                    remaining_io_bytes=io,
                    kind="l0_to_l1",
                    payload=(len(self.l0_tables), l0_bytes),
                )
            )
        self._maybe_trigger_spills()

    def _level_capacity(self, level: int) -> float:
        return float(self.knobs.sstable_target_bytes * LEVEL_FANOUT**level)

    def _maybe_trigger_spills(self) -> None:
        spilling = {task.payload[0] for task in self.backlog if task.kind == "spill"}
        for li in range(1, len(self.level_bytes)):
            if li in spilling:
                continue
            if self.level_bytes[li] <= self._level_capacity(li):
                continue
            victim = float(self.knobs.sstable_target_bytes)
            self._ensure_level(li + 1)
            # A victim table overlaps ~fanout tables in the next level.
            overlap = min(
                self.level_bytes[li + 1], float(LEVEL_FANOUT * victim)
            )
            io = self.costs.compaction_io_factor * (victim + overlap)
            self.backlog.append(
                _BacklogTask(remaining_io_bytes=io, kind="spill", payload=(li, victim))
            )

    def _ensure_level(self, level: int) -> None:
        while len(self.level_bytes) <= level:
            self.level_bytes.append(0.0)

    def _switch_strategy(self) -> None:
        """Carry the current data over to the other layout shape.

        Switching to leveled drops existing runs into L0-equivalents that
        subsequent compactions absorb; switching to size-tiered flattens
        the levels into individual tables.
        """
        self.backlog.clear()
        if self.is_leveled:
            total = sum(self.st_tables)
            self.st_tables.clear()
            if total > 0:
                self._ensure_level(1)
                # Seed L1.. with the existing data mass.
                remaining = total
                li = 1
                while remaining > 0:
                    self._ensure_level(li)
                    cap = self._level_capacity(li)
                    take = min(remaining, cap)
                    self.level_bytes[li] += take
                    remaining -= take
                    li += 1
            self._maybe_trigger_leveled()
        else:
            target = max(self.knobs.sstable_target_bytes, 1)
            for b in self.level_bytes[1:]:
                while b > 0:
                    take = min(b, float(target) * LEVEL_FANOUT)
                    self.st_tables.append(take)
                    b -= take
            self.level_bytes = [0.0]
            self.st_tables.extend(self.l0_tables)
            self.l0_tables.clear()
            self._maybe_trigger_size_tiered()

    # ------------------------------------------------------------------ background

    def _background_utilization(self) -> tuple:
        comp_rate = self._compaction_rate()
        flush_active = self.memtable_bytes > 0.5 * self.knobs.flush_trigger_bytes
        flush_rate = (
            self.knobs.memtable_flush_writers * self.costs.flush_writer_bandwidth
            if flush_active
            else 0.0
        ) * 0.5  # flushes are intermittent; average duty cycle
        seq_demand = comp_rate * self.costs.compaction_io_factor + flush_rate
        seq_util = min(seq_demand / self.hardware.disk_seq_bandwidth, 0.9)
        cpu_demand = comp_rate * self.costs.compaction_cpu_per_byte
        cpu_util = min(cpu_demand / self.hardware.cpu_cores, 0.6)
        return cpu_util, seq_util

    def _compaction_rate(self) -> float:
        if not self.backlog:
            return 0.0
        active = min(len(self.backlog), self.knobs.concurrent_compactors)
        stream_cap = active * COMPACTOR_STREAM_BYTES
        # The throughput knob throttles each compactor process; running
        # more compactors in parallel raises total drain rate ("simultaneous
        # compactions help preserve read performance ... by limiting the
        # number of small SSTables that accumulate", paper §3.4.1).
        throttle = self.knobs.compaction_throughput_bytes * active
        if self.is_leveled:
            # LCS fires on every flush and escalates past the user
            # throttle when L0 backs up (paper §2.2.2).
            throttle = max(throttle, LEVELED_MIN_COMPACTION_BYTES)
        return min(throttle, stream_cap)

    def _drain_background(self, dt: float) -> None:
        rate = self._compaction_rate()
        if rate <= 0.0:
            return
        # The queue holds io-bytes (read+write); drain at io-rate.
        budget = rate * self.costs.compaction_io_factor * dt
        while budget > 0 and self.backlog:
            task = self.backlog[0]
            used = min(budget, task.remaining_io_bytes)
            task.remaining_io_bytes -= used
            budget -= used
            if task.remaining_io_bytes <= 0:
                self.backlog.popleft()
                self._complete(task)

    def _complete(self, task: _BacklogTask) -> None:
        self.total_compactions += 1
        if task.kind == "st_merge":
            indices, total = task.payload
            keep = [
                s for i, s in enumerate(self.st_tables) if i not in set(indices)
            ]
            self.st_tables = keep + [total]
            self._maybe_trigger_size_tiered()
        elif task.kind == "l0_to_l1":
            count, l0_bytes = task.payload
            del self.l0_tables[:count]
            self._ensure_level(1)
            self.level_bytes[1] += l0_bytes
            self._maybe_trigger_spills()
        elif task.kind == "spill":
            li, victim = task.payload
            self._ensure_level(li + 1)
            moved = min(victim, self.level_bytes[li])
            self.level_bytes[li] -= moved
            self.level_bytes[li + 1] += moved
            self._maybe_trigger_spills()

    def __repr__(self) -> str:
        return (
            f"AnalyticLSMModel({self.knobs.compaction_method}, "
            f"tables={self.sstable_count}, t={self.t:.1f}s)"
        )
