"""The materialized LSM engine.

A fully functional key-value store — real records, real bloom filters, a
real LRU file cache, real compaction merges — that charges every
operation simulated time through :mod:`repro.sim.costs`.  Flushes and
compactions run as *background work*: they are queued with byte sizes and
drained as the clock advances, stealing disk bandwidth and CPU from
foreground queries exactly as the paper describes (§2.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Set
from collections import deque

import numpy as np

from repro.config.cassandra import LEVELED
from repro.errors import DatastoreError, PersistenceError
from repro.lsm.bloom import hash_keys
from repro.lsm.commitlog import CommitLog
from repro.lsm.compaction import (
    CompactionTask,
    TableLayout,
    make_strategy,
)
from repro.lsm.knobs import EngineKnobs
from repro.lsm.memtable import Memtable
from repro.lsm.record import RECORD_OVERHEAD_BYTES, Record
from repro.lsm.sstable import SSTable, merge_records, split_into_tables
from repro.sim.cache import LruFileCache
from repro.sim.clock import SimClock
from repro.sim.cpu import CpuModel
from repro.sim.disk import DiskModel
from repro.sim.costs import (
    CostConstants,
    DEFAULT_COSTS,
    commitlog_bytes_per_write,
    read_cpu_seconds,
    read_cpu_seconds_array,
    thread_contention,
    write_cpu_seconds,
)
from repro.sim.hardware import DEFAULT_SERVER, HardwareSpec

#: Streaming capacity of one compactor process (bounded by merge CPU and
#: per-stream disk efficiency).
COMPACTOR_STREAM_BYTES = 45 * 1024 * 1024
#: Leveled compaction must keep up with flushes — it fires on every
#: flush and escalates past the user throttle when L0 backs up (paper
#: §2.2.2: it "requires more processing and disk I/O operations").
LEVELED_MIN_COMPACTION_BYTES = 64 * 1024 * 1024
#: Flush queue depth (in flush sizes) beyond which writes stall.
FLUSH_STALL_DEPTH = 2.0

#: Integer op-kind codes for vectorized operation blocks.  They live here
#: (not in :mod:`repro.workload`) because the import DAG runs lsm ->
#: workload: the workload generator emits these codes and the engine
#: consumes them without either layer reaching upward.
OP_READ = 0
OP_WRITE = 1
OP_DELETE = 2

#: Below this run length the vectorized probe's numpy setup costs more
#: than it saves; the scalar path is used (the two paths are state- and
#: stats-identical, so the threshold is purely a performance choice).
_MIN_VECTOR_PROBE = 8
#: Below this many ops, a mutation run's numpy setup costs more than the
#: scalar loop it replaces.
_MIN_VECTOR_MUTATION_RUN = 8


@dataclass
class BatchResult:
    """Accounting for one :meth:`LSMEngine.execute_batch` call."""

    n_ops: int
    reads: int
    writes: int
    deletes: int
    start_time: float
    #: Simulated clock value after each op — exactly the trajectory the
    #: scalar loop's ``clock.now`` would have traced (bit-identical).
    end_times: np.ndarray


@dataclass
class EngineStats:
    """Cumulative operation accounting."""

    reads: int = 0
    writes: int = 0
    deletes: int = 0
    memtable_hits: int = 0
    bloom_checks: int = 0
    bloom_true_positives: int = 0
    tables_probed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    flushes: int = 0
    compactions_started: int = 0
    compactions_completed: int = 0
    compaction_bytes: float = 0.0
    write_stall_seconds: float = 0.0
    busy_seconds: float = 0.0


@dataclass
class _PendingCompaction:
    task: CompactionTask
    remaining_bytes: float


@dataclass
class RecoveryReport:
    """What one commitlog-replay restart did, and what it cost."""

    replayed_records: int = 0
    replayed_bytes: int = 0
    scrubbed_tables: int = 0
    scrubbed_bytes: int = 0
    recovery_seconds: float = 0.0
    flushed_after_replay: bool = False


class LSMEngine:
    """Log-structured merge engine over simulated hardware.

    Parameters
    ----------
    knobs:
        Resolved engine tuning values (from a datastore configuration).
    hardware:
        Simulated server; defaults to the paper's Dell R430.
    clock:
        Shared simulated clock (one per server).
    costs:
        Cost calibration; override in tests to probe sensitivities.
    """

    def __init__(
        self,
        knobs: EngineKnobs,
        hardware: HardwareSpec = DEFAULT_SERVER,
        clock: Optional[SimClock] = None,
        costs: CostConstants = DEFAULT_COSTS,
        events=None,
    ):
        self.knobs = knobs
        self.hardware = hardware
        self.clock = clock if clock is not None else SimClock()
        self.costs = costs
        self.events = events  # optional EventBus for recovery.* topics
        self.stats = EngineStats()
        self.disk = DiskModel(hardware)
        self.cpu = CpuModel(hardware)

        self.memtable = Memtable(capacity_bytes=knobs.memtable_space_bytes)
        self.commitlog = CommitLog(
            segment_size_bytes=knobs.commitlog_segment_bytes,
            sync_period_s=knobs.commitlog_sync_period_s,
        )
        self.layout = TableLayout()
        self.cache = LruFileCache(capacity_bytes=knobs.file_cache_bytes)
        self.strategy = make_strategy(knobs.compaction_method, knobs.sstable_target_bytes)

        self._next_table_id = 0
        self._next_task_id = 0
        self._pending_compactions: Deque[_PendingCompaction] = deque()
        self._busy_table_ids: Set[int] = set()
        self._flush_queue_bytes = 0.0
        self._write_seq = 0  # tie-break timestamps for same-instant writes

    # ------------------------------------------------------------------ public API

    def put(self, key: str, value: bytes, timestamp: Optional[float] = None) -> None:
        """Durably write a whole-row upsert and charge its cost.

        ``timestamp`` lets a cluster coordinator impose client
        timestamps (Cassandra's last-write-wins resolution); by default
        the engine stamps with its own monotonic clock.
        """
        ts = timestamp if timestamp is not None else self._next_timestamp()
        self._write(Record(key=key, timestamp=ts, value=value))
        self.stats.writes += 1

    def delete(self, key: str, timestamp: Optional[float] = None) -> None:
        """Write a tombstone for ``key``."""
        ts = timestamp if timestamp is not None else self._next_timestamp()
        self._write(Record.tombstone(key, ts))
        self.stats.deletes += 1

    def get_record(self, key: str) -> Optional[Record]:
        """Like :meth:`get` but returns the winning record itself
        (timestamp included, tombstones too) — replication resolution
        needs the metadata, not just the value."""
        return self._read_newest(key)

    def get(self, key: str) -> Optional[bytes]:
        """Read the newest value for ``key``; None if absent or deleted."""
        best = self._read_newest(key)
        if best is None or best.is_tombstone:
            return None
        return best.value

    def _probe_newest(self, key: str):
        """Find the newest record for ``key`` without charging time.

        Probes the memtable, then every bloom-positive SSTable
        (Cassandra merges row fragments, so it cannot stop early),
        tallying bloom checks, index probes, cache traffic, and disk
        misses; the caller converts the tallies into simulated time
        (once per op on the point-read path, once per *batch* on the
        multi-get path).  Returns ``(record, blooms, probes, cache_hits,
        disk_reads)``.
        """
        self.stats.reads += 1
        cpu_blooms = 0
        cpu_probes = 0
        cpu_cache_hits = 0
        disk_reads = 0

        best: Optional[Record] = None
        mem_rec = self.memtable.get(key)
        if mem_rec is not None:
            self.stats.memtable_hits += 1
            best = mem_rec

        for table in self.layout.read_candidates(key):
            cpu_blooms += 1
            self.stats.bloom_checks += 1
            if not table.might_contain(key):
                continue
            cpu_probes += 1
            self.stats.tables_probed += 1
            block_key = (table.table_id, table.block_of(key))
            if self.cache.access(block_key):
                cpu_cache_hits += 1
                self.stats.cache_hits += 1
            else:
                disk_reads += 1
                self.stats.cache_misses += 1
            rec = table.get(key)
            if rec is None:
                continue  # bloom false positive
            self.stats.bloom_true_positives += 1
            if best is None or rec.supersedes(best):
                best = rec

        return best, cpu_blooms, cpu_probes, cpu_cache_hits, disk_reads

    def _probe_block(self, keys: Sequence[str], pre=None):
        """Probe a block of keys without charging time.

        Returns ``(best_records, blooms, probes, cache_hits, disk_reads)``
        where the first is a list of winning records (None if absent) and
        the rest are per-key int64 tallies.  Dispatches to a vectorized
        probe when the batch is worth it and the keys hash cleanly;
        otherwise loops :meth:`_probe_newest`.  ``pre`` carries
        ``(names, h1, h2)`` sliced from a whole-batch hash pass, so short
        same-kind runs inside a large batch skip the per-run hashing
        setup.  Both paths leave the engine (stats, LRU cache order,
        disk counters) in the *same* state: probing advances no
        simulated time, so the layout and memtable are frozen for the
        duration regardless of background work.
        """
        if self.layout.table_count > 0:
            if pre is not None:
                names, h1, h2 = pre
                return self._probe_block_vector(keys, names, h1, h2)
            if len(keys) >= _MIN_VECTOR_PROBE:
                names = np.asarray(keys)
                hashed = hash_keys(names)
                if hashed is not None:
                    return self._probe_block_vector(keys, names, *hashed)
            return self._probe_block_scalar(keys)
        # No SSTables: every probe is a pure memtable lookup with zero
        # bloom/cache/disk traffic, so skip the per-key tally loop (the
        # tallies may share one zeros array — callers only read them).
        stats = self.stats
        stats.reads += len(keys)
        memtable_get = self.memtable.get
        best = [memtable_get(k) for k in keys]
        stats.memtable_hits += sum(r is not None for r in best)
        zeros = np.zeros(len(keys), dtype=np.int64)
        return best, zeros, zeros, zeros, zeros

    def _probe_block_scalar(self, keys: Sequence[str]):
        n = len(keys)
        best: List[Optional[Record]] = [None] * n
        blooms = np.zeros(n, dtype=np.int64)
        probes = np.zeros(n, dtype=np.int64)
        hits = np.zeros(n, dtype=np.int64)
        disk = np.zeros(n, dtype=np.int64)
        for i, key in enumerate(keys):
            rec, b, p, h, d = self._probe_newest(key)
            best[i] = rec
            blooms[i] = b
            probes[i] = p
            hits[i] = h
            disk[i] = d
        return best, blooms, probes, hits, disk

    def _probe_block_vector(self, keys, names, h1, h2):
        """Vectorized :meth:`_probe_block_scalar`.

        Bloom hashing, range assignment, and index lookups run across the
        whole batch with numpy; only the LRU cache replay stays a Python
        loop, and it walks bloom-positive (key, candidate) events in
        exactly the scalar order — (key position, candidate rank) — so
        cache contents, hit/miss tallies, and every stats counter finish
        bit-identical to the scalar loop.
        """
        n = len(keys)
        stats = self.stats
        stats.reads += n

        best: List[Optional[Record]] = [None] * n
        for i, key in enumerate(keys):
            mem_rec = self.memtable.get(key)
            if mem_rec is not None:
                stats.memtable_hits += 1
                best[i] = mem_rec

        blooms = np.zeros(n, dtype=np.int64)
        probes = np.zeros(n, dtype=np.int64)
        hits = np.zeros(n, dtype=np.int64)
        disk = np.zeros(n, dtype=np.int64)

        # Bloom-positive (key, candidate) events, accumulated per table
        # then replayed sequentially against the cache.
        tables: List[SSTable] = []
        key_chunks: List[np.ndarray] = []
        rank_chunks: List[np.ndarray] = []
        table_chunks: List[np.ndarray] = []
        block_chunks: List[np.ndarray] = []
        recidx_chunks: List[np.ndarray] = []

        def positive_chunk(table: SSTable, sub: np.ndarray, rank: int) -> None:
            karr = table.keys_array()
            idx = np.searchsorted(karr, names[sub])
            clamped = np.minimum(idx, len(karr) - 1)
            found = (idx < len(karr)) & (karr[clamped] == names[sub])
            t_pos = len(tables)
            tables.append(table)
            key_chunks.append(sub)
            rank_chunks.append(np.full(len(sub), rank, dtype=np.int64))
            table_chunks.append(np.full(len(sub), t_pos, dtype=np.int64))
            block_chunks.append(table.block_of_many(clamped))
            recidx_chunks.append(np.where(found, idx, -1))

        levels = self.layout.levels
        # L0: every table is a candidate for every key (newest first);
        # the range check lives inside might_contain, after the bloom
        # counter — exactly as the scalar probe sees it.
        l0 = list(reversed(levels[0])) if levels else []
        for rank, table in enumerate(l0):
            blooms += 1
            in_range = np.flatnonzero(
                (names >= table.min_key) & (names <= table.max_key)
            )
            if len(in_range) == 0:
                continue
            ok = table.bloom.might_contain_many(h1[in_range], h2[in_range])
            sub = in_range[ok]
            if len(sub):
                positive_chunk(table, sub, rank)
        # Levels >= 1: the candidate is the *first* range-matching table
        # in min_key order (read_candidates breaks on a match).  Tables
        # can transiently overlap mid-compaction, so a first-match sweep
        # over the level's few tables is required, not a searchsorted.
        for li in range(1, len(levels)):
            level = levels[li]
            if not level:
                continue
            rank = len(l0) + li - 1
            unassigned = np.ones(n, dtype=bool)
            for table in level:
                matched = np.flatnonzero(
                    unassigned & (names >= table.min_key) & (names <= table.max_key)
                )
                if len(matched) == 0:
                    continue
                unassigned[matched] = False
                blooms[matched] += 1
                ok = table.bloom.might_contain_many(h1[matched], h2[matched])
                sub = matched[ok]
                if len(sub):
                    positive_chunk(table, sub, rank)

        stats.bloom_checks += int(blooms.sum())

        if key_chunks:
            key_all = np.concatenate(key_chunks)
            rank_all = np.concatenate(rank_chunks)
            table_all = np.concatenate(table_chunks)
            block_all = np.concatenate(block_chunks)
            recidx_all = np.concatenate(recidx_chunks)
            # Replay order: key position first, candidate rank second —
            # the exact sequence the scalar loop feeds the LRU cache.
            order = np.lexsort((rank_all, key_all))
            cache = self.cache
            for e in order:
                i = int(key_all[e])
                table = tables[int(table_all[e])]
                probes[i] += 1
                stats.tables_probed += 1
                if cache.access((table.table_id, int(block_all[e]))):
                    hits[i] += 1
                    stats.cache_hits += 1
                else:
                    disk[i] += 1
                    stats.cache_misses += 1
                ridx = int(recidx_all[e])
                if ridx < 0:
                    continue  # bloom false positive
                rec = table.record_at(ridx)
                stats.bloom_true_positives += 1
                cur = best[i]
                if cur is None or rec.supersedes(cur):
                    best[i] = rec

        return best, blooms, probes, hits, disk

    def _read_newest(self, key: str) -> Optional[Record]:
        """One point read, charged as one op."""
        best, blooms, probes, cache_hits, disk_reads = self._probe_newest(key)
        cpu = read_cpu_seconds(blooms, probes, cache_hits, self.costs)
        self._advance_for_op(
            cpu_seconds=cpu,
            seq_bytes=0.0,
            random_reads=disk_reads,
            hold_seconds=self.costs.read_thread_hold,
            threads=self.knobs.concurrent_reads,
        )
        return best

    def exists(self, key: str) -> bool:
        return self.get(key) is not None

    def multi_get(self, keys) -> Dict[str, Optional[bytes]]:
        """Batch point lookups, charged as one batched operation.

        All keys are probed first, then the accumulated demand is pushed
        through :meth:`_advance_for_op` once: the batch pays a single
        read-dispatch base cost, its CPU and random-read demands overlap
        (the op takes the bottleneck's time, not the sum of per-key
        maxima), and the thread pool is held for the whole batch.
        Results are identical to N :meth:`get` calls — only the
        simulated time differs.
        """
        keys = list(keys)
        out: Dict[str, Optional[bytes]] = {}
        if not keys:
            return out
        best, blooms, probes, hits, disk = self._probe_block(keys)
        for key, rec in zip(keys, best):
            out[key] = None if rec is None or rec.is_tombstone else rec.value
        cpu = read_cpu_seconds(
            int(blooms.sum()), int(probes.sum()), int(hits.sum()), self.costs
        )
        self._advance_for_op(
            cpu_seconds=cpu,
            seq_bytes=0.0,
            random_reads=int(disk.sum()),
            hold_seconds=self.costs.read_thread_hold * len(keys),
            threads=self.knobs.concurrent_reads,
        )
        return out

    def execute_batch(
        self,
        kinds: np.ndarray,
        keys: Sequence[str],
        value_sizes: Optional[np.ndarray] = None,
    ) -> BatchResult:
        """Apply one operation block — the vectorized serve hot path.

        ``kinds`` holds :data:`OP_READ`/:data:`OP_WRITE`/:data:`OP_DELETE`
        codes, ``keys`` the per-op key names, ``value_sizes`` the write
        payload sizes (zero-filled payloads are materialized: value
        *content* never affects stats, timing, or cache behaviour — only
        ``len(value)`` does).  The block is segmented into same-kind runs;
        read runs go through the vectorized probe-and-charge path when
        background work is idle (where per-op background accounting is
        exactly zero), and fall back to the per-op scalar path otherwise.
        Stats, clock trajectory, cache state, and results are
        bit-identical to iterating the ops through :meth:`get` /
        :meth:`put` / :meth:`delete` one at a time.
        """
        kinds = np.asarray(kinds)
        n = len(kinds)
        if len(keys) != n:
            raise DatastoreError(
                f"batch shape mismatch: {n} kinds vs {len(keys)} keys"
            )
        start = self.clock.now
        result = BatchResult(
            n_ops=n,
            reads=0,
            writes=0,
            deletes=0,
            start_time=start,
            end_times=np.empty(n, dtype=np.float64),
        )
        if n == 0:
            return result
        end_times = result.end_times
        bounds = np.flatnonzero(np.diff(kinds)) + 1
        segments = np.concatenate(([0], bounds, [n]))
        # Whole-batch key hashing, done lazily on the first read run that
        # can use it: short same-kind runs (a read-mostly mix fragments
        # into runs of a few dozen ops) then probe with slices instead of
        # paying the hashing setup per run.
        hash_tried = False
        batch_names = batch_h1 = batch_h2 = None
        for s, e in zip(segments[:-1], segments[1:]):
            s, e = int(s), int(e)
            kind = int(kinds[s])
            if kind == OP_READ:
                # Probing never advances time, so the layout is frozen
                # for the whole run; vectorized *charging* additionally
                # needs background work idle (flush queue empty, no
                # pending compactions), where per-op background drains
                # and utilization are exactly no-ops.
                if not self._pending_compactions and self._flush_queue_bytes <= 0.0:
                    pre = None
                    if self.layout.table_count > 0 and e - s >= 4:
                        if not hash_tried:
                            hash_tried = True
                            arr = np.asarray(keys)
                            hashed = hash_keys(arr)
                            if hashed is not None:
                                batch_names = arr
                                batch_h1, batch_h2 = hashed
                        if batch_names is not None:
                            pre = (
                                batch_names[s:e],
                                batch_h1[s:e],
                                batch_h2[s:e],
                            )
                    end_times[s:e] = self._execute_read_run(list(keys[s:e]), pre)
                else:
                    for j in range(s, e):
                        self._read_newest(keys[j])
                        end_times[j] = self.clock.now
                result.reads += e - s
            elif kind == OP_WRITE:
                if value_sizes is None:
                    raise DatastoreError("write ops in batch but no value_sizes")
                j = s
                while j < e:
                    m = 0
                    if e - j >= _MIN_VECTOR_MUTATION_RUN:
                        m, times = self._execute_mutation_run(
                            keys[j:e], value_sizes[j:e], tombstone=False
                        )
                    if m:
                        end_times[j : j + m] = times
                        j += m
                    else:
                        # A short tail, or the next op flushes the
                        # memtable / crosses a sync barrier — per-op
                        # side effects the block charge cannot carry.
                        # Step it scalar and retry the rest.
                        self.put(keys[j], bytes(int(value_sizes[j])))
                        end_times[j] = self.clock.now
                        j += 1
                result.writes += e - s
            elif kind == OP_DELETE:
                j = s
                while j < e:
                    m = 0
                    if e - j >= _MIN_VECTOR_MUTATION_RUN:
                        m, times = self._execute_mutation_run(
                            keys[j:e], None, tombstone=True
                        )
                    if m:
                        end_times[j : j + m] = times
                        j += m
                    else:
                        self.delete(keys[j])
                        end_times[j] = self.clock.now
                        j += 1
                result.deletes += e - s
            else:
                raise DatastoreError(f"unknown op kind {kind} in batch")
        return result

    def _execute_mutation_run(
        self,
        keys: Sequence[str],
        value_sizes: Optional[np.ndarray],
        tombstone: bool,
    ):
        """Vectorized charging for a prefix of a write (or tombstone) run.

        Returns ``(m, end_times)``: the first ``m`` ops were applied and
        charged as one block; the caller executes op ``m`` through the
        scalar path (it would flush the memtable or cross a commitlog
        sync barrier — per-op side effects the block charge cannot
        include) and then retries the remainder.  ``m == 0`` means no
        vectorizable prefix.

        The block path works under *busy* background too: per-op service
        intervals are valid as long as the background utilization they
        were computed under holds, so the real per-op drains are replayed
        (flush-queue decay, compaction progress, completions included)
        and the prefix is cut at the first op whose drain changes the
        utilization.  Within the accepted prefix every per-op quantity
        the scalar path computes — record timestamps from the advancing
        clock, per-record commitlog byte charges, the busy/clock
        accumulators, background drains — is replicated with identical
        float64 arithmetic (sequential cumsum chains and the drain code
        itself), and real records still flow through the real commitlog
        and memtable, so durability and recovery state are exactly as if
        the ops ran one at a time.
        """
        n = len(keys)
        if n < 2:
            return 0, None
        key_bytes = np.fromiter((len(k) for k in keys), np.int64, count=n)
        if tombstone:
            rec_sizes = RECORD_OVERHEAD_BYTES + key_bytes
        else:
            rec_sizes = RECORD_OVERHEAD_BYTES + key_bytes + value_sizes.astype(np.int64)
        # No flush inside the prefix: replacements only shrink the
        # memtable, so current size + cumulative record bytes bounds the
        # fill (same product expression as Memtable.should_flush);
        # everything at and past the crossing is cut off.
        flush_at = self.knobs.memtable_cleanup_threshold * self.memtable.capacity_bytes
        sizes_after = self.memtable.size_bytes + np.cumsum(rec_sizes)
        m = int(np.searchsorted(sizes_after, flush_at, side="left"))
        if m < 2:
            return 0, None

        bg_cpu, bg_seq = self._background_utilization()
        self.cpu.set_background_utilization(bg_cpu)
        self.disk.set_background_utilization(bg_seq, 0.0)
        cores = max(self.cpu.available_cores * (self.hardware.cpu_ghz / 3.0), 0.5)
        threads = self.knobs.concurrent_writes
        contention = thread_contention(threads, cores, self.costs)
        dt_cpu = write_cpu_seconds(self.costs) * contention / cores
        log_bytes = rec_sizes[:m] + self.costs.commitlog_overhead_bytes
        dt_seq = log_bytes / self.disk.effective_seq_bandwidth
        dt_pool = self.costs.write_thread_hold / threads
        dt = np.maximum(np.maximum(dt_cpu, dt_seq), dt_pool)

        start = self.clock.now
        times = np.cumsum(np.concatenate(([start], dt)))[1:]
        # Clock value each op observes (before its own advance).
        at = np.concatenate(([start], times[:-1]))
        # No sync barrier inside the prefix, else the op that crossed it
        # would owe extra seconds the block charge does not include.
        sync_base = self.commitlog._last_sync_time
        if sync_base is None:
            sync_base = at[0]  # first append only establishes the baseline
        synced = np.flatnonzero(at - sync_base >= self.commitlog.sync_period_s)
        if len(synced):
            m = int(synced[0])
            if m < 2:
                return 0, None
            dt, times, at, log_bytes = dt[:m], times[:m], at[:m], log_bytes[:m]

        if self._pending_compactions or self._flush_queue_bytes > 0.0:
            # Replay the real per-op drains (the scalar loop's own code,
            # so completion budget redistribution and clamping round
            # identically), advancing the clock first because compaction
            # completions stamp output tables with ``clock.now``.  Stop
            # after the first op whose drain shifts the utilization the
            # precomputed ``dt`` rests on; drains already applied belong
            # to ops that are committed below, so the cut keeps them.
            util = (bg_cpu, bg_seq)
            stop = m
            for j in range(m):
                self.clock.advance_to(float(times[j]))
                self._drain_background(float(dt[j]))
                if self._background_utilization() != util:
                    stop = j + 1
                    break
            if stop < m:
                m = stop
                dt, times, at, log_bytes = dt[:m], times[:m], at[:m], log_bytes[:m]

        payloads: Dict[int, bytes] = {}
        memtable_put = self.memtable.put
        log_append = self.commitlog.append
        for j in range(m):
            self._write_seq += 1
            ts = float(at[j]) + self._write_seq * 1e-12
            if tombstone:
                rec = Record.tombstone(keys[j], ts)
            else:
                size = int(value_sizes[j])
                value = payloads.get(size)
                if value is None:
                    value = payloads[size] = bytes(size)
                rec = Record(key=keys[j], timestamp=ts, value=value)
            log_append(rec, now=float(at[j]))
            memtable_put(rec)

        # The scalar loop's sequential += chains, replayed exactly.
        stats = self.stats
        stats.busy_seconds = float(
            np.cumsum(np.concatenate(([stats.busy_seconds], dt)))[-1]
        )
        dstats = self.disk.stats
        dstats.seq_bytes_written = float(
            np.cumsum(np.concatenate(([dstats.seq_bytes_written], log_bytes)))[-1]
        )
        self.clock.advance_to(float(times[-1]))
        if tombstone:
            stats.deletes += m
        else:
            stats.writes += m
        return m, times

    def _execute_read_run(self, keys: Sequence[str], pre=None) -> np.ndarray:
        """Charge a run of point reads with vectorized cost math.

        Mirrors :meth:`_read_newest` + :meth:`_advance_for_op` per op with
        identical float64 expression trees; the per-op ``clock.advance``
        chain is reproduced by a sequential ``np.cumsum`` scan, so the
        committed clock value and ``busy_seconds`` match the scalar loop
        bit for bit.  Only valid while background work is idle (the
        caller checks): there ``_background_utilization()`` is exactly
        ``(0.0, 0.0)`` and ``_drain_background`` is a no-op, so hoisting
        them out of the loop changes nothing.
        """
        _, blooms, probes, hits, disk = self._probe_block(keys, pre)

        self.cpu.set_background_utilization(0.0)
        self.disk.set_background_utilization(0.0, 0.0)
        cores = max(self.cpu.available_cores * (self.hardware.cpu_ghz / 3.0), 0.5)
        threads = self.knobs.concurrent_reads
        contention = thread_contention(threads, cores, self.costs)

        cpu = read_cpu_seconds_array(blooms, probes, hits, self.costs)
        dt_cpu = cpu * contention / cores
        # Same bits as the scalar conditional: 0 misses divide to +0.0.
        dt_rand = disk / self.disk.effective_rand_iops
        self.disk.stats.random_reads += int(disk.sum())
        dt_pool = self.costs.read_thread_hold / threads
        dt = np.maximum(np.maximum(dt_cpu, dt_rand), dt_pool)

        # cumsum is a sequential left-to-right scan, so these are the
        # exact partial sums the per-op `x += dt` chain would produce.
        times = np.cumsum(np.concatenate(([self.clock.now], dt)))[1:]
        busy = np.cumsum(np.concatenate(([self.stats.busy_seconds], dt)))[1:]
        self.stats.busy_seconds = float(busy[-1])
        self.clock.advance_to(float(times[-1]))
        return times

    def scan(self, start_key: str, end_key: str, limit: int = 0) -> List[tuple]:
        """Range scan: ``[(key, value)]`` for start <= key <= end, sorted.

        Merges the memtable with every overlapping SSTable (newest
        version wins, tombstones excluded).  Charged as a streaming read
        of the overlapping table bytes plus per-row merge CPU — range
        reads are sequential I/O, unlike point lookups.
        """
        if start_key > end_key:
            raise DatastoreError(f"invalid scan range [{start_key!r}, {end_key!r}]")
        self.stats.reads += 1

        newest: Dict[str, Record] = {}
        for rec in self.memtable.scan(start_key, end_key):
            newest[rec.key] = rec

        seq_bytes = 0.0
        rows_merged = len(newest)
        for table in self.layout.all_tables():
            if not table.overlaps_range(start_key, end_key):
                continue
            # A real engine seeks to start_key and streams; charge the
            # overlapping fraction of the table's bytes.
            seq_bytes += table.size_bytes * table.range_fraction(start_key, end_key)
            for rec in table.records_in_range(start_key, end_key):
                rows_merged += 1
                cur = newest.get(rec.key)
                if cur is None or rec.supersedes(cur):
                    newest[rec.key] = rec

        results = [
            (key, rec.value)
            for key, rec in sorted(newest.items())
            if not rec.is_tombstone
        ]
        if limit > 0:
            results = results[:limit]

        cpu = self.costs.cpu_read_base + rows_merged * self.costs.cpu_probe * 0.1
        self._advance_for_op(
            cpu_seconds=cpu,
            seq_bytes=seq_bytes,
            random_reads=min(self.layout.table_count, 1),  # initial seeks
            hold_seconds=self.costs.read_thread_hold,
            threads=self.knobs.concurrent_reads,
        )
        return results

    def flush(self) -> Optional[SSTable]:
        """Force-flush the memtable (used on shutdown / phase boundaries)."""
        return self._flush_memtable()

    def reconfigure(self, knobs: EngineKnobs) -> None:
        """Apply a new configuration online (Rafiki's actuation step).

        Cache resizes in place; a compaction-strategy change installs a
        new strategy whose proposals progressively rewrite the layout —
        mirroring ``ALTER TABLE ... WITH compaction`` semantics.
        """
        old = self.knobs
        self.knobs = knobs
        if knobs.file_cache_bytes != old.file_cache_bytes:
            self.cache.resize(knobs.file_cache_bytes)
        if (
            knobs.compaction_method != old.compaction_method
            or knobs.sstable_target_bytes != old.sstable_target_bytes
        ):
            self.strategy = make_strategy(
                knobs.compaction_method, knobs.sstable_target_bytes
            )
            self._propose_compactions()
        if knobs.memtable_space_bytes != old.memtable_space_bytes:
            self.memtable.capacity_bytes = knobs.memtable_space_bytes

    # ------------------------------------------------------------------ crash/recovery

    def crash(self) -> None:
        """Simulate a process kill: every volatile structure vanishes.

        The memtable, flush queue, in-flight compactions, and file cache
        are process memory and are lost; the commitlog and the SSTable
        layout are on disk and survive (the kill models ``SIGKILL`` — the
        OS page cache persists, so the full commitlog tail is intact).
        The simulated clock keeps running: wall time does not reset when
        a server dies.  Call :meth:`recover` to rebuild.
        """
        self.memtable = Memtable(capacity_bytes=self.knobs.memtable_space_bytes)
        self._pending_compactions.clear()
        self._busy_table_ids.clear()
        self._flush_queue_bytes = 0.0
        self.cache = LruFileCache(capacity_bytes=self.knobs.file_cache_bytes)
        self._write_seq = 0
        if self.events is not None:
            self.events.publish(
                "fault.injected",
                f"engine crash at t={self.clock.now:.3f}s",
                kind="engine-crash",
                t=self.clock.now,
            )

    def recover(self, scrub: bool = True) -> RecoveryReport:
        """Restart after :meth:`crash`: scrub SSTables, replay the commitlog.

        Mirrors Cassandra's startup sequence: verify on-disk tables
        against their content checksums (corruption is *detected here*,
        raising :class:`~repro.errors.PersistenceError`, instead of
        surfacing as wrong answers on some later read), then re-apply
        every unflushed commitlog record to a fresh memtable.  Replayed
        records carry their original timestamps, so re-applying writes
        whose newer versions already reached an SSTable is resolved by
        last-write-wins exactly as on the pre-crash read path.

        The rebuilt engine serves every acknowledged write; only the
        clock differs from an uninterrupted run, by the replay/scrub
        cost this method charges.
        """
        report = RecoveryReport()
        if scrub:
            corrupt = []
            for table in self.layout.all_tables():
                report.scrubbed_tables += 1
                report.scrubbed_bytes += table.size_bytes
                if not table.verify():
                    corrupt.append(table.table_id)
            if corrupt:
                if self.events is not None:
                    self.events.publish(
                        "recovery.corrupt_artifact",
                        f"sstable checksum scrub failed for tables {corrupt}",
                        tables=corrupt,
                    )
                raise PersistenceError(
                    f"sstable scrub: checksum mismatch in tables {corrupt}"
                )

        for record in self.commitlog.replay():
            self.memtable.put(record)
            report.replayed_records += 1
            report.replayed_bytes += record.size_bytes

        # Replay + scrub are sequential streaming reads.
        dt = self.disk.seq_read_seconds(report.replayed_bytes + report.scrubbed_bytes)
        report.recovery_seconds = dt
        if dt > 0:
            self.stats.busy_seconds += dt
            self.clock.advance(dt)

        # Cassandra flushes replayed mutations that already exceed the
        # threshold, then resumes normal compaction scheduling.
        if self.memtable.should_flush(self.knobs.memtable_cleanup_threshold):
            self._flush_memtable()
            report.flushed_after_replay = True
        self._propose_compactions()

        if self.events is not None:
            self.events.publish(
                "recovery.journal_replayed",
                f"replayed {report.replayed_records} commitlog records "
                f"({report.replayed_bytes}B), scrubbed {report.scrubbed_tables} tables",
                records=report.replayed_records,
                bytes=report.replayed_bytes,
                tables=report.scrubbed_tables,
                seconds=report.recovery_seconds,
            )
        return report

    def scrub(self) -> List[int]:
        """Checksum-verify every SSTable; returns corrupt table ids."""
        return [t.table_id for t in self.layout.all_tables() if not t.verify()]

    # -- introspection ---------------------------------------------------------

    @property
    def sstable_count(self) -> int:
        return self.layout.table_count

    @property
    def pending_compaction_bytes(self) -> float:
        return sum(p.remaining_bytes for p in self._pending_compactions)

    @property
    def compaction_backlog_bytes(self) -> float:
        """All background work owed: queued flushes + in-flight compactions."""
        return self._flush_queue_bytes + self.pending_compaction_bytes

    def idle_until_compact(self, max_seconds: float = 3600.0) -> float:
        """Let background work drain (between benchmark phases)."""
        start = self.clock.now
        step = 0.25
        while self._pending_compactions or self._flush_queue_bytes > 0:
            if self.clock.now - start > max_seconds:
                break
            self.clock.advance(step)
            self._drain_background(step)
        return self.clock.now - start

    # ------------------------------------------------------------------ write path

    def _next_timestamp(self) -> float:
        # Strictly increasing even when the clock stands still within a batch.
        self._write_seq += 1
        return self.clock.now + self._write_seq * 1e-12

    def _write(self, record: Record) -> None:
        sync_extra = self.commitlog.append(record, now=self.clock.now)
        self.memtable.put(record)

        stall = 0.0
        if self.memtable.should_flush(self.knobs.memtable_cleanup_threshold):
            flush_bytes = self.memtable.size_bytes
            self._flush_memtable()
            # If flush writers are behind, the write path stalls until the
            # queue depth falls back under the limit.
            flush_bw = self.knobs.memtable_flush_writers * self.costs.flush_writer_bandwidth
            max_queue = FLUSH_STALL_DEPTH * max(flush_bytes, 1)
            if self._flush_queue_bytes > max_queue:
                stall = (self._flush_queue_bytes - max_queue) / flush_bw
                self.stats.write_stall_seconds += stall

        self._advance_for_op(
            cpu_seconds=write_cpu_seconds(self.costs),
            seq_bytes=commitlog_bytes_per_write(record.size_bytes, self.costs),
            random_reads=0,
            hold_seconds=self.costs.write_thread_hold,
            threads=self.knobs.concurrent_writes,
            extra_seconds=sync_extra + stall,
        )

    def _flush_memtable(self) -> Optional[SSTable]:
        if len(self.memtable) == 0:
            return None
        records = list(self.memtable.drain())
        table = SSTable(
            table_id=self._issue_table_id(),
            records=records,
            fp_chance=self.knobs.bloom_fp_chance,
            level=0,
            created_at=self.clock.now,
        )
        self.layout.add_flushed(table)
        self._flush_queue_bytes += table.size_bytes
        self.commitlog.discard_flushed()
        self.stats.flushes += 1
        self._propose_compactions()
        return table

    def _issue_table_id(self) -> int:
        self._next_table_id += 1
        return self._next_table_id

    def _issue_task_id(self) -> int:
        self._next_task_id += 1
        return self._next_task_id

    # ------------------------------------------------------------------ timing

    def _advance_for_op(
        self,
        cpu_seconds: float,
        seq_bytes: float,
        random_reads: int,
        hold_seconds: float,
        threads: int,
        extra_seconds: float = 0.0,
    ) -> None:
        """Advance the clock by this op's bottleneck service interval.

        The op's demands are divided by the capacity of each resource —
        available cores (minus compaction CPU and contention), leftover
        sequential bandwidth, leftover random IOPS, and the worker pool —
        and the largest quotient is the time the system needed to push
        this op through at full concurrency.
        """
        bg_cpu, bg_seq = self._background_utilization()
        self.cpu.set_background_utilization(bg_cpu)
        self.disk.set_background_utilization(bg_seq, 0.0)
        # Faster clocks stretch the effective core count relative to the
        # 3.0 GHz reference the cost constants are calibrated at.
        cores = max(self.cpu.available_cores * (self.hardware.cpu_ghz / 3.0), 0.5)
        contention = thread_contention(threads, cores, self.costs)

        dt_cpu = cpu_seconds * contention / cores
        dt_seq = self.disk.seq_write_seconds(seq_bytes) if seq_bytes else 0.0
        dt_rand = self.disk.random_read_seconds(random_reads) if random_reads else 0.0
        dt_pool = hold_seconds / threads

        dt = max(dt_cpu, dt_seq, dt_rand, dt_pool) + extra_seconds
        self.stats.busy_seconds += dt
        self.clock.advance(dt)
        self._drain_background(dt)

    def _background_utilization(self) -> tuple:
        """Current (cpu_util, seq_disk_util) stolen by flush + compaction."""
        comp_rate = self._compaction_rate()
        flush_rate = (
            self.knobs.memtable_flush_writers * self.costs.flush_writer_bandwidth
            if self._flush_queue_bytes > 0
            else 0.0
        )
        seq_demand = comp_rate * self.costs.compaction_io_factor + flush_rate
        seq_util = min(seq_demand / self.hardware.disk_seq_bandwidth, 0.9)
        cpu_demand = comp_rate * self.costs.compaction_cpu_per_byte
        cpu_util = min(cpu_demand / self.hardware.cpu_cores, 0.6)
        return cpu_util, seq_util

    def _compaction_rate(self) -> float:
        """Input bytes/s compaction currently processes."""
        if not self._pending_compactions:
            return 0.0
        active = min(len(self._pending_compactions), self.knobs.concurrent_compactors)
        stream_cap = active * COMPACTOR_STREAM_BYTES
        # Per-compactor throttle: parallel compactors raise the total
        # drain rate (see AnalyticLSMModel._compaction_rate).
        throttle = self.knobs.compaction_throughput_bytes * active
        if self.knobs.compaction_method == LEVELED:
            throttle = max(throttle, LEVELED_MIN_COMPACTION_BYTES)
        return min(throttle, stream_cap)

    def _drain_background(self, dt: float) -> None:
        # Flush queue drains at flush-writer bandwidth.
        if self._flush_queue_bytes > 0:
            flush_bw = (
                self.knobs.memtable_flush_writers * self.costs.flush_writer_bandwidth
            )
            self._flush_queue_bytes = max(0.0, self._flush_queue_bytes - flush_bw * dt)

        # Compaction drains at its current rate, parallel across the first
        # `concurrent_compactors` queued tasks.
        rate = self._compaction_rate()
        if rate <= 0.0:
            return
        budget = rate * dt
        while budget > 0 and self._pending_compactions:
            active = list(self._pending_compactions)[
                : self.knobs.concurrent_compactors
            ]
            share = budget / len(active)
            consumed = 0.0
            for pending in active:
                used = min(share, pending.remaining_bytes)
                pending.remaining_bytes -= used
                consumed += used
            budget -= consumed
            completed = [
                p for p in list(self._pending_compactions) if p.remaining_bytes <= 0
            ]
            for p in completed:
                self._pending_compactions.remove(p)
                self._complete_compaction(p.task)
            if consumed <= 0:
                break

    # ------------------------------------------------------------------ compaction

    def _propose_compactions(self) -> None:
        tasks = self.strategy.propose(
            self.layout, self._busy_table_ids, self._issue_task_id
        )
        for task in tasks:
            self._pending_compactions.append(
                _PendingCompaction(task=task, remaining_bytes=float(task.io_bytes))
            )
            self._busy_table_ids.update(t.table_id for t in task.input_tables)
            self.stats.compactions_started += 1

    def _complete_compaction(self, task: CompactionTask) -> None:
        merged = merge_records(
            [t.records() for t in task.input_tables],
            drop_tombstones=task.drop_tombstones,
        )
        self.layout.remove(task.input_tables)
        for t in task.input_tables:
            self._busy_table_ids.discard(t.table_id)
            self.cache.invalidate_prefix(t.table_id)

        if merged:
            target_bytes = self.strategy.target_table_bytes(task.target_level)
            if target_bytes is None:
                table = SSTable(
                    table_id=self._issue_table_id(),
                    records=merged,
                    fp_chance=self.knobs.bloom_fp_chance,
                    level=task.target_level,
                    created_at=self.clock.now,
                )
                self.layout.add_at_level(table, task.target_level)
            else:
                for table in split_into_tables(
                    merged,
                    max_table_bytes=target_bytes,
                    next_id=self._issue_table_id,
                    fp_chance=self.knobs.bloom_fp_chance,
                    level=task.target_level,
                    created_at=self.clock.now,
                ):
                    self.layout.add_at_level(table, task.target_level)

        self.stats.compactions_completed += 1
        self.stats.compaction_bytes += task.input_bytes
        self.disk.account_compaction_bytes(task.io_bytes)
        self._propose_compactions()

    def __repr__(self) -> str:
        return (
            f"LSMEngine({self.strategy.name}, tables={self.sstable_count}, "
            f"mem={self.memtable.size_bytes}B, t={self.clock.now:.3f}s)"
        )
