"""The materialized LSM engine.

A fully functional key-value store — real records, real bloom filters, a
real LRU file cache, real compaction merges — that charges every
operation simulated time through :mod:`repro.sim.costs`.  Flushes and
compactions run as *background work*: they are queued with byte sizes and
drained as the clock advances, stealing disk bandwidth and CPU from
foreground queries exactly as the paper describes (§2.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set
from collections import deque

from repro.config.cassandra import LEVELED
from repro.errors import DatastoreError, PersistenceError
from repro.lsm.commitlog import CommitLog
from repro.lsm.compaction import (
    CompactionTask,
    TableLayout,
    make_strategy,
)
from repro.lsm.knobs import EngineKnobs
from repro.lsm.memtable import Memtable
from repro.lsm.record import Record
from repro.lsm.sstable import SSTable, merge_records, split_into_tables
from repro.sim.cache import LruFileCache
from repro.sim.clock import SimClock
from repro.sim.cpu import CpuModel
from repro.sim.disk import DiskModel
from repro.sim.costs import (
    CostConstants,
    DEFAULT_COSTS,
    commitlog_bytes_per_write,
    read_cpu_seconds,
    thread_contention,
    write_cpu_seconds,
)
from repro.sim.hardware import DEFAULT_SERVER, HardwareSpec

#: Streaming capacity of one compactor process (bounded by merge CPU and
#: per-stream disk efficiency).
COMPACTOR_STREAM_BYTES = 45 * 1024 * 1024
#: Leveled compaction must keep up with flushes — it fires on every
#: flush and escalates past the user throttle when L0 backs up (paper
#: §2.2.2: it "requires more processing and disk I/O operations").
LEVELED_MIN_COMPACTION_BYTES = 64 * 1024 * 1024
#: Flush queue depth (in flush sizes) beyond which writes stall.
FLUSH_STALL_DEPTH = 2.0


@dataclass
class EngineStats:
    """Cumulative operation accounting."""

    reads: int = 0
    writes: int = 0
    deletes: int = 0
    memtable_hits: int = 0
    bloom_checks: int = 0
    bloom_true_positives: int = 0
    tables_probed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    flushes: int = 0
    compactions_started: int = 0
    compactions_completed: int = 0
    compaction_bytes: float = 0.0
    write_stall_seconds: float = 0.0
    busy_seconds: float = 0.0


@dataclass
class _PendingCompaction:
    task: CompactionTask
    remaining_bytes: float


@dataclass
class RecoveryReport:
    """What one commitlog-replay restart did, and what it cost."""

    replayed_records: int = 0
    replayed_bytes: int = 0
    scrubbed_tables: int = 0
    scrubbed_bytes: int = 0
    recovery_seconds: float = 0.0
    flushed_after_replay: bool = False


class LSMEngine:
    """Log-structured merge engine over simulated hardware.

    Parameters
    ----------
    knobs:
        Resolved engine tuning values (from a datastore configuration).
    hardware:
        Simulated server; defaults to the paper's Dell R430.
    clock:
        Shared simulated clock (one per server).
    costs:
        Cost calibration; override in tests to probe sensitivities.
    """

    def __init__(
        self,
        knobs: EngineKnobs,
        hardware: HardwareSpec = DEFAULT_SERVER,
        clock: Optional[SimClock] = None,
        costs: CostConstants = DEFAULT_COSTS,
        events=None,
    ):
        self.knobs = knobs
        self.hardware = hardware
        self.clock = clock if clock is not None else SimClock()
        self.costs = costs
        self.events = events  # optional EventBus for recovery.* topics
        self.stats = EngineStats()
        self.disk = DiskModel(hardware)
        self.cpu = CpuModel(hardware)

        self.memtable = Memtable(capacity_bytes=knobs.memtable_space_bytes)
        self.commitlog = CommitLog(
            segment_size_bytes=knobs.commitlog_segment_bytes,
            sync_period_s=knobs.commitlog_sync_period_s,
        )
        self.layout = TableLayout()
        self.cache = LruFileCache(capacity_bytes=knobs.file_cache_bytes)
        self.strategy = make_strategy(knobs.compaction_method, knobs.sstable_target_bytes)

        self._next_table_id = 0
        self._next_task_id = 0
        self._pending_compactions: Deque[_PendingCompaction] = deque()
        self._busy_table_ids: Set[int] = set()
        self._flush_queue_bytes = 0.0
        self._write_seq = 0  # tie-break timestamps for same-instant writes

    # ------------------------------------------------------------------ public API

    def put(self, key: str, value: bytes, timestamp: Optional[float] = None) -> None:
        """Durably write a whole-row upsert and charge its cost.

        ``timestamp`` lets a cluster coordinator impose client
        timestamps (Cassandra's last-write-wins resolution); by default
        the engine stamps with its own monotonic clock.
        """
        ts = timestamp if timestamp is not None else self._next_timestamp()
        self._write(Record(key=key, timestamp=ts, value=value))
        self.stats.writes += 1

    def delete(self, key: str, timestamp: Optional[float] = None) -> None:
        """Write a tombstone for ``key``."""
        ts = timestamp if timestamp is not None else self._next_timestamp()
        self._write(Record.tombstone(key, ts))
        self.stats.deletes += 1

    def get_record(self, key: str) -> Optional[Record]:
        """Like :meth:`get` but returns the winning record itself
        (timestamp included, tombstones too) — replication resolution
        needs the metadata, not just the value."""
        return self._read_newest(key)

    def get(self, key: str) -> Optional[bytes]:
        """Read the newest value for ``key``; None if absent or deleted."""
        best = self._read_newest(key)
        if best is None or best.is_tombstone:
            return None
        return best.value

    def _probe_newest(self, key: str):
        """Find the newest record for ``key`` without charging time.

        Probes the memtable, then every bloom-positive SSTable
        (Cassandra merges row fragments, so it cannot stop early),
        tallying bloom checks, index probes, cache traffic, and disk
        misses; the caller converts the tallies into simulated time
        (once per op on the point-read path, once per *batch* on the
        multi-get path).  Returns ``(record, blooms, probes, cache_hits,
        disk_reads)``.
        """
        self.stats.reads += 1
        cpu_blooms = 0
        cpu_probes = 0
        cpu_cache_hits = 0
        disk_reads = 0

        best: Optional[Record] = None
        mem_rec = self.memtable.get(key)
        if mem_rec is not None:
            self.stats.memtable_hits += 1
            best = mem_rec

        for table in self.layout.read_candidates(key):
            cpu_blooms += 1
            self.stats.bloom_checks += 1
            if not table.might_contain(key):
                continue
            cpu_probes += 1
            self.stats.tables_probed += 1
            block_key = (table.table_id, table.block_of(key))
            if self.cache.access(block_key):
                cpu_cache_hits += 1
                self.stats.cache_hits += 1
            else:
                disk_reads += 1
                self.stats.cache_misses += 1
            rec = table.get(key)
            if rec is None:
                continue  # bloom false positive
            self.stats.bloom_true_positives += 1
            if best is None or rec.supersedes(best):
                best = rec

        return best, cpu_blooms, cpu_probes, cpu_cache_hits, disk_reads

    def _read_newest(self, key: str) -> Optional[Record]:
        """One point read, charged as one op."""
        best, blooms, probes, cache_hits, disk_reads = self._probe_newest(key)
        cpu = read_cpu_seconds(blooms, probes, cache_hits, self.costs)
        self._advance_for_op(
            cpu_seconds=cpu,
            seq_bytes=0.0,
            random_reads=disk_reads,
            hold_seconds=self.costs.read_thread_hold,
            threads=self.knobs.concurrent_reads,
        )
        return best

    def exists(self, key: str) -> bool:
        return self.get(key) is not None

    def multi_get(self, keys) -> Dict[str, Optional[bytes]]:
        """Batch point lookups, charged as one batched operation.

        All keys are probed first, then the accumulated demand is pushed
        through :meth:`_advance_for_op` once: the batch pays a single
        read-dispatch base cost, its CPU and random-read demands overlap
        (the op takes the bottleneck's time, not the sum of per-key
        maxima), and the thread pool is held for the whole batch.
        Results are identical to N :meth:`get` calls — only the
        simulated time differs.
        """
        keys = list(keys)
        out: Dict[str, Optional[bytes]] = {}
        blooms = probes = cache_hits = disk_reads = 0
        for key in keys:
            best, b, p, h, d = self._probe_newest(key)
            blooms += b
            probes += p
            cache_hits += h
            disk_reads += d
            out[key] = None if best is None or best.is_tombstone else best.value
        if keys:
            cpu = read_cpu_seconds(blooms, probes, cache_hits, self.costs)
            self._advance_for_op(
                cpu_seconds=cpu,
                seq_bytes=0.0,
                random_reads=disk_reads,
                hold_seconds=self.costs.read_thread_hold * len(keys),
                threads=self.knobs.concurrent_reads,
            )
        return out

    def scan(self, start_key: str, end_key: str, limit: int = 0) -> List[tuple]:
        """Range scan: ``[(key, value)]`` for start <= key <= end, sorted.

        Merges the memtable with every overlapping SSTable (newest
        version wins, tombstones excluded).  Charged as a streaming read
        of the overlapping table bytes plus per-row merge CPU — range
        reads are sequential I/O, unlike point lookups.
        """
        if start_key > end_key:
            raise DatastoreError(f"invalid scan range [{start_key!r}, {end_key!r}]")
        self.stats.reads += 1

        newest: Dict[str, Record] = {}
        for rec in self.memtable.scan(start_key, end_key):
            newest[rec.key] = rec

        seq_bytes = 0.0
        rows_merged = len(newest)
        for table in self.layout.all_tables():
            if not table.overlaps_range(start_key, end_key):
                continue
            # A real engine seeks to start_key and streams; charge the
            # overlapping fraction of the table's bytes.
            seq_bytes += table.size_bytes * table.range_fraction(start_key, end_key)
            for rec in table.records_in_range(start_key, end_key):
                rows_merged += 1
                cur = newest.get(rec.key)
                if cur is None or rec.supersedes(cur):
                    newest[rec.key] = rec

        results = [
            (key, rec.value)
            for key, rec in sorted(newest.items())
            if not rec.is_tombstone
        ]
        if limit > 0:
            results = results[:limit]

        cpu = self.costs.cpu_read_base + rows_merged * self.costs.cpu_probe * 0.1
        self._advance_for_op(
            cpu_seconds=cpu,
            seq_bytes=seq_bytes,
            random_reads=min(self.layout.table_count, 1),  # initial seeks
            hold_seconds=self.costs.read_thread_hold,
            threads=self.knobs.concurrent_reads,
        )
        return results

    def flush(self) -> Optional[SSTable]:
        """Force-flush the memtable (used on shutdown / phase boundaries)."""
        return self._flush_memtable()

    def reconfigure(self, knobs: EngineKnobs) -> None:
        """Apply a new configuration online (Rafiki's actuation step).

        Cache resizes in place; a compaction-strategy change installs a
        new strategy whose proposals progressively rewrite the layout —
        mirroring ``ALTER TABLE ... WITH compaction`` semantics.
        """
        old = self.knobs
        self.knobs = knobs
        if knobs.file_cache_bytes != old.file_cache_bytes:
            self.cache.resize(knobs.file_cache_bytes)
        if (
            knobs.compaction_method != old.compaction_method
            or knobs.sstable_target_bytes != old.sstable_target_bytes
        ):
            self.strategy = make_strategy(
                knobs.compaction_method, knobs.sstable_target_bytes
            )
            self._propose_compactions()
        if knobs.memtable_space_bytes != old.memtable_space_bytes:
            self.memtable.capacity_bytes = knobs.memtable_space_bytes

    # ------------------------------------------------------------------ crash/recovery

    def crash(self) -> None:
        """Simulate a process kill: every volatile structure vanishes.

        The memtable, flush queue, in-flight compactions, and file cache
        are process memory and are lost; the commitlog and the SSTable
        layout are on disk and survive (the kill models ``SIGKILL`` — the
        OS page cache persists, so the full commitlog tail is intact).
        The simulated clock keeps running: wall time does not reset when
        a server dies.  Call :meth:`recover` to rebuild.
        """
        self.memtable = Memtable(capacity_bytes=self.knobs.memtable_space_bytes)
        self._pending_compactions.clear()
        self._busy_table_ids.clear()
        self._flush_queue_bytes = 0.0
        self.cache = LruFileCache(capacity_bytes=self.knobs.file_cache_bytes)
        self._write_seq = 0
        if self.events is not None:
            self.events.publish(
                "fault.injected",
                f"engine crash at t={self.clock.now:.3f}s",
                kind="engine-crash",
                t=self.clock.now,
            )

    def recover(self, scrub: bool = True) -> RecoveryReport:
        """Restart after :meth:`crash`: scrub SSTables, replay the commitlog.

        Mirrors Cassandra's startup sequence: verify on-disk tables
        against their content checksums (corruption is *detected here*,
        raising :class:`~repro.errors.PersistenceError`, instead of
        surfacing as wrong answers on some later read), then re-apply
        every unflushed commitlog record to a fresh memtable.  Replayed
        records carry their original timestamps, so re-applying writes
        whose newer versions already reached an SSTable is resolved by
        last-write-wins exactly as on the pre-crash read path.

        The rebuilt engine serves every acknowledged write; only the
        clock differs from an uninterrupted run, by the replay/scrub
        cost this method charges.
        """
        report = RecoveryReport()
        if scrub:
            corrupt = []
            for table in self.layout.all_tables():
                report.scrubbed_tables += 1
                report.scrubbed_bytes += table.size_bytes
                if not table.verify():
                    corrupt.append(table.table_id)
            if corrupt:
                if self.events is not None:
                    self.events.publish(
                        "recovery.corrupt_artifact",
                        f"sstable checksum scrub failed for tables {corrupt}",
                        tables=corrupt,
                    )
                raise PersistenceError(
                    f"sstable scrub: checksum mismatch in tables {corrupt}"
                )

        for record in self.commitlog.replay():
            self.memtable.put(record)
            report.replayed_records += 1
            report.replayed_bytes += record.size_bytes

        # Replay + scrub are sequential streaming reads.
        dt = self.disk.seq_read_seconds(report.replayed_bytes + report.scrubbed_bytes)
        report.recovery_seconds = dt
        if dt > 0:
            self.stats.busy_seconds += dt
            self.clock.advance(dt)

        # Cassandra flushes replayed mutations that already exceed the
        # threshold, then resumes normal compaction scheduling.
        if self.memtable.should_flush(self.knobs.memtable_cleanup_threshold):
            self._flush_memtable()
            report.flushed_after_replay = True
        self._propose_compactions()

        if self.events is not None:
            self.events.publish(
                "recovery.journal_replayed",
                f"replayed {report.replayed_records} commitlog records "
                f"({report.replayed_bytes}B), scrubbed {report.scrubbed_tables} tables",
                records=report.replayed_records,
                bytes=report.replayed_bytes,
                tables=report.scrubbed_tables,
                seconds=report.recovery_seconds,
            )
        return report

    def scrub(self) -> List[int]:
        """Checksum-verify every SSTable; returns corrupt table ids."""
        return [t.table_id for t in self.layout.all_tables() if not t.verify()]

    # -- introspection ---------------------------------------------------------

    @property
    def sstable_count(self) -> int:
        return self.layout.table_count

    @property
    def pending_compaction_bytes(self) -> float:
        return sum(p.remaining_bytes for p in self._pending_compactions)

    def idle_until_compact(self, max_seconds: float = 3600.0) -> float:
        """Let background work drain (between benchmark phases)."""
        start = self.clock.now
        step = 0.25
        while self._pending_compactions or self._flush_queue_bytes > 0:
            if self.clock.now - start > max_seconds:
                break
            self.clock.advance(step)
            self._drain_background(step)
        return self.clock.now - start

    # ------------------------------------------------------------------ write path

    def _next_timestamp(self) -> float:
        # Strictly increasing even when the clock stands still within a batch.
        self._write_seq += 1
        return self.clock.now + self._write_seq * 1e-12

    def _write(self, record: Record) -> None:
        sync_extra = self.commitlog.append(record, now=self.clock.now)
        self.memtable.put(record)

        stall = 0.0
        if self.memtable.should_flush(self.knobs.memtable_cleanup_threshold):
            flush_bytes = self.memtable.size_bytes
            self._flush_memtable()
            # If flush writers are behind, the write path stalls until the
            # queue depth falls back under the limit.
            flush_bw = self.knobs.memtable_flush_writers * self.costs.flush_writer_bandwidth
            max_queue = FLUSH_STALL_DEPTH * max(flush_bytes, 1)
            if self._flush_queue_bytes > max_queue:
                stall = (self._flush_queue_bytes - max_queue) / flush_bw
                self.stats.write_stall_seconds += stall

        self._advance_for_op(
            cpu_seconds=write_cpu_seconds(self.costs),
            seq_bytes=commitlog_bytes_per_write(record.size_bytes, self.costs),
            random_reads=0,
            hold_seconds=self.costs.write_thread_hold,
            threads=self.knobs.concurrent_writes,
            extra_seconds=sync_extra + stall,
        )

    def _flush_memtable(self) -> Optional[SSTable]:
        if len(self.memtable) == 0:
            return None
        records = list(self.memtable.drain())
        table = SSTable(
            table_id=self._issue_table_id(),
            records=records,
            fp_chance=self.knobs.bloom_fp_chance,
            level=0,
            created_at=self.clock.now,
        )
        self.layout.add_flushed(table)
        self._flush_queue_bytes += table.size_bytes
        self.commitlog.discard_flushed()
        self.stats.flushes += 1
        self._propose_compactions()
        return table

    def _issue_table_id(self) -> int:
        self._next_table_id += 1
        return self._next_table_id

    def _issue_task_id(self) -> int:
        self._next_task_id += 1
        return self._next_task_id

    # ------------------------------------------------------------------ timing

    def _advance_for_op(
        self,
        cpu_seconds: float,
        seq_bytes: float,
        random_reads: int,
        hold_seconds: float,
        threads: int,
        extra_seconds: float = 0.0,
    ) -> None:
        """Advance the clock by this op's bottleneck service interval.

        The op's demands are divided by the capacity of each resource —
        available cores (minus compaction CPU and contention), leftover
        sequential bandwidth, leftover random IOPS, and the worker pool —
        and the largest quotient is the time the system needed to push
        this op through at full concurrency.
        """
        bg_cpu, bg_seq = self._background_utilization()
        self.cpu.set_background_utilization(bg_cpu)
        self.disk.set_background_utilization(bg_seq, 0.0)
        # Faster clocks stretch the effective core count relative to the
        # 3.0 GHz reference the cost constants are calibrated at.
        cores = max(self.cpu.available_cores * (self.hardware.cpu_ghz / 3.0), 0.5)
        contention = thread_contention(threads, cores, self.costs)

        dt_cpu = cpu_seconds * contention / cores
        dt_seq = self.disk.seq_write_seconds(seq_bytes) if seq_bytes else 0.0
        dt_rand = self.disk.random_read_seconds(random_reads) if random_reads else 0.0
        dt_pool = hold_seconds / threads

        dt = max(dt_cpu, dt_seq, dt_rand, dt_pool) + extra_seconds
        self.stats.busy_seconds += dt
        self.clock.advance(dt)
        self._drain_background(dt)

    def _background_utilization(self) -> tuple:
        """Current (cpu_util, seq_disk_util) stolen by flush + compaction."""
        comp_rate = self._compaction_rate()
        flush_rate = (
            self.knobs.memtable_flush_writers * self.costs.flush_writer_bandwidth
            if self._flush_queue_bytes > 0
            else 0.0
        )
        seq_demand = comp_rate * self.costs.compaction_io_factor + flush_rate
        seq_util = min(seq_demand / self.hardware.disk_seq_bandwidth, 0.9)
        cpu_demand = comp_rate * self.costs.compaction_cpu_per_byte
        cpu_util = min(cpu_demand / self.hardware.cpu_cores, 0.6)
        return cpu_util, seq_util

    def _compaction_rate(self) -> float:
        """Input bytes/s compaction currently processes."""
        if not self._pending_compactions:
            return 0.0
        active = min(len(self._pending_compactions), self.knobs.concurrent_compactors)
        stream_cap = active * COMPACTOR_STREAM_BYTES
        # Per-compactor throttle: parallel compactors raise the total
        # drain rate (see AnalyticLSMModel._compaction_rate).
        throttle = self.knobs.compaction_throughput_bytes * active
        if self.knobs.compaction_method == LEVELED:
            throttle = max(throttle, LEVELED_MIN_COMPACTION_BYTES)
        return min(throttle, stream_cap)

    def _drain_background(self, dt: float) -> None:
        # Flush queue drains at flush-writer bandwidth.
        if self._flush_queue_bytes > 0:
            flush_bw = (
                self.knobs.memtable_flush_writers * self.costs.flush_writer_bandwidth
            )
            self._flush_queue_bytes = max(0.0, self._flush_queue_bytes - flush_bw * dt)

        # Compaction drains at its current rate, parallel across the first
        # `concurrent_compactors` queued tasks.
        rate = self._compaction_rate()
        if rate <= 0.0:
            return
        budget = rate * dt
        while budget > 0 and self._pending_compactions:
            active = list(self._pending_compactions)[
                : self.knobs.concurrent_compactors
            ]
            share = budget / len(active)
            consumed = 0.0
            for pending in active:
                used = min(share, pending.remaining_bytes)
                pending.remaining_bytes -= used
                consumed += used
            budget -= consumed
            completed = [
                p for p in list(self._pending_compactions) if p.remaining_bytes <= 0
            ]
            for p in completed:
                self._pending_compactions.remove(p)
                self._complete_compaction(p.task)
            if consumed <= 0:
                break

    # ------------------------------------------------------------------ compaction

    def _propose_compactions(self) -> None:
        tasks = self.strategy.propose(
            self.layout, self._busy_table_ids, self._issue_task_id
        )
        for task in tasks:
            self._pending_compactions.append(
                _PendingCompaction(task=task, remaining_bytes=float(task.io_bytes))
            )
            self._busy_table_ids.update(t.table_id for t in task.input_tables)
            self.stats.compactions_started += 1

    def _complete_compaction(self, task: CompactionTask) -> None:
        merged = merge_records(
            [t.records() for t in task.input_tables],
            drop_tombstones=task.drop_tombstones,
        )
        self.layout.remove(task.input_tables)
        for t in task.input_tables:
            self._busy_table_ids.discard(t.table_id)
            self.cache.invalidate_prefix(t.table_id)

        if merged:
            target_bytes = self.strategy.target_table_bytes(task.target_level)
            if target_bytes is None:
                table = SSTable(
                    table_id=self._issue_table_id(),
                    records=merged,
                    fp_chance=self.knobs.bloom_fp_chance,
                    level=task.target_level,
                    created_at=self.clock.now,
                )
                self.layout.add_at_level(table, task.target_level)
            else:
                for table in split_into_tables(
                    merged,
                    max_table_bytes=target_bytes,
                    next_id=self._issue_table_id,
                    fp_chance=self.knobs.bloom_fp_chance,
                    level=task.target_level,
                    created_at=self.clock.now,
                ):
                    self.layout.add_at_level(table, task.target_level)

        self.stats.compactions_completed += 1
        self.stats.compaction_bytes += task.input_bytes
        self.disk.account_compaction_bytes(task.io_bytes)
        self._propose_compactions()

    def __repr__(self) -> str:
        return (
            f"LSMEngine({self.strategy.name}, tables={self.sstable_count}, "
            f"mem={self.memtable.size_bytes}B, t={self.clock.now:.3f}s)"
        )
