"""Compaction strategies: Size-Tiered and Leveled (paper §2.2.2).

Size-Tiered groups similar-sized SSTables into buckets and merges a
bucket once it holds ``min_threshold`` (default 4) tables — cheap for
writes, but reads may have to probe every table.  Leveled keeps
hierarchical levels of equal-sized, non-overlapping tables where each
level holds ~10x the previous one — reads probe at most one table per
level plus L0, at the cost of far more compaction I/O.

Strategies *propose* :class:`CompactionTask`s; the engine schedules the
background I/O on simulated time and calls back to apply the structural
result when a task completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set

from repro.config.cassandra import LEVELED, SIZE_TIERED
from repro.errors import ConfigurationError
from repro.lsm.sstable import SSTable

#: Cassandra's default size-tiered trigger: 4 similar-sized tables.
SIZE_TIERED_MIN_THRESHOLD = 4
#: Similar-sized bucketing window (Cassandra's bucket_low/bucket_high).
BUCKET_LOW = 0.5
BUCKET_HIGH = 1.5
#: Leveled fan-out: each level holds ~10x the keys of the previous one.
LEVEL_FANOUT = 10
#: L0 table count that triggers an L0->L1 merge.
L0_COMPACTION_TRIGGER = 4


@dataclass
class CompactionTask:
    """A proposed merge: input tables -> new tables at ``target_level``."""

    task_id: int
    input_tables: List[SSTable]
    target_level: int
    drop_tombstones: bool = False

    @property
    def input_bytes(self) -> int:
        return sum(t.size_bytes for t in self.input_tables)

    @property
    def io_bytes(self) -> float:
        """Total disk traffic: inputs are read and outputs written."""
        return 2.0 * self.input_bytes

    def __repr__(self) -> str:
        ids = [t.table_id for t in self.input_tables]
        return f"CompactionTask(#{self.task_id}, tables={ids}, ->L{self.target_level})"


class TableLayout:
    """The on-disk table arrangement: a list of levels of SSTables.

    Size-tiered keeps everything in level 0; leveled uses level 0 for raw
    flushes and maintains the sorted-run invariant in levels >= 1.
    Level-0 tables are ordered oldest-first; reads iterate them
    newest-first.
    """

    def __init__(self):
        self.levels: List[List[SSTable]] = [[]]

    # -- structure -----------------------------------------------------------

    def _ensure_level(self, level: int) -> None:
        while len(self.levels) <= level:
            self.levels.append([])

    def add_flushed(self, table: SSTable) -> None:
        """Install a fresh flush output at level 0."""
        self.levels[0].append(table)

    def add_at_level(self, table: SSTable, level: int) -> None:
        self._ensure_level(level)
        self.levels[level].append(table)
        if level >= 1:
            self.levels[level].sort(key=lambda t: t.min_key)

    def remove(self, tables: Iterable[SSTable]) -> None:
        doomed = {t.table_id for t in tables}
        for lvl in self.levels:
            lvl[:] = [t for t in lvl if t.table_id not in doomed]

    def all_tables(self) -> List[SSTable]:
        return [t for lvl in self.levels for t in lvl]

    @property
    def table_count(self) -> int:
        return sum(len(lvl) for lvl in self.levels)

    @property
    def total_bytes(self) -> int:
        return sum(t.size_bytes for t in self.all_tables())

    def level_bytes(self, level: int) -> int:
        if level >= len(self.levels):
            return 0
        return sum(t.size_bytes for t in self.levels[level])

    # -- read support -------------------------------------------------------------

    def read_candidates(self, key: str) -> List[SSTable]:
        """Tables to probe for ``key``, newest-version-first.

        Level 0 tables can overlap arbitrarily, so all are candidates
        (newest first).  In levels >= 1 the non-overlap invariant means at
        most one table per level can hold the key.
        """
        candidates: List[SSTable] = list(reversed(self.levels[0]))
        for lvl in self.levels[1:]:
            for t in lvl:
                if t.min_key <= key <= t.max_key:
                    candidates.append(t)
                    break
        return candidates

    def overlapping(self, level: int, min_key: str, max_key: str) -> List[SSTable]:
        if level >= len(self.levels):
            return []
        return [t for t in self.levels[level] if t.overlaps_range(min_key, max_key)]

    def check_leveled_invariant(self) -> None:
        """Raise AssertionError if levels >= 1 contain overlapping tables."""
        for li, lvl in enumerate(self.levels[1:], start=1):
            ordered = sorted(lvl, key=lambda t: t.min_key)
            for a, b in zip(ordered, ordered[1:]):
                if a.max_key >= b.min_key:
                    raise AssertionError(
                        f"level {li}: {a!r} overlaps {b!r}"
                    )

    def __repr__(self) -> str:
        shape = "/".join(str(len(lvl)) for lvl in self.levels)
        return f"TableLayout(levels={shape}, {self.total_bytes}B)"


class CompactionStrategy:
    """Interface: inspect a layout and propose next merge tasks."""

    name: str = "abstract"

    def propose(
        self,
        layout: TableLayout,
        busy_table_ids: Set[int],
        next_task_id,
    ) -> List[CompactionTask]:
        """Return tasks whose inputs avoid ``busy_table_ids``.

        ``next_task_id`` is a callable issuing task ids, so proposals stay
        deterministic and unique across the engine's lifetime.
        """
        raise NotImplementedError

    def target_table_bytes(self, level: int) -> Optional[int]:
        """Max output table size at ``level`` (None = unbounded)."""
        return None


class SizeTieredStrategy(CompactionStrategy):
    """Merge buckets of ``min_threshold`` similar-sized tables."""

    name = SIZE_TIERED

    def __init__(self, min_threshold: int = SIZE_TIERED_MIN_THRESHOLD, max_threshold: int = 32):
        if min_threshold < 2:
            raise ConfigurationError("size-tiered min_threshold must be >= 2")
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold

    def _buckets(self, tables: Sequence[SSTable]) -> List[List[SSTable]]:
        """Group tables by similar size (Cassandra's bucketing rule)."""
        buckets: List[List[SSTable]] = []
        averages: List[float] = []
        for table in sorted(tables, key=lambda t: t.size_bytes):
            placed = False
            for i, avg in enumerate(averages):
                if BUCKET_LOW * avg <= table.size_bytes <= BUCKET_HIGH * avg:
                    buckets[i].append(table)
                    averages[i] = sum(t.size_bytes for t in buckets[i]) / len(buckets[i])
                    placed = True
                    break
            if not placed:
                buckets.append([table])
                averages.append(float(table.size_bytes))
        return buckets

    def propose(self, layout, busy_table_ids, next_task_id):
        idle = [t for t in layout.levels[0] if t.table_id not in busy_table_ids]
        tasks: List[CompactionTask] = []
        for bucket in self._buckets(idle):
            if len(bucket) >= self.min_threshold:
                chosen = bucket[: self.max_threshold]
                # Tombstones can be dropped only on a full merge of every
                # table (no older versions can hide elsewhere).
                full_merge = len(chosen) == layout.table_count
                tasks.append(
                    CompactionTask(
                        task_id=next_task_id(),
                        input_tables=chosen,
                        target_level=0,
                        drop_tombstones=full_merge,
                    )
                )
        return tasks


class LeveledStrategy(CompactionStrategy):
    """LevelDB-style leveled compaction with 10x fan-out."""

    name = LEVELED

    def __init__(self, sstable_target_bytes: int, fanout: int = LEVEL_FANOUT):
        if sstable_target_bytes <= 0:
            raise ConfigurationError("sstable target size must be positive")
        self.sstable_target_bytes = int(sstable_target_bytes)
        self.fanout = fanout

    def target_table_bytes(self, level: int) -> Optional[int]:
        return self.sstable_target_bytes

    def level_capacity_bytes(self, level: int) -> float:
        """Byte budget of ``level`` (level 1 = fanout x table size)."""
        if level == 0:
            return float(L0_COMPACTION_TRIGGER * self.sstable_target_bytes)
        return float(self.sstable_target_bytes * self.fanout**level)

    def propose(self, layout, busy_table_ids, next_task_id):
        tasks: List[CompactionTask] = []

        # L0 -> L1: triggered by accumulating flushes ("compaction is
        # triggered each time a MEMTable flush occurs" for ScyllaDB /
        # aggressively for leveled, paper §2.2.2).
        l0_idle = [t for t in layout.levels[0] if t.table_id not in busy_table_ids]
        if len(l0_idle) >= L0_COMPACTION_TRIGGER or (
            l0_idle and layout.level_bytes(0) > self.level_capacity_bytes(0)
        ):
            min_key = min(t.min_key for t in l0_idle)
            max_key = max(t.max_key for t in l0_idle)
            overlap = [
                t
                for t in layout.overlapping(1, min_key, max_key)
                if t.table_id not in busy_table_ids
            ]
            overlap_ok = all(
                t.table_id not in busy_table_ids
                for t in layout.overlapping(1, min_key, max_key)
            )
            if overlap_ok:
                tasks.append(
                    CompactionTask(
                        task_id=next_task_id(),
                        input_tables=l0_idle + overlap,
                        target_level=1,
                        drop_tombstones=len(layout.levels) <= 2,
                    )
                )

        # Li -> Li+1 spill-over when a level exceeds its budget.
        for li in range(1, len(layout.levels)):
            if layout.level_bytes(li) <= self.level_capacity_bytes(li):
                continue
            candidates = [
                t for t in layout.levels[li] if t.table_id not in busy_table_ids
            ]
            if not candidates:
                continue
            # Pick the oldest table to roll up (simple, deterministic).
            victim = min(candidates, key=lambda t: (t.created_at, t.table_id))
            overlap = layout.overlapping(li + 1, victim.min_key, victim.max_key)
            if any(t.table_id in busy_table_ids for t in overlap):
                continue
            bottom = li + 1 >= len(layout.levels) - 1 or all(
                layout.level_bytes(l) == 0 for l in range(li + 2, len(layout.levels))
            )
            tasks.append(
                CompactionTask(
                    task_id=next_task_id(),
                    input_tables=[victim] + overlap,
                    target_level=li + 1,
                    drop_tombstones=bottom,
                )
            )
        return tasks


def make_strategy(method: str, sstable_target_bytes: int) -> CompactionStrategy:
    """Instantiate the strategy named by the ``compaction_method`` knob."""
    if method == SIZE_TIERED:
        return SizeTieredStrategy()
    if method == LEVELED:
        return LeveledStrategy(sstable_target_bytes)
    raise ConfigurationError(f"unknown compaction method {method!r}")
