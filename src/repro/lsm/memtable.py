"""In-memory write-back cache of rows (Cassandra's Memtable).

Writes are batched here until the fill fraction crosses
``memtable_cleanup_threshold``, at which point the engine flushes the
contents to a new immutable SSTable (paper §2.2.1).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.lsm.record import Record


class Memtable:
    """Mutable map of key -> newest Record with byte accounting."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("memtable capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._rows: Dict[str, Record] = {}
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def size_bytes(self) -> int:
        return self._bytes

    @property
    def fill_fraction(self) -> float:
        return self._bytes / self.capacity_bytes

    def put(self, record: Record) -> None:
        """Insert or overwrite a row version (newest timestamp wins)."""
        existing = self._rows.get(record.key)
        if existing is not None:
            if not record.supersedes(existing):
                return  # stale write, e.g. replayed out of order
            self._bytes -= existing.size_bytes
        self._rows[record.key] = record
        self._bytes += record.size_bytes

    def get(self, key: str) -> Optional[Record]:
        """Return the row version held here, tombstones included."""
        return self._rows.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._rows

    def should_flush(self, cleanup_threshold: float) -> bool:
        """Flush trigger: fill fraction reached ``cleanup_threshold``."""
        return self._bytes >= cleanup_threshold * self.capacity_bytes

    def scan(self, start_key: str, end_key: str) -> Iterator[Record]:
        """Records with start <= key <= end, in key order (tombstones
        included — the caller merges)."""
        for key in sorted(self._rows):
            if start_key <= key <= end_key:
                yield self._rows[key]

    def drain(self) -> Iterator[Record]:
        """Yield all records in key order and leave the memtable empty."""
        rows = self._rows
        self._rows = {}
        self._bytes = 0
        for key in sorted(rows):
            yield rows[key]

    def __repr__(self) -> str:
        return (
            f"Memtable({len(self._rows)} rows, {self._bytes}B, "
            f"fill={self.fill_fraction:.2%})"
        )
