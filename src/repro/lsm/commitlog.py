"""Commit log: sequential durability log for unflushed writes.

Every write is appended here before it is acknowledged (paper §2.2.1,
Figure 2).  Appends are sequential disk I/O; ``commitlog_sync_period_in_ms``
controls how often the log fsyncs in periodic mode (each sync adds a
fixed overhead), and segments of ``commitlog_segment_size_in_mb`` are
recycled once the corresponding memtables flush.

The log also *retains* the records appended since the last flush, which
is the whole point of its existence: after a simulated process kill the
engine's recovery path (:meth:`~repro.lsm.engine.LSMEngine.recover`)
replays them into a fresh memtable — Cassandra's
commitlog-replay-on-restart.  A kill models ``SIGKILL`` (the OS page
cache survives), so every appended record is replayable regardless of
where the periodic-sync clock stood; power-loss semantics are out of
scope.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.lsm.record import Record

#: Seconds of disk time per fsync barrier (ordering + device flush).
SYNC_OVERHEAD_SECONDS = 0.004


class CommitLog:
    """Byte-accounting commit log with periodic-sync cost modelling."""

    def __init__(self, segment_size_bytes: int, sync_period_s: float):
        if segment_size_bytes <= 0:
            raise ValueError("segment size must be positive")
        if sync_period_s <= 0:
            raise ValueError("sync period must be positive")
        self.segment_size_bytes = int(segment_size_bytes)
        self.sync_period_s = float(sync_period_s)
        self._active_segment_bytes = 0
        self._sealed_segments: List[int] = []
        # Records appended since the last memtable flush: exactly the
        # set a restart must replay.  Flushing drains the *entire*
        # memtable, so every earlier append is durable in an SSTable by
        # the time discard_flushed() runs, and the retained window never
        # outgrows one flush interval.
        self._unflushed_records: List[Record] = []
        self.total_bytes_written = 0
        self.total_syncs = 0
        # The sync clock starts at the first append, not at an implicit
        # t=0: a log whose first write lands at now >= period used to be
        # charged a spurious sync barrier for the idle gap before any
        # bytes existed to sync.
        self._last_sync_time: Optional[float] = None

    @property
    def active_segment_bytes(self) -> int:
        return self._active_segment_bytes

    @property
    def sealed_segment_count(self) -> int:
        return len(self._sealed_segments)

    @property
    def unflushed_record_count(self) -> int:
        return len(self._unflushed_records)

    @property
    def unflushed_bytes(self) -> int:
        return sum(r.size_bytes for r in self._unflushed_records)

    def append(self, record: Record, now: float) -> float:
        """Append a record; returns *extra* disk seconds beyond the
        streaming byte cost (i.e., any sync barrier crossed).

        The caller charges the byte cost via the disk model; this method
        only tracks segment roll-over and periodic sync overhead.
        """
        nbytes = record.size_bytes
        self._active_segment_bytes += nbytes
        self.total_bytes_written += nbytes
        self._unflushed_records.append(record)
        extra = 0.0
        # ``>=`` on purpose: a record that lands exactly on the segment
        # boundary belongs to the segment it filled, and the next append
        # starts a fresh one at 0 bytes (possibly left empty forever —
        # replay tolerates that).
        if self._active_segment_bytes >= self.segment_size_bytes:
            self._sealed_segments.append(self._active_segment_bytes)
            self._active_segment_bytes = 0
        if self._last_sync_time is None:
            # First append ever: establish the sync baseline without
            # charging a barrier (there was nothing to sync before now).
            self._last_sync_time = now
        elif now - self._last_sync_time >= self.sync_period_s:
            self._last_sync_time = now
            self.total_syncs += 1
            extra += SYNC_OVERHEAD_SECONDS
        return extra

    def replay(self) -> Iterator[Record]:
        """Records a restart must re-apply, in original append order.

        Yields everything appended since the last flush — sealed-but-
        undiscarded segments and the active segment alike; an empty
        active segment (crash right after a roll or a flush) simply
        contributes nothing.  Replaying records whose newer versions
        already reached an SSTable is harmless: last-write-wins
        resolution picks the durable version back.
        """
        return iter(list(self._unflushed_records))

    def discard_flushed(self) -> int:
        """Recycle sealed segments after a memtable flush; returns bytes.

        Also drops the retained replay window: a flush drains the whole
        memtable, so every record appended before this call is now
        durable in an SSTable and never needs replaying.
        """
        freed = sum(self._sealed_segments)
        self._sealed_segments.clear()
        self._unflushed_records.clear()
        return freed

    def __repr__(self) -> str:
        return (
            f"CommitLog(active={self._active_segment_bytes}B, "
            f"sealed={len(self._sealed_segments)}, total={self.total_bytes_written}B)"
        )
