"""Commit log: sequential durability log for unflushed writes.

Every write is appended here before it is acknowledged (paper §2.2.1,
Figure 2).  Appends are sequential disk I/O; ``commitlog_sync_period_in_ms``
controls how often the log fsyncs in periodic mode (each sync adds a
fixed overhead), and segments of ``commitlog_segment_size_in_mb`` are
recycled once the corresponding memtables flush.
"""

from __future__ import annotations

from typing import List

from repro.lsm.record import Record

#: Seconds of disk time per fsync barrier (ordering + device flush).
SYNC_OVERHEAD_SECONDS = 0.004


class CommitLog:
    """Byte-accounting commit log with periodic-sync cost modelling."""

    def __init__(self, segment_size_bytes: int, sync_period_s: float):
        if segment_size_bytes <= 0:
            raise ValueError("segment size must be positive")
        if sync_period_s <= 0:
            raise ValueError("sync period must be positive")
        self.segment_size_bytes = int(segment_size_bytes)
        self.sync_period_s = float(sync_period_s)
        self._active_segment_bytes = 0
        self._sealed_segments: List[int] = []
        self.total_bytes_written = 0
        self.total_syncs = 0
        self._last_sync_time = 0.0

    @property
    def active_segment_bytes(self) -> int:
        return self._active_segment_bytes

    @property
    def sealed_segment_count(self) -> int:
        return len(self._sealed_segments)

    def append(self, record: Record, now: float) -> float:
        """Append a record; returns *extra* disk seconds beyond the
        streaming byte cost (i.e., any sync barrier crossed).

        The caller charges the byte cost via the disk model; this method
        only tracks segment roll-over and periodic sync overhead.
        """
        nbytes = record.size_bytes
        self._active_segment_bytes += nbytes
        self.total_bytes_written += nbytes
        extra = 0.0
        if self._active_segment_bytes >= self.segment_size_bytes:
            self._sealed_segments.append(self._active_segment_bytes)
            self._active_segment_bytes = 0
        if now - self._last_sync_time >= self.sync_period_s:
            self._last_sync_time = now
            self.total_syncs += 1
            extra += SYNC_OVERHEAD_SECONDS
        return extra

    def discard_flushed(self) -> int:
        """Recycle sealed segments after a memtable flush; returns bytes."""
        freed = sum(self._sealed_segments)
        self._sealed_segments.clear()
        return freed

    def __repr__(self) -> str:
        return (
            f"CommitLog(active={self._active_segment_bytes}B, "
            f"sealed={len(self._sealed_segments)}, total={self.total_bytes_written}B)"
        )
