"""Gene <-> configuration encoding.

Each tuned parameter is one real-valued gene in its raw domain:
integers and floats use their natural range, categoricals use the choice
index.  Crossover produces non-integral genes; :meth:`decode` snaps to
the nearest feasible value while :meth:`violation` measures how far from
feasible a gene vector is (for the constraint penalty).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.config.parameter import (
    CategoricalParameter,
    FloatParameter,
    IntegerParameter,
    ParameterSpec,
)
from repro.config.space import Configuration, ConfigurationSpace
from repro.errors import SearchError


class ConfigurationEncoder:
    """Maps gene vectors to configurations over selected parameters."""

    def __init__(self, space: ConfigurationSpace, names: Sequence[str]):
        if not names:
            raise SearchError("encoder needs at least one parameter")
        self.space = space
        self.names: Tuple[str, ...] = tuple(names)
        self.specs: List[ParameterSpec] = [space[n] for n in self.names]
        lows, highs, integral = [], [], []
        for spec in self.specs:
            if isinstance(spec, CategoricalParameter):
                lows.append(0.0)
                highs.append(float(len(spec.choices) - 1))
                integral.append(True)
            elif isinstance(spec, IntegerParameter):
                lows.append(float(spec.low))
                highs.append(float(spec.high))
                integral.append(True)
            elif isinstance(spec, FloatParameter):
                lows.append(spec.low)
                highs.append(spec.high)
                integral.append(False)
            else:  # pragma: no cover - new parameter kinds must opt in
                raise SearchError(f"cannot encode parameter type {type(spec).__name__}")
        self.lower = np.array(lows)
        self.upper = np.array(highs)
        self.integral = np.array(integral, dtype=bool)

    @property
    def n_genes(self) -> int:
        return len(self.names)

    # -- sampling --------------------------------------------------------------

    def random_genes(self, rng: np.random.Generator) -> np.ndarray:
        """Uniform random point within bounds (initial population)."""
        return rng.uniform(self.lower, self.upper)

    def encode(self, config: Configuration) -> np.ndarray:
        """Genes of an existing configuration (used for seeding)."""
        genes = []
        for spec in self.specs:
            value = config[spec.name]
            if isinstance(spec, CategoricalParameter):
                genes.append(float(spec.choices.index(value)))
            else:
                genes.append(float(value))
        return np.array(genes)

    # -- decoding --------------------------------------------------------------

    def decode(self, genes: np.ndarray) -> Configuration:
        """Snap to the nearest feasible configuration."""
        genes = np.asarray(genes, dtype=float)
        if genes.shape != (self.n_genes,):
            raise SearchError(f"expected {self.n_genes} genes, got {genes.shape}")
        overrides = {}
        clipped = np.clip(genes, self.lower, self.upper)
        for g, spec in zip(clipped, self.specs):
            if isinstance(spec, CategoricalParameter):
                overrides[spec.name] = spec.choices[int(round(g))]
            elif isinstance(spec, IntegerParameter):
                overrides[spec.name] = int(round(g))
            else:
                overrides[spec.name] = float(g)
        return Configuration(self.space, overrides)

    def features(self, genes: np.ndarray, read_ratio: float) -> np.ndarray:
        """Surrogate feature row for (possibly infeasible) genes.

        Infeasible points still get a performance estimate — the paper
        penalizes them but does not discard them — so features come from
        the raw genes, unit-scaled, not from the snapped decode.
        """
        return self.features_batch(np.asarray(genes, dtype=float)[None, :], read_ratio)[0]

    def features_batch(self, genes_matrix: np.ndarray, read_ratio: float) -> np.ndarray:
        """Feature rows for a whole gene matrix: ``(n, g) -> (n, 1 + g)``.

        The batched GA fitness path; row ``i`` is bit-identical to
        ``features(genes_matrix[i], read_ratio)`` (elementwise ops only).
        """
        genes = np.atleast_2d(np.asarray(genes_matrix, dtype=float))
        if genes.shape[1] != self.n_genes:
            raise SearchError(f"expected {self.n_genes} genes per row, got {genes.shape[1]}")
        genes = np.clip(genes, self.lower, self.upper)
        span = np.where(self.upper > self.lower, self.upper - self.lower, 1.0)
        unit = (genes - self.lower) / span
        rows = np.empty((genes.shape[0], 1 + self.n_genes))
        rows[:, 0] = read_ratio
        rows[:, 1:] = unit
        return rows

    def violation(self, genes: np.ndarray) -> float:
        """Distance from feasibility: integrality + bound overshoot.

        Zero iff :meth:`decode` would be a no-op snap.  Integrality
        violations are measured as the distance to the nearest integer
        (max 0.5 per gene); bound violations as the normalized overshoot.
        """
        return float(self.violation_batch(np.asarray(genes, dtype=float)[None, :])[0])

    def violation_batch(self, genes_matrix: np.ndarray) -> np.ndarray:
        """Per-row feasibility violations: ``(n, g) -> (n,)``.

        Row ``i`` is bit-identical to ``violation(genes_matrix[i])``:
        the per-row reductions run over the same contiguous gene axis in
        the same order regardless of how many rows share the matrix.
        """
        genes = np.atleast_2d(np.asarray(genes_matrix, dtype=float))
        if genes.shape[1] != self.n_genes:
            raise SearchError(f"expected {self.n_genes} genes per row, got {genes.shape[1]}")
        span = np.where(self.upper > self.lower, self.upper - self.lower, 1.0)
        below = np.maximum(self.lower - genes, 0.0) / span
        above = np.maximum(genes - self.upper, 0.0) / span
        total = np.sum(below + above, axis=1)
        inside = np.clip(genes, self.lower, self.upper)
        frac = np.abs(inside - np.round(inside))
        total += np.sum(frac[:, self.integral], axis=1)
        return total
