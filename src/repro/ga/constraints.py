"""Constraint handling: Deb-style penalties.

"The fitness function is modified to ensure constraints are met, as
described in [Deb 2000; Deep et al. 2009], where infeasible
configuration files are scored with a penalty, and feasible ones are
scored as the original fitness function" (paper §3.7.2).
"""

from __future__ import annotations

import numpy as np

from repro.ga.encoding import ConfigurationEncoder


def feasibility_violation(encoder: ConfigurationEncoder, genes: np.ndarray) -> float:
    """Total constraint violation (0 = feasible)."""
    return encoder.violation(genes)


def penalized_fitness(
    raw_fitness: float,
    violation: float,
    penalty_scale: float,
) -> float:
    """Apply the infeasibility penalty to a raw (maximization) fitness.

    Feasible points pass through unchanged.  Infeasible points are
    penalized proportionally to their violation, with the scale chosen
    large enough (a multiple of the fitness magnitude) that a feasible
    point always eventually dominates, while *near*-feasible good points
    still outrank feasible bad ones early in the run — this is what lets
    arithmetic crossover roam between integer lattice points and still
    converge onto them.
    """
    if violation <= 0.0:
        return raw_fitness
    return raw_fitness - penalty_scale * violation
