"""The genetic algorithm driver.

Generational GA with elitism: tournament parents, random-weighted
average crossover, gaussian mutation, Deb-penalized fitness.  Budgeted
by surrogate evaluations — the paper reports ~3,350 evaluations per
search at ~45 us each (§4.8) — so results carry an evaluation count the
search-efficiency experiments can convert into simulated benchmark time
saved.

Fitness can be supplied two ways:

* ``fitness_fn(genes) -> float`` — the scalar reference path, one call
  per individual;
* ``fitness_batch_fn(genes_matrix) -> (n,) array`` — the fast path, one
  call per *generation* scoring the whole population at once.

When both are given the batched path runs; the scalar path is retained
as the reference implementation the equivalence tests compare against.
The two paths consume the RNG identically and count evaluations
identically, so a batch function whose rows match the scalar function
bit-for-bit yields a bit-identical :class:`GAResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.config.space import Configuration
from repro.errors import SearchError
from repro.ga.encoding import ConfigurationEncoder
from repro.ga.operators import (
    gaussian_mutation_many,
    tournament_select_many,
    weighted_average_crossover_many,
)
from repro.runtime.events import EventBus
from repro.sim.rng import SeedLike, derive_rng

#: Defaults sized so a full run costs ~3,400 evaluations, matching §4.8.
DEFAULT_POPULATION = 48
DEFAULT_GENERATIONS = 70
DEFAULT_ELITES = 2
DEFAULT_STAGNATION_LIMIT = 25


@dataclass
class GAResult:
    """Outcome of one GA search."""

    best_configuration: Configuration
    best_fitness: float
    evaluations: int
    generations: int
    history: List[float] = field(default_factory=list)  # best-so-far per gen


class GeneticAlgorithm:
    """Maximizes ``fitness(genes_features)`` over a configuration space.

    Parameters
    ----------
    encoder:
        Gene <-> configuration mapping for the tuned parameters.
    fitness_fn:
        Maps a raw gene vector to a raw (unpenalized) fitness; in Rafiki
        this queries the surrogate with the workload fixed (Equation 4).
    fitness_batch_fn:
        Maps a ``(n, n_genes)`` matrix to ``(n,)`` raw fitnesses in one
        call.  Preferred when present: the surrogate then runs each
        member network once per generation instead of once per
        individual.
    penalty_scale:
        Deb-penalty coefficient; if None it is set adaptively to the
        spread of the initial population's fitness.
    bus:
        Optional :class:`~repro.runtime.events.EventBus`; when given,
        ``run`` publishes ``search.start`` / ``search.generation`` /
        ``search.done`` progress events.
    """

    def __init__(
        self,
        encoder: ConfigurationEncoder,
        fitness_fn: Optional[Callable[[np.ndarray], float]] = None,
        population_size: int = DEFAULT_POPULATION,
        generations: int = DEFAULT_GENERATIONS,
        elites: int = DEFAULT_ELITES,
        mutation_rate: float = 0.2,
        mutation_scale: float = 0.08,
        stagnation_limit: int = DEFAULT_STAGNATION_LIMIT,
        penalty_scale: Optional[float] = None,
        fitness_batch_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        bus: Optional[EventBus] = None,
    ):
        if population_size < 4:
            raise SearchError("population must be at least 4")
        if generations < 1:
            raise SearchError("need at least one generation")
        if not (0 <= elites < population_size):
            raise SearchError("elites must fit inside the population")
        if fitness_fn is None and fitness_batch_fn is None:
            raise SearchError("need fitness_fn or fitness_batch_fn")
        self.encoder = encoder
        self.fitness_fn = fitness_fn
        self.fitness_batch_fn = fitness_batch_fn
        self.population_size = population_size
        self.generations = generations
        self.elites = elites
        self.mutation_rate = mutation_rate
        self.mutation_scale = mutation_scale
        self.stagnation_limit = stagnation_limit
        self.penalty_scale = penalty_scale
        self.bus = bus
        self.evaluations = 0

    # -- evaluation ------------------------------------------------------------

    def _raw_fitness_many(self, population: Sequence[np.ndarray]) -> np.ndarray:
        """Raw fitness of every individual; one batched call if possible."""
        self.evaluations += len(population)
        if self.fitness_batch_fn is not None:
            out = np.asarray(
                self.fitness_batch_fn(np.stack(population)), dtype=float
            ).ravel()
            if out.shape[0] != len(population):
                raise SearchError(
                    f"fitness_batch_fn returned {out.shape[0]} scores "
                    f"for {len(population)} individuals"
                )
            return out
        return np.array([float(self.fitness_fn(g)) for g in population])

    def _penalized_many(
        self, population: Sequence[np.ndarray], raw: np.ndarray, penalty_scale: float
    ) -> np.ndarray:
        """Deb-penalized fitness for the whole population.

        Elementwise ``np.where`` matches :func:`penalized_fitness` bit
        for bit: feasible rows pass through untouched, infeasible rows
        subtract the same product.
        """
        violations = self.encoder.violation_batch(np.stack(population))
        return np.where(violations > 0.0, raw - penalty_scale * violations, raw)

    def _publish(self, topic: str, message: str, **payload) -> None:
        if self.bus is not None:
            self.bus.publish(topic, message, **payload)

    # -- main loop ---------------------------------------------------------------

    def run(
        self,
        seed: SeedLike = 0,
        initial: Optional[List[np.ndarray]] = None,
    ) -> GAResult:
        """Run the GA; returns the best *feasible* configuration found."""
        rng = derive_rng(seed)
        self.evaluations = 0
        self._publish(
            "search.start",
            f"GA search over {self.encoder.n_genes} genes",
            population=self.population_size,
            generations=self.generations,
            batched=self.fitness_batch_fn is not None,
        )

        population = [self.encoder.random_genes(rng) for _ in range(self.population_size)]
        if initial:
            for i, genes in enumerate(initial[: self.population_size]):
                population[i] = np.asarray(genes, dtype=float)

        raw_first = self._raw_fitness_many(population)
        if self.penalty_scale is not None:
            penalty_scale = self.penalty_scale
        else:
            spread = max(np.ptp(raw_first), abs(np.mean(raw_first)) * 0.1, 1e-9)
            penalty_scale = 2.0 * spread
        fitness = self._penalized_many(population, raw_first, penalty_scale)

        best_genes, best_fit = self._best_feasible(population, fitness)
        history = [best_fit]
        stagnant = 0
        generation = 0

        for generation in range(1, self.generations + 1):
            # Variation runs population-at-a-time: every child's parents,
            # crossover weights, and mutation draws come from one block
            # RNG call each, so per-generation python overhead is O(1)
            # in the population size.  Both fitness modes share this
            # block, which keeps their RNG streams — and hence their
            # trajectories — identical.
            order = np.argsort(fitness)[::-1]
            pop_matrix = np.stack(population)
            n_children = self.population_size - self.elites
            ia = tournament_select_many(fitness, rng, n_children)
            ib = tournament_select_many(fitness, rng, n_children)
            children = weighted_average_crossover_many(
                pop_matrix[ia], pop_matrix[ib], rng
            )
            children = gaussian_mutation_many(
                children,
                self.encoder.lower,
                self.encoder.upper,
                rng,
                rate=self.mutation_rate,
                scale=self.mutation_scale,
            )
            population = [
                pop_matrix[int(i)].copy() for i in order[: self.elites]
            ] + list(children)
            raw = self._raw_fitness_many(population)
            fitness = self._penalized_many(population, raw, penalty_scale)

            gen_best_genes, gen_best_fit = self._best_feasible(population, fitness)
            if gen_best_fit > best_fit + 1e-12:
                best_genes, best_fit = gen_best_genes, gen_best_fit
                stagnant = 0
            else:
                stagnant += 1
            history.append(best_fit)
            self._publish(
                "search.generation",
                f"generation {generation}: best {best_fit:,.1f}",
                generation=generation,
                best_fitness=best_fit,
                evaluations=self.evaluations,
            )
            if stagnant >= self.stagnation_limit:
                break

        config = self.encoder.decode(best_genes)
        self._publish(
            "search.done",
            f"search finished after {generation} generations",
            generations=generation,
            best_fitness=best_fit,
            evaluations=self.evaluations,
        )
        return GAResult(
            best_configuration=config,
            best_fitness=best_fit,
            evaluations=self.evaluations,
            generations=generation,
            history=history,
        )

    def _best_feasible(self, population, fitness):
        """Best individual after snapping to feasibility.

        The winner is re-scored on its *snapped* genes so the reported
        fitness corresponds to an actually applicable configuration.
        """
        best_idx = int(np.argmax(fitness))
        genes = population[best_idx]
        config = self.encoder.decode(genes)
        snapped = self.encoder.encode(config)
        raw = float(self._raw_fitness_many([snapped])[0])
        return snapped, raw
