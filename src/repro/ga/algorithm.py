"""The genetic algorithm driver.

Generational GA with elitism: tournament parents, random-weighted
average crossover, gaussian mutation, Deb-penalized fitness.  Budgeted
by surrogate evaluations — the paper reports ~3,350 evaluations per
search at ~45 us each (§4.8) — so results carry an evaluation count the
search-efficiency experiments can convert into simulated benchmark time
saved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.config.space import Configuration
from repro.errors import SearchError
from repro.ga.constraints import penalized_fitness
from repro.ga.encoding import ConfigurationEncoder
from repro.ga.operators import (
    gaussian_mutation,
    tournament_select,
    weighted_average_crossover,
)
from repro.sim.rng import SeedLike, derive_rng

#: Defaults sized so a full run costs ~3,400 evaluations, matching §4.8.
DEFAULT_POPULATION = 48
DEFAULT_GENERATIONS = 70
DEFAULT_ELITES = 2
DEFAULT_STAGNATION_LIMIT = 25


@dataclass
class GAResult:
    """Outcome of one GA search."""

    best_configuration: Configuration
    best_fitness: float
    evaluations: int
    generations: int
    history: List[float] = field(default_factory=list)  # best-so-far per gen


class GeneticAlgorithm:
    """Maximizes ``fitness(genes_features)`` over a configuration space.

    Parameters
    ----------
    encoder:
        Gene <-> configuration mapping for the tuned parameters.
    fitness_fn:
        Maps a raw gene vector to a raw (unpenalized) fitness; in Rafiki
        this queries the surrogate with the workload fixed (Equation 4).
    penalty_scale:
        Deb-penalty coefficient; if None it is set adaptively to the
        spread of the initial population's fitness.
    """

    def __init__(
        self,
        encoder: ConfigurationEncoder,
        fitness_fn: Callable[[np.ndarray], float],
        population_size: int = DEFAULT_POPULATION,
        generations: int = DEFAULT_GENERATIONS,
        elites: int = DEFAULT_ELITES,
        mutation_rate: float = 0.2,
        mutation_scale: float = 0.08,
        stagnation_limit: int = DEFAULT_STAGNATION_LIMIT,
        penalty_scale: Optional[float] = None,
    ):
        if population_size < 4:
            raise SearchError("population must be at least 4")
        if generations < 1:
            raise SearchError("need at least one generation")
        if not (0 <= elites < population_size):
            raise SearchError("elites must fit inside the population")
        self.encoder = encoder
        self.fitness_fn = fitness_fn
        self.population_size = population_size
        self.generations = generations
        self.elites = elites
        self.mutation_rate = mutation_rate
        self.mutation_scale = mutation_scale
        self.stagnation_limit = stagnation_limit
        self.penalty_scale = penalty_scale
        self.evaluations = 0

    # -- evaluation ------------------------------------------------------------

    def _evaluate(self, genes: np.ndarray, penalty_scale: float) -> float:
        self.evaluations += 1
        raw = float(self.fitness_fn(genes))
        violation = self.encoder.violation(genes)
        return penalized_fitness(raw, violation, penalty_scale)

    # -- main loop ---------------------------------------------------------------

    def run(
        self,
        seed: SeedLike = 0,
        initial: Optional[List[np.ndarray]] = None,
    ) -> GAResult:
        """Run the GA; returns the best *feasible* configuration found."""
        rng = derive_rng(seed)
        self.evaluations = 0

        population = [self.encoder.random_genes(rng) for _ in range(self.population_size)]
        if initial:
            for i, genes in enumerate(initial[: self.population_size]):
                population[i] = np.asarray(genes, dtype=float)

        raw_first = [float(self.fitness_fn(g)) for g in population]
        self.evaluations += len(population)
        if self.penalty_scale is not None:
            penalty_scale = self.penalty_scale
        else:
            spread = max(np.ptp(raw_first), abs(np.mean(raw_first)) * 0.1, 1e-9)
            penalty_scale = 2.0 * spread
        fitness = [
            penalized_fitness(r, self.encoder.violation(g), penalty_scale)
            for r, g in zip(raw_first, population)
        ]

        best_genes, best_fit = self._best_feasible(population, fitness, rng, penalty_scale)
        history = [best_fit]
        stagnant = 0
        generation = 0

        for generation in range(1, self.generations + 1):
            order = np.argsort(fitness)[::-1]
            next_pop: List[np.ndarray] = [population[int(i)].copy() for i in order[: self.elites]]
            while len(next_pop) < self.population_size:
                ia = tournament_select(fitness, rng)
                ib = tournament_select(fitness, rng)
                child = weighted_average_crossover(population[ia], population[ib], rng)
                child = gaussian_mutation(
                    child,
                    self.encoder.lower,
                    self.encoder.upper,
                    rng,
                    rate=self.mutation_rate,
                    scale=self.mutation_scale,
                )
                next_pop.append(child)
            population = next_pop
            fitness = [self._evaluate(g, penalty_scale) for g in population]

            gen_best_genes, gen_best_fit = self._best_feasible(
                population, fitness, rng, penalty_scale
            )
            if gen_best_fit > best_fit + 1e-12:
                best_genes, best_fit = gen_best_genes, gen_best_fit
                stagnant = 0
            else:
                stagnant += 1
            history.append(best_fit)
            if stagnant >= self.stagnation_limit:
                break

        config = self.encoder.decode(best_genes)
        return GAResult(
            best_configuration=config,
            best_fitness=best_fit,
            evaluations=self.evaluations,
            generations=generation,
            history=history,
        )

    def _best_feasible(self, population, fitness, rng, penalty_scale):
        """Best individual after snapping to feasibility.

        The winner is re-scored on its *snapped* genes so the reported
        fitness corresponds to an actually applicable configuration.
        """
        best_idx = int(np.argmax(fitness))
        genes = population[best_idx]
        config = self.encoder.decode(genes)
        snapped = self.encoder.encode(config)
        raw = float(self.fitness_fn(snapped))
        self.evaluations += 1
        return snapped, raw
