"""GA variation and selection operators."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def weighted_average_crossover(
    parent_a: np.ndarray, parent_b: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Random-weighted average of two parents, per gene.

    The paper's crossover "calculates intermediate configurations within
    the bounds of the existing population (to enforce interpolation
    rather than extrapolation) by taking a random-weighted average
    between two points" (§3.7.2).  Each gene gets its own weight
    ``r ~ U(0,1)``: ``child_i = r_i * a_i + (1 - r_i) * b_i``.  (The
    paper's worked example divides the average by 2, which would shrink
    every child toward zero — we read that as a typo and keep the convex
    combination, which matches the stated interpolation intent.)
    """
    r = rng.random(parent_a.shape)
    return r * parent_a + (1.0 - r) * parent_b


def gaussian_mutation(
    genes: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    rng: np.random.Generator,
    rate: float = 0.2,
    scale: float = 0.1,
) -> np.ndarray:
    """Per-gene gaussian jitter, scaled to the gene's range.

    Keeps the search from collapsing once crossover has interpolated the
    population into a small hull; results are clipped to bounds.
    """
    mutated = genes.copy()
    mask = rng.random(genes.shape) < rate
    if np.any(mask):
        span = np.where(upper > lower, upper - lower, 1.0)
        mutated[mask] += rng.standard_normal(int(mask.sum())) * scale * span[mask]
    return np.clip(mutated, lower, upper)


def tournament_select(
    fitness: Sequence[float], rng: np.random.Generator, k: int = 3
) -> int:
    """Index of the best of ``k`` uniformly drawn individuals."""
    n = len(fitness)
    if n == 0:
        raise ValueError("empty population")
    contenders = rng.integers(n, size=min(k, n))
    best = int(contenders[0])
    for idx in contenders[1:]:
        if fitness[int(idx)] > fitness[best]:
            best = int(idx)
    return best


# -- population-at-a-time variants ------------------------------------------
#
# The GA's per-generation work is embarrassingly parallel across
# children, and the per-child python overhead (one rng call + one
# scan per tournament, one rng call per crossover/mutation) rivals the
# surrogate queries themselves once fitness goes batched.  These
# variants draw every child's randomness in one generator call each.
# They consume the RNG stream in a different (block-wise) order than a
# loop over the scalar operators, but remain fully deterministic per
# seed, and per-child semantics are unchanged.


def tournament_select_many(
    fitness: Sequence[float],
    rng: np.random.Generator,
    count: int,
    k: int = 3,
) -> np.ndarray:
    """``count`` independent tournament winners: ``(count,)`` indices.

    Ties go to the earliest-drawn contender, matching the scalar
    operator's strict-improvement scan.
    """
    n = len(fitness)
    if n == 0:
        raise ValueError("empty population")
    contenders = rng.integers(n, size=(count, min(k, n)))
    fvals = np.asarray(fitness)[contenders]
    return contenders[np.arange(count), np.argmax(fvals, axis=1)]


def weighted_average_crossover_many(
    parents_a: np.ndarray, parents_b: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Per-gene random-weighted average for a whole block of pairs."""
    r = rng.random(parents_a.shape)
    return r * parents_a + (1.0 - r) * parents_b


def gaussian_mutation_many(
    children: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    rng: np.random.Generator,
    rate: float = 0.2,
    scale: float = 0.1,
) -> np.ndarray:
    """Per-gene gaussian jitter over a ``(count, n_genes)`` block."""
    mask = rng.random(children.shape) < rate
    noise = rng.standard_normal(children.shape)
    span = np.where(upper > lower, upper - lower, 1.0)
    mutated = np.where(mask, children + noise * scale * span, children)
    return np.clip(mutated, lower, upper)
