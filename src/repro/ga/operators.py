"""GA variation and selection operators."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def weighted_average_crossover(
    parent_a: np.ndarray, parent_b: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Random-weighted average of two parents, per gene.

    The paper's crossover "calculates intermediate configurations within
    the bounds of the existing population (to enforce interpolation
    rather than extrapolation) by taking a random-weighted average
    between two points" (§3.7.2).  Each gene gets its own weight
    ``r ~ U(0,1)``: ``child_i = r_i * a_i + (1 - r_i) * b_i``.  (The
    paper's worked example divides the average by 2, which would shrink
    every child toward zero — we read that as a typo and keep the convex
    combination, which matches the stated interpolation intent.)
    """
    r = rng.random(parent_a.shape)
    return r * parent_a + (1.0 - r) * parent_b


def gaussian_mutation(
    genes: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    rng: np.random.Generator,
    rate: float = 0.2,
    scale: float = 0.1,
) -> np.ndarray:
    """Per-gene gaussian jitter, scaled to the gene's range.

    Keeps the search from collapsing once crossover has interpolated the
    population into a small hull; results are clipped to bounds.
    """
    mutated = genes.copy()
    mask = rng.random(genes.shape) < rate
    if np.any(mask):
        span = np.where(upper > lower, upper - lower, 1.0)
        mutated[mask] += rng.standard_normal(int(mask.sum())) * scale * span[mask]
    return np.clip(mutated, lower, upper)


def tournament_select(
    fitness: Sequence[float], rng: np.random.Generator, k: int = 3
) -> int:
    """Index of the best of ``k`` uniformly drawn individuals."""
    n = len(fitness)
    if n == 0:
        raise ValueError("empty population")
    contenders = rng.integers(n, size=min(k, n))
    best = int(contenders[0])
    for idx in contenders[1:]:
        if fitness[int(idx)] > fitness[best]:
            best = int(idx)
    return best
