"""Real-coded genetic algorithm for configuration search (paper §3.7.2).

The GA explores raw parameter space with the paper's operators: a
uniformly random initial population within bounds, random-weighted
average crossover (interpolation, never extrapolation), and a Deb-style
penalty that scores infeasible points (non-integer values for integer
parameters, out-of-bounds values) below feasible ones so evolution is
pulled back into the feasible region.
"""

from repro.ga.encoding import ConfigurationEncoder
from repro.ga.operators import (
    gaussian_mutation,
    tournament_select,
    weighted_average_crossover,
)
from repro.ga.constraints import feasibility_violation, penalized_fitness
from repro.ga.algorithm import GAResult, GeneticAlgorithm

__all__ = [
    "ConfigurationEncoder",
    "weighted_average_crossover",
    "gaussian_mutation",
    "tournament_select",
    "feasibility_violation",
    "penalized_fitness",
    "GAResult",
    "GeneticAlgorithm",
]
