"""Overload protection for one tenant: SLO tracking, breakers, bulkheads.

:class:`TenantGuard` is the per-tenant facade the session layer talks
to.  It composes:

* an :class:`~repro.middleware.slo.SloTracker` scoring every sealed
  window against the tenant's :class:`~repro.middleware.slo.SloSpec`
  and burning a rolling error budget (``guard.slo.*`` events);
* two :class:`~repro.middleware.breaker.CircuitBreaker` instances
  around the expensive per-tenant operations — surrogate **search** and
  config **push** — tripped by consecutive failures or (push) by error
  budget exhaustion (``guard.breaker.*`` events);
* **bulkhead budgets** capping search invocations and config pushes per
  rolling ``span`` windows (``guard.bulkhead.exhausted`` events), so one
  tenant cannot monopolize the shared search machinery or thrash its
  ring with rolling restarts.

A blocked operation is never an error: the session simply holds its
current configuration for the window — the safe landing the paper's
baseline guarantees.  All state is window-indexed, seeded by nothing,
and picklable with ``events=None``, so the sharded serve path carries
guards through worker processes bit-identically.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import GuardError
from repro.middleware.breaker import CircuitBreaker
from repro.middleware.slo import SloSpec, SloTracker

#: Keys a manifest ``[tenants.guard]`` stanza may set.
GUARD_STANZA_KEYS = frozenset(
    {
        "breaker_failures",
        "breaker_cooldown",
        "max_searches",
        "max_restarts",
        "span",
        "open_on_budget_exhausted",
    }
)


@dataclass(frozen=True)
class GuardSpec:
    """Breaker and bulkhead settings for one tenant.

    ``breaker_failures`` consecutive failed searches/pushes open the
    matching circuit; an open circuit holds for ``breaker_cooldown``
    windows, then admits one half-open probe.  ``max_searches`` /
    ``max_restarts`` cap the operations inside a rolling ``span``-window
    bulkhead (``None`` = uncapped).  ``open_on_budget_exhausted`` trips
    the push breaker when the tenant's SLO error budget burns out —
    a tenant that is already missing its objective should stop paying
    reconfiguration transients on top.
    """

    breaker_failures: int = 3
    breaker_cooldown: int = 4
    max_searches: Optional[int] = None
    max_restarts: Optional[int] = None
    span: int = 8
    open_on_budget_exhausted: bool = True

    def __post_init__(self):
        if self.breaker_failures < 1:
            raise GuardError(
                f"breaker_failures must be >= 1, got {self.breaker_failures!r}"
            )
        if self.breaker_cooldown < 1:
            raise GuardError(
                f"breaker_cooldown must be >= 1, got {self.breaker_cooldown!r}"
            )
        if self.span < 1:
            raise GuardError(f"span must be >= 1, got {self.span!r}")
        for name in ("max_searches", "max_restarts"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise GuardError(f"{name} must be >= 0, got {value!r}")

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "GuardSpec":
        """Build a spec from a manifest ``[guard]`` stanza (unknown keys rejected)."""
        bad = set(document) - GUARD_STANZA_KEYS
        if bad:
            raise GuardError(f"unknown [guard] key(s) {sorted(bad)}")
        return cls(**document)


class _Bulkhead:
    """Rolling-window invocation budget for one operation."""

    def __init__(self, name: str, limit: Optional[int], span: int):
        self.name = name
        self.limit = limit
        self.span = span
        self._uses: deque = deque()
        self.blocked = 0

    def used(self, window: int) -> int:
        while self._uses and self._uses[0] <= window - self.span:
            self._uses.popleft()
        return len(self._uses)

    def allow(self, window: int) -> bool:
        if self.limit is None:
            return True
        return self.used(window) < self.limit

    def record(self, window: int) -> None:
        self._uses.append(window)


class TenantGuard:
    """Per-tenant overload protection the session consults each phase."""

    def __init__(
        self,
        tenant_id: str,
        slo: Optional[SloSpec] = None,
        spec: Optional[GuardSpec] = None,
        events=None,
    ):
        self.tenant_id = tenant_id
        self.spec = spec or GuardSpec()
        self.slo = SloTracker(slo) if slo is not None else None
        self.events = events
        self.search_breaker = CircuitBreaker(
            "search",
            failure_threshold=self.spec.breaker_failures,
            cooldown_windows=self.spec.breaker_cooldown,
        )
        self.push_breaker = CircuitBreaker(
            "push",
            failure_threshold=self.spec.breaker_failures,
            cooldown_windows=self.spec.breaker_cooldown,
        )
        self._search_bulkhead = _Bulkhead(
            "search", self.spec.max_searches, self.spec.span
        )
        self._push_bulkhead = _Bulkhead(
            "push", self.spec.max_restarts, self.spec.span
        )

    # -- admission decisions the session asks for -------------------------------

    def allow_search(self, window: int) -> bool:
        """May this window run a surrogate search?"""
        return self._allow(self.search_breaker, self._search_bulkhead, window)

    def allow_push(self, window: int) -> bool:
        """May this window push (actuate) a configuration?"""
        return self._allow(self.push_breaker, self._push_bulkhead, window)

    def record_search(self, window: int, ok: bool) -> None:
        """Report an attempted search's outcome to breaker + bulkhead."""
        self._record(self.search_breaker, self._search_bulkhead, window, ok)

    def record_push(self, window: int, ok: bool) -> None:
        """Report an attempted push's outcome to breaker + bulkhead."""
        self._record(self.push_breaker, self._push_bulkhead, window, ok)

    def trip_push(self, window: int, reason: str) -> None:
        """Force the push breaker open (e.g. unrepaired config drift)."""
        change = self.push_breaker.force_open(window)
        self._breaker_event("push", change, window, reason=reason)

    def observe_window(self, event) -> None:
        """Score one sealed window against the SLO; react to the budget."""
        if self.slo is None:
            return
        if getattr(event, "quarantined", False):
            # The window ran on a mixed-config ring: its throughput says
            # nothing about the intended configuration, so it neither
            # burns nor recovers the SLO error budget.
            return
        violated, transition = self.slo.score(event)
        if violated:
            self._publish(
                "guard.slo.violation",
                f"window {event.window_index} missed the SLO "
                f"({event.mean_throughput:,.0f} ops/s, "
                f"floor {self.slo.spec.throughput_floor:,.0f})",
                window=event.window_index,
                observed=event.mean_throughput,
                floor=self.slo.spec.throughput_floor,
                budget_remaining=self.slo.budget_remaining,
                shed=bool(getattr(event, "shed", False)),
            )
        if transition == "budget_exhausted":
            self._publish(
                "guard.slo.budget_exhausted",
                f"error budget exhausted at window {event.window_index} "
                f"({self.slo.violations} violations in "
                f"{self.slo.windows_scored} windows)",
                window=event.window_index,
                budget_remaining=self.slo.budget_remaining,
            )
            if self.spec.open_on_budget_exhausted:
                change = self.push_breaker.force_open(event.window_index)
                self._breaker_event(
                    "push", change, event.window_index, reason="error-budget"
                )
        elif transition == "recovered":
            self._publish(
                "guard.slo.recovered",
                f"error budget recovered at window {event.window_index}",
                window=event.window_index,
                budget_remaining=self.slo.budget_remaining,
            )

    @property
    def budget_remaining(self) -> float:
        """SLO budget left; +inf for tenants without an SLO (no promise)."""
        if self.slo is None:
            return float("inf")
        return self.slo.budget_remaining

    # -- internals ---------------------------------------------------------------

    def _allow(
        self, breaker: CircuitBreaker, bulkhead: _Bulkhead, window: int
    ) -> bool:
        allowed, transition = breaker.allow(window)
        self._breaker_event(breaker.name, transition, window, reason="cooldown")
        if not allowed:
            self._publish(
                "guard.breaker.short_circuit",
                f"{breaker.name} circuit open (window {window}); "
                "holding the current configuration",
                op=breaker.name,
                window=window,
            )
            return False
        if not bulkhead.allow(window):
            bulkhead.blocked += 1
            self._publish(
                "guard.bulkhead.exhausted",
                f"{bulkhead.name} budget spent "
                f"({bulkhead.used(window)}/{bulkhead.limit} in "
                f"{bulkhead.span} windows); holding the current configuration",
                op=bulkhead.name,
                window=window,
                used=bulkhead.used(window),
                limit=bulkhead.limit,
                span=bulkhead.span,
            )
            return False
        return True

    def _record(
        self, breaker: CircuitBreaker, bulkhead: _Bulkhead, window: int, ok: bool
    ) -> None:
        bulkhead.record(window)
        change = (
            breaker.record_success(window) if ok else breaker.record_failure(window)
        )
        self._breaker_event(
            breaker.name, change, window, reason="probe" if ok else "failures"
        )

    def _breaker_event(
        self, op: str, transition: Optional[str], window: int, reason: str
    ) -> None:
        if transition is None:
            return
        self._publish(
            f"guard.breaker.{transition}",
            f"{op} circuit -> {transition.replace('_', '-')} "
            f"(window {window}, {reason})",
            op=op,
            window=window,
            reason=reason,
        )

    def _publish(self, topic: str, message: str, **payload) -> None:
        if self.events is not None:
            self.events.publish(topic, message, **payload)

    def __repr__(self) -> str:
        return (
            f"TenantGuard({self.tenant_id!r}, "
            f"search={self.search_breaker.state}, "
            f"push={self.push_breaker.state}, "
            f"slo={self.slo!r})"
        )
