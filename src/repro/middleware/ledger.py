"""Shared-cluster capacity ledger: admission control and load shedding.

The scheduler multiplexes N tenants over one modeled cluster.  Without
admission control, aggregate demand beyond the cluster's capacity means
*every* tenant silently degrades — the failure mode the paper's
middleware exists to prevent.  The ledger makes the capacity explicit:
each round, every active tenant's window is charged with its demand
estimate (its previous window's served throughput), and when the
aggregate exceeds ``capacity`` a deterministic priority shedder defers
whole tenant windows until the rest fit.

Shedding order is supplied by the scheduler (manifest ``priority=``
first, error-budget-remaining tiebreak, registration order last), so the
same fleet + seed always sheds the same tenants in the same rounds —
serial and sharded serve agree bitwise.

With ``shedding=False`` the ledger still models the overload: the round
returns a capacity factor < 1 and every admitted tenant's window is
scaled down proportionally — the "everyone silently degrades" baseline
the smoke test measures the guard layer against.
"""

from __future__ import annotations

from math import isfinite
from typing import Dict, List, Sequence, Tuple

from repro.errors import GuardError


class CapacityLedger:
    """Charges tenant windows against one modeled cluster capacity."""

    def __init__(self, capacity: float, shedding: bool = True):
        if not isfinite(capacity) or capacity <= 0:
            raise GuardError(
                f"cluster capacity must be a positive number, got {capacity!r}"
            )
        self.capacity = float(capacity)
        self.shedding = bool(shedding)
        self.rounds_planned = 0
        self.rounds_overloaded = 0
        self.charged: Dict[str, float] = {}      # tenant -> admitted demand sum
        self.shed_counts: Dict[str, int] = {}    # tenant -> windows shed

    def plan_round(
        self,
        demands: Dict[str, float],
        shed_order: Sequence[str],
    ) -> Tuple[List[str], float]:
        """Decide one round: who is shed, and the capacity factor.

        ``demands`` maps every active tenant to its demand estimate
        (ops/s); ``shed_order`` lists the same tenants most-sheddable
        first.  Returns ``(shed, factor)``: the tenants whose windows
        are deferred this round, and the throughput scale (1.0 when the
        admitted aggregate fits, ``capacity / aggregate`` when it does
        not — shedding disabled or zero-demand rounds that still
        overflow).
        """
        self.rounds_planned += 1
        total = float(sum(demands.values()))
        if total > self.capacity:
            self.rounds_overloaded += 1
        shed: List[str] = []
        if self.shedding and total > self.capacity:
            for tenant in shed_order:
                if total <= self.capacity:
                    break
                demand = demands[tenant]
                if demand <= 0.0:
                    continue  # shedding a zero-demand window frees nothing
                shed.append(tenant)
                total -= demand
        factor = 1.0
        if total > self.capacity:
            factor = self.capacity / total
        for tenant, demand in demands.items():
            if tenant in shed:
                self.shed_counts[tenant] = self.shed_counts.get(tenant, 0) + 1
            else:
                self.charged[tenant] = (
                    self.charged.get(tenant, 0.0) + demand * factor
                )
        return shed, factor

    def __repr__(self) -> str:
        return (
            f"CapacityLedger(capacity={self.capacity:,.0f} ops/s, "
            f"{self.rounds_overloaded}/{self.rounds_planned} rounds overloaded, "
            f"{sum(self.shed_counts.values())} windows shed)"
        )
