"""Session layer: one tenant's control loop as a state machine.

The monolithic ``OnlineController.run()`` window loop is decomposed here
into discrete, resumable phases::

    OBSERVE -> DECIDE -> ACTUATE -> RECONCILE -> EXECUTE -> CANARY -> RECORD

Each :meth:`TenantSession.step` drives exactly one workload window
through those phases (``advance_phase`` runs a single transition, so a
scheduler — or a debugger — can interleave and inspect sessions
mid-window).  The legacy controller's behaviours are preserved verbatim:
the :class:`~repro.core.controller.RetryPolicy` backoff for transient
search/push faults, degraded-mode fallback to the vendor default, and
the ratio-EWMA canary with uncertainty-widened rollback.  With
``restart_policy="instant"`` a session is bit-identical to the legacy
``OnlineController.run()`` on the same seed.

``restart_policy="rolling"`` replaces the flat reconfiguration penalty
with the adapter's rolling restart: each node leaves the serving set for
its restart window, so reconfiguration cost becomes modeled transient
capacity loss (visible as ``actuate.rolling_restart`` events) instead of
a constant.

All events publish on the session's bus — hand it a
``bus.scoped("tenant.3")`` view and every ``controller.*`` / ``fault.*``
/ ``actuate.*`` topic is namespaced per tenant without touching the
publish sites.

``guard=`` attaches a :class:`~repro.middleware.guard.TenantGuard`: the
DECIDE phase consults its search breaker/bulkhead before spending a
surrogate search, ACTUATE consults the push breaker/bulkhead before
actuating, and RECORD feeds the sealed window to the SLO tracker.  A
blocked operation holds the current configuration (never an error), and
canary *rollbacks* are deliberately never guard-gated — reverting a bad
push is the safety action.  ``guard=None`` (the default) leaves every
phase bit-identical to the unguarded loop.

``reconciler=`` attaches a
:class:`~repro.middleware.reconcile.DriftReconciler`: the RECONCILE
phase (after ACTUATE, before EXECUTE) reads back the per-node applied
configs, repairs partial pushes and stale recoveries within the repair
budget, and *quarantines* windows that ran under drift — the canary
EWMA and SLO tracker skip them.  Unrepairable drift degrades the window
and trips the push breaker.  ``reconciler=None`` (the default) skips
verification entirely — bit-identical to the blind-actuation loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.config.space import Configuration
from repro.core.controller import (
    CANARY_RATIO_ALPHA,
    ControllerEvent,
    ControllerRun,
    RetryPolicy,
)
from repro.core.policies import DecisionPolicy, WindowObservation
from repro.datastore.adapter import DatastoreAdapter, RollingRestartReport
from repro.datastore.base import Datastore
from repro.errors import SearchError, TransientError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.runtime.events import EventBus
from repro.workload.forecast import RRForecaster
from repro.workload.trace import DEFAULT_WINDOW_SECONDS

#: Phase order of one window, OBSERVE first.
SESSION_PHASES = (
    "observe", "decide", "actuate", "reconcile", "execute", "canary", "record"
)

#: How configuration pushes land on the datastore.
RESTART_POLICIES = ("instant", "rolling")


@dataclass
class WindowState:
    """Mutable scratchpad threaded through one window's phases."""

    index: int
    read_ratio: float
    capacity_factor: float = 1.0
    reconfigured: bool = False
    degraded: bool = False
    rolled_back: bool = False
    retry_lost: float = 0.0
    decision_rr: Optional[float] = None
    target: Optional[Configuration] = None
    rolling_report: Optional[RollingRestartReport] = None
    repair_report: Optional[RollingRestartReport] = None
    quarantined: bool = False
    drifted_nodes: Tuple[int, ...] = ()
    steps: List = field(default_factory=list)
    mean_throughput: float = 0.0
    event: Optional[ControllerEvent] = None


class TenantSession:
    """Observe -> decide -> actuate -> canary loop for one tenant."""

    def __init__(
        self,
        datastore: Datastore,
        rafiki,
        adapter: DatastoreAdapter,
        policy: DecisionPolicy,
        *,
        tenant_id: str = "tenant",
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        reconfiguration_penalty_s: float = 5.0,
        retry: Optional[RetryPolicy] = None,
        canary_margin: Optional[float] = None,
        canary_std_factor: float = 2.0,
        events: Optional[EventBus] = None,
        fault_plan: Optional[FaultPlan] = None,
        restart_policy: str = "instant",
        passive_forecaster: Optional[RRForecaster] = None,
        trace_phases: bool = False,
        guard=None,
        reconciler=None,
    ):
        if restart_policy not in RESTART_POLICIES:
            raise SearchError(
                f"unknown restart policy {restart_policy!r} "
                f"(expected one of {RESTART_POLICIES})"
            )
        if canary_margin is not None:
            if not (0.0 <= canary_margin < 1.0):
                raise SearchError("canary_margin must be in [0, 1)")
            if rafiki is not None and not hasattr(rafiki, "predicted_mean_std"):
                raise SearchError(
                    "canary guard needs a rafiki exposing predicted_mean_std"
                )
        if fault_plan is not None:
            # Validate against the tenant's actual ring size so a plan
            # targeting node 7 on a 3-node tenant fails here, not mid-run.
            fault_plan.validate(n_nodes=getattr(adapter, "n_nodes", None))
        self.datastore = datastore
        self.rafiki = rafiki
        self.adapter = adapter
        self.policy = policy
        self.tenant_id = tenant_id
        self.window_seconds = window_seconds
        self.reconfiguration_penalty_s = reconfiguration_penalty_s
        self.retry = retry or RetryPolicy()
        self.canary_margin = canary_margin
        self.canary_std_factor = canary_std_factor
        self.events = events or EventBus()
        self.fault_plan = fault_plan
        self.restart_policy = restart_policy
        self.passive_forecaster = passive_forecaster
        self.trace_phases = trace_phases
        # Optional overload protection (see repro.middleware.guard): SLO
        # tracking, search/push circuit breakers, bulkhead budgets.
        # guard=None keeps every phase bit-identical to the unguarded loop.
        self.guard = guard
        # Optional verified actuation (see repro.middleware.reconcile):
        # drift read-back, bounded repair, telemetry quarantine.
        # reconciler=None skips verification — the blind-actuation loop.
        self.reconciler = reconciler

        self.phase: str = "created"
        self.result = ControllerRun()
        self._injector: Optional[FaultInjector] = None
        self._window: Optional[WindowState] = None
        self._window_index = 0
        self._config: Optional[Configuration] = None
        self._default_config: Optional[Configuration] = None
        self._previous_rr: Optional[float] = None
        self._ratio_baseline: Optional[float] = None   # EWMA of observed/predicted
        self._pending_canary: Optional[Configuration] = None
        self._redecide = False    # last window degraded: don't trust "hold"

    # -- lifecycle -------------------------------------------------------------

    def start(self, load_keys: Optional[int] = None) -> "TenantSession":
        """Provision the tenant's datastore and reset per-run state."""
        self._default_config = self.datastore.default_configuration()
        self._config = self._default_config
        self.adapter.provision(load_keys=load_keys)
        self._injector = (
            FaultInjector(self.fault_plan, events=self.events)
            if self.fault_plan is not None and not self.fault_plan.is_empty
            else None
        )
        self.policy.reset()
        self.result = ControllerRun()
        self._window_index = 0
        self._previous_rr = None
        self._ratio_baseline = None
        self._pending_canary = None
        self._redecide = False
        self._set_phase("idle")
        return self

    def finish(self, teardown: bool = True) -> ControllerRun:
        """Close the session and return its :class:`ControllerRun`."""
        if teardown:
            self.adapter.teardown()
        self._set_phase("done")
        return self.result

    @property
    def windows_completed(self) -> int:
        return len(self.result.events)

    # -- one window ------------------------------------------------------------

    def step(
        self, read_ratio: float, capacity_factor: float = 1.0
    ) -> ControllerEvent:
        """Drive one window through every phase; returns its event.

        ``capacity_factor`` < 1 models shared-cluster overload (the
        scheduler's admission control could not shed enough demand):
        the window's served throughput scales down proportionally.
        """
        self.begin_window(read_ratio, capacity_factor=capacity_factor)
        while self._window is not None:
            self.advance_phase()
        return self.result.events[-1]

    def begin_window(
        self, read_ratio: float, capacity_factor: float = 1.0
    ) -> WindowState:
        """Open a window; phases then advance one at a time."""
        if self.phase == "created":
            raise SearchError("session not started (call start() first)")
        if self._window is not None:
            raise SearchError(
                f"window {self._window.index} still in phase {self.phase!r}"
            )
        if not (0.0 < capacity_factor <= 1.0):
            raise SearchError(
                f"capacity_factor must be in (0, 1], got {capacity_factor!r}"
            )
        self._window = WindowState(
            index=self._window_index,
            read_ratio=float(np.clip(read_ratio, 0.0, 1.0)),
            capacity_factor=float(capacity_factor),
        )
        self._set_phase("observe")
        return self._window

    def record_shed_window(self, read_ratio: float) -> ControllerEvent:
        """Seal one *shed* window: admission control deferred the tenant.

        The workload happened — the middleware just refused to serve it
        this round — so the policy/forecaster still observe the window's
        read ratio, but no phase runs, nothing is served, and the sealed
        event carries ``shed=True`` with zero throughput.  Shed windows
        burn the tenant's own SLO error budget, which deprioritizes it
        for the *next* shed decision (shedding rotates across peers).
        """
        if self.phase == "created":
            raise SearchError("session not started (call start() first)")
        if self._window is not None:
            raise SearchError(
                f"window {self._window.index} still in phase {self.phase!r}"
            )
        rr = float(np.clip(read_ratio, 0.0, 1.0))
        self.policy.observe(rr)
        if self.passive_forecaster is not None:
            self.passive_forecaster.update(rr)
        self._previous_rr = rr
        event = ControllerEvent(
            window_index=self._window_index,
            read_ratio=rr,
            reconfigured=False,
            configuration=self._config,
            mean_throughput=0.0,
            shed=True,
        )
        self.result.events.append(event)
        self._window_index += 1
        if self.guard is not None:
            self.guard.observe_window(event)
        return event

    def advance_phase(self) -> str:
        """Execute the current phase; returns the next phase's name."""
        if self._window is None:
            raise SearchError("no open window (call begin_window first)")
        handler = getattr(self, f"_phase_{self.phase}")
        handler(self._window)
        if self.phase == "record":
            self._window = None
            self._set_phase("idle")
        else:
            i = SESSION_PHASES.index(self.phase)
            self._set_phase(SESSION_PHASES[i + 1])
        return self.phase

    # -- phases ----------------------------------------------------------------

    def _phase_observe(self, ws: WindowState) -> None:
        """Land this window's scheduled node/disk faults."""
        if self._injector is not None:
            self._injector.begin_window(ws.index, cluster=self.adapter.cluster)

    def _phase_decide(self, ws: WindowState) -> None:
        """Ask the policy, then search for the window's target config."""
        if self.rafiki is None:
            return
        decision_rr = self.policy.decide(
            WindowObservation(
                index=ws.index,
                read_ratio=ws.read_ratio,
                previous_read_ratio=self._previous_rr,
            )
        )
        if decision_rr is None and self._redecide:
            # The previous window ended on a fallback config the policy
            # believes was the intended one; hysteresis would hold
            # forever.  Re-decide from the observed RR until a window
            # completes healthy again.
            decision_rr = ws.read_ratio
        ws.decision_rr = decision_rr
        if decision_rr is None:
            return
        if self.guard is not None and not self.guard.allow_search(ws.index):
            # Circuit open or search bulkhead spent: hold the current
            # configuration instead of retry-storming the surrogate.
            ws.decision_rr = None
            return
        target, lost, degraded = self._decide_target(ws.index, decision_rr)
        if self.guard is not None:
            self.guard.record_search(ws.index, ok=not degraded)
        ws.retry_lost += lost
        ws.degraded = degraded
        ws.target = target

    def _phase_actuate(self, ws: WindowState) -> None:
        """Push the target configuration, instantly or rolling."""
        target = ws.target
        if target is None or target == self._config:
            return
        if self.guard is not None and not self.guard.allow_push(ws.index):
            # Actuation circuit open (failures or exhausted error budget)
            # or restart bulkhead spent: keep serving on the current
            # configuration.  Unlike a failed push this is not a degraded
            # window — the guard chose not to try.
            return
        pushed, lost = self._push(ws, target)
        if self.guard is not None:
            self.guard.record_push(ws.index, ok=pushed)
        ws.retry_lost += lost
        if pushed:
            canary_on = self.canary_margin is not None and self.rafiki is not None
            if canary_on and not ws.degraded:
                self._pending_canary = self._config
            self._config = target
            ws.reconfigured = True
        else:
            ws.degraded = True
            self._publish(
                "controller.degraded",
                f"config push failed (window {ws.index}); "
                "keeping the current configuration",
                reason="push",
                window=ws.index,
            )

    def _phase_reconcile(self, ws: WindowState) -> None:
        """Verify what the push actually applied; repair or quarantine."""
        if self.reconciler is None:
            return
        outcome = self.reconciler.reconcile(
            ws.index,
            self.adapter,
            ws.read_ratio,
            rolling=(self.restart_policy == "rolling"),
        )
        if not outcome.drift_detected:
            return
        ws.quarantined = outcome.quarantined
        ws.drifted_nodes = outcome.drifted_nodes
        ws.repair_report = outcome.repair_report
        if outcome.escalated:
            # Unrepairable drift: the ring is serving unverified knobs.
            # Degrade the window and stop layering new pushes on top.
            ws.degraded = True
            self._publish(
                "controller.degraded",
                f"config drift unrepaired (window {ws.index}); "
                "entering degraded mode",
                reason="drift",
                window=ws.index,
            )
            if self.guard is not None:
                self.guard.trip_push(ws.index, reason="drift")

    def _phase_execute(self, ws: WindowState) -> None:
        """Serve the window; downtime and backoff charge against it."""
        self.policy.observe(ws.read_ratio)
        if self.passive_forecaster is not None:
            self.passive_forecaster.update(ws.read_ratio)
        self._previous_rr = ws.read_ratio

        duration = self.window_seconds
        reports = [
            r for r in (ws.rolling_report, ws.repair_report) if r is not None
        ]
        if not reports:
            # Proactive (forecast-driven) reconfiguration happens at the
            # window boundary, overlapping idle time; reactive/oracle
            # reconfiguration eats into the window.  Retry backoff is
            # always in-window lost time.
            lost = (
                0.0
                if (self.policy.proactive or not ws.reconfigured)
                else self.reconfiguration_penalty_s
            )
            lost = min(lost + ws.retry_lost, duration)
            ws.steps = self.adapter.run(ws.read_ratio, duration - lost, dt=1.0)
        else:
            # The rolling restart (and any drift repair) already consumed
            # part of the window — their steps served real, reduced
            # throughput; no flat penalty on top — the restart IS the
            # reconfiguration cost.
            consumed = min(sum(r.duration_s for r in reports), duration)
            lost = min(ws.retry_lost, duration - consumed)
            remaining = duration - consumed - lost
            ws.steps = [s for r in reports for s in r.steps]
            if remaining >= 1.0:
                ws.steps += self.adapter.run(ws.read_ratio, remaining, dt=1.0)
        window_ops = sum(s.throughput * s.dt for s in ws.steps)
        ws.mean_throughput = window_ops / duration
        if ws.capacity_factor != 1.0:
            # Shared-cluster overload the scheduler could not shed away:
            # this tenant's share of the round scales down with everyone
            # else's (kept off the ``== 1.0`` fast path so unguarded runs
            # stay bit-identical).
            ws.mean_throughput *= ws.capacity_factor

    def _phase_canary(self, ws: WindowState) -> None:
        """Judge a canaried push against the surrogate's promise."""
        if self.canary_margin is None or self.rafiki is None:
            return
        if ws.quarantined:
            # Mixed-config throughput is not evidence about the intended
            # configuration: don't judge the canary or fold this window
            # into the ratio baseline.  A pending canary stays pending
            # and is judged on the next clean window.
            return
        ws.rolled_back = self._canary_check(ws)

    def _phase_record(self, ws: WindowState) -> None:
        """Seal the window into the run summary."""
        self._redecide = ws.degraded
        ws.event = ControllerEvent(
            window_index=ws.index,
            read_ratio=ws.read_ratio,
            reconfigured=ws.reconfigured,
            configuration=self._config,
            # Downtime counts against the window's mean.
            mean_throughput=ws.mean_throughput,
            rolled_back=ws.rolled_back,
            degraded=ws.degraded,
            quarantined=ws.quarantined,
        )
        self.result.events.append(ws.event)
        self._window_index += 1
        if self.guard is not None:
            self.guard.observe_window(ws.event)

    # -- resilient operations (ported verbatim from OnlineController) ----------

    def _publish(self, topic: str, message: str, **payload) -> None:
        self.events.publish(topic, message, **payload)

    def _set_phase(self, phase: str) -> None:
        self.phase = phase
        if self.trace_phases:
            window = self._window.index if self._window is not None else None
            self._publish(
                "session.phase", f"-> {phase}", phase=phase, window=window
            )

    def _attempt(
        self, kind: str, window: int, fn: Callable[[], object]
    ) -> Tuple[bool, object, float]:
        """Run ``fn`` under the retry policy.

        Returns ``(ok, result, lost_seconds)`` where ``lost_seconds`` is
        the simulated backoff spent on retries.  Only
        :class:`TransientError` is retried; anything else escapes.
        """
        lost = 0.0
        backoff = self.retry.backoff_s
        for attempt in range(1, self.retry.max_attempts + 1):
            try:
                return True, fn(), lost
            except TransientError:
                out_of_budget = (
                    attempt >= self.retry.max_attempts
                    or lost + backoff > self.retry.deadline_s
                )
                if out_of_budget:
                    return False, None, lost
                self._publish(
                    "controller.retry",
                    f"{kind} failed (window {window}, attempt {attempt}); "
                    f"retrying after {backoff:.1f}s",
                    kind=kind,
                    window=window,
                    attempt=attempt,
                    backoff_s=backoff,
                )
                lost += backoff
                backoff *= self.retry.backoff_factor
        return False, None, lost  # pragma: no cover - loop always returns

    def _decide_target(
        self, window: int, decision_rr: float
    ) -> Tuple[Optional[Configuration], float, bool]:
        """Search for the window's target config, surviving search faults.

        Returns ``(target, lost_seconds, degraded)``; a ``None`` target
        means "hold the current configuration".  A permanently failing
        search degrades to the vendor default — the paper's baseline is
        always a safe landing spot.
        """

        def do_search():
            if self._injector is not None:
                self._injector.check("search", window)
            return self.rafiki.recommend(decision_rr)

        ok, result, lost = self._attempt("search", window, do_search)
        if ok:
            return result.configuration, lost, False
        self._publish(
            "controller.degraded",
            f"search unavailable (window {window}); "
            "falling back to the default configuration",
            reason="search",
            window=window,
        )
        return self._default_config, lost, True

    def _push(self, ws: WindowState, target: Configuration) -> Tuple[bool, float]:
        """Push a configuration under the retry policy.

        ``restart_policy="rolling"`` routes the push through the
        adapter's rolling restart, recording the transient on the window
        state; ``"instant"`` keeps the legacy teleport semantics (the
        flat reconfiguration penalty is charged in EXECUTE).
        """

        def do_push():
            if self._injector is not None:
                self._injector.check("push", ws.index)
            if self.restart_policy == "rolling":
                ws.rolling_report = self.adapter.rolling_restart(
                    target, ws.read_ratio
                )
            else:
                self.adapter.apply_config(target)
            return True

        ok, _, lost = self._attempt("push", ws.index, do_push)
        return ok, lost

    def _revert_push(self, window: int, target: Configuration) -> bool:
        """Emergency revert at the window boundary.

        Always an instant apply, even under a rolling restart policy: a
        failing canary means the fleet is underperforming *now*, so the
        rollback must not spend another rolling transient.
        """

        def do_push():
            if self._injector is not None:
                self._injector.check("push", window)
            self.adapter.apply_config(target)
            return True

        ok, _, _ = self._attempt("push", window, do_push)
        return ok

    def _canary_check(self, ws: WindowState) -> bool:
        """The ratio-EWMA rollback guard (see OnlineController docs).

        Unit-free: tracks the EWMA of the observed/predicted throughput
        ratio (which absorbs the single-server-surrogate vs n-node-
        cluster scale factor) and rolls back when a canary window's
        ratio undershoots that baseline by more than ``canary_margin``
        plus ``canary_std_factor`` times the ensemble's relative spread.
        """
        mean_pred, std_pred = self.rafiki.predicted_mean_std(
            ws.read_ratio, self._config
        )
        if mean_pred <= 0.0:
            self._pending_canary = None
            return False
        ratio = ws.mean_throughput / mean_pred
        if self._pending_canary is None:
            self._ratio_baseline = (
                ratio
                if self._ratio_baseline is None
                else CANARY_RATIO_ALPHA * ratio
                + (1.0 - CANARY_RATIO_ALPHA) * self._ratio_baseline
            )
            return False
        if self._ratio_baseline is None:
            # A push in the very first window has nothing to compare
            # against; accept it as the baseline.
            self._ratio_baseline = ratio
            self._pending_canary = None
            return False
        tolerance = self.canary_margin + self.canary_std_factor * (
            std_pred / mean_pred
        )
        allowed = self._ratio_baseline * max(0.0, 1.0 - tolerance)
        if ratio >= allowed:
            # Canary passed: fold the window into the baseline.
            self._ratio_baseline = (
                CANARY_RATIO_ALPHA * ratio
                + (1.0 - CANARY_RATIO_ALPHA) * self._ratio_baseline
            )
            self._pending_canary = None
            return False
        # Canary failed: restore the previous configuration.  The revert
        # happens at the window boundary (no penalty charged); the
        # undershooting window is excluded from the baseline.
        self._publish(
            "controller.rollback",
            f"canary undershot prediction (window {ws.index}): "
            f"observed/predicted {ratio:.2f} < allowed {allowed:.2f}",
            window=ws.index,
            observed=ws.mean_throughput,
            predicted=mean_pred,
            ratio=ratio,
            allowed=allowed,
            baseline=self._ratio_baseline,
        )
        revert_to = self._pending_canary
        self._pending_canary = None
        if self._revert_push(ws.index, revert_to):
            self._config = revert_to
        else:
            self._publish(
                "controller.degraded",
                f"rollback push failed (window {ws.index}); "
                "keeping the canaried configuration",
                reason="rollback-push",
                window=ws.index,
            )
        return True

    def __repr__(self) -> str:
        return (
            f"TenantSession({self.tenant_id!r}, phase={self.phase!r}, "
            f"windows={self.windows_completed})"
        )
