"""Closed -> open -> half-open circuit breakers for per-tenant operations.

The two expensive / failure-prone per-tenant operations — the surrogate
search and the config actuation push — each sit behind one of these.
Consecutive failures trip the circuit *open*: further calls are
short-circuited (the session holds its current configuration instead of
retry-storming a dead dependency).  After ``cooldown_windows`` window
rounds the circuit goes *half-open* and admits exactly one probe; a
successful probe closes it, a failed probe re-opens it for another
cooldown.

The breaker is window-indexed, not wall-clock-indexed, so the state
machine is fully deterministic: the same window/outcome sequence always
walks the same transitions.  It publishes nothing itself; the owning
:class:`~repro.middleware.guard.TenantGuard` maps the transition labels
returned here onto ``guard.breaker.*`` events.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import GuardError

#: Breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """Deterministic, window-indexed circuit breaker for one operation."""

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        cooldown_windows: int = 4,
    ):
        if failure_threshold < 1:
            raise GuardError(
                f"failure_threshold must be >= 1, got {failure_threshold!r}"
            )
        if cooldown_windows < 1:
            raise GuardError(
                f"cooldown_windows must be >= 1, got {cooldown_windows!r}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_windows = cooldown_windows
        self.state = CLOSED
        self.opened_count = 0
        self.short_circuits = 0
        self._consecutive_failures = 0
        self._opened_at: Optional[int] = None

    def allow(self, window: int) -> Tuple[bool, Optional[str]]:
        """May the operation run in this window?

        Returns ``(allowed, transition)``; ``transition`` is
        ``"half_open"`` when the cooldown just elapsed and this call
        admits the probe.
        """
        if self.state == CLOSED:
            return True, None
        if self.state == OPEN:
            if window - self._opened_at >= self.cooldown_windows:
                self.state = HALF_OPEN
                return True, "half_open"
            self.short_circuits += 1
            return False, None
        return True, None  # HALF_OPEN: the probe window

    def record_success(self, window: int) -> Optional[str]:
        """Report a successful call; closes a half-open circuit."""
        self._consecutive_failures = 0
        if self.state == HALF_OPEN:
            self.state = CLOSED
            self._opened_at = None
            return "close"
        return None

    def record_failure(self, window: int) -> Optional[str]:
        """Report a failed call; may trip the circuit open."""
        self._consecutive_failures += 1
        if self.state == HALF_OPEN:
            return self._open(window)
        if self.state == CLOSED and (
            self._consecutive_failures >= self.failure_threshold
        ):
            return self._open(window)
        return None

    def force_open(self, window: int) -> Optional[str]:
        """Trip the circuit from an external signal (e.g. error budget)."""
        if self.state == OPEN:
            return None
        return self._open(window)

    def _open(self, window: int) -> str:
        self.state = OPEN
        self.opened_count += 1
        self._opened_at = window
        self._consecutive_failures = 0
        return "open"

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self.state!r}, "
            f"opens={self.opened_count})"
        )
