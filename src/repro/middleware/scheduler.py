"""Scheduler layer: multiplex N tenant sessions on one simulated clock.

Rafiki pays off when the tuning loop is decoupled from per-instance
execution so models amortize across workloads (the Tuneful/WATER
observation): here one shared surrogate — and its
:class:`~repro.core.cache.RecommendationCache` — serves every tenant,
so a regime one tenant has already searched is a cache hit for all of
them.

Interleaving is deterministic by construction: tenants run in
registration order, window by window, on a shared
:class:`~repro.sim.clock.SimClock`.  The same seed and the same tenant
set (in the same order) therefore produce the identical event sequence
— the property the hypothesis tests in
``tests/test_middleware_scheduler.py`` pin down.

Every tenant's events are namespaced (``tenant.<id>.controller.*``,
``tenant.<id>.fault.*``, ``tenant.<id>.actuate.*``) via
``bus.scoped()``; the scheduler itself publishes ``scheduler.start`` /
``scheduler.window`` / ``scheduler.done``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.core.controller import ControllerRun, RetryPolicy
from repro.core.policies import DecisionPolicy, HysteresisPolicy, OraclePolicy
from repro.datastore.adapter import (
    RESTART_SECONDS_PER_NODE,
    SimulatedDatastoreAdapter,
)
from repro.datastore.base import Datastore
from repro.errors import SearchError
from repro.faults.plan import FaultPlan
from repro.middleware.session import TenantSession
from repro.runtime.events import EventBus
from repro.sim.clock import SimClock
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import DEFAULT_WINDOW_SECONDS


def _default_policy() -> DecisionPolicy:
    return HysteresisPolicy(OraclePolicy(), min_change=0.08)


@dataclass
class TenantSpec:
    """Everything the scheduler needs to host one tenant."""

    tenant_id: str
    rr_series: Sequence[float]
    base_workload: WorkloadSpec
    policy: DecisionPolicy = field(default_factory=_default_policy)
    use_rafiki: bool = True            # False = static-default baseline tenant
    n_nodes: int = 1
    replication_factor: int = 1
    seed: int = 0
    window_seconds: float = DEFAULT_WINDOW_SECONDS
    reconfiguration_penalty_s: float = 5.0
    retry: Optional[RetryPolicy] = None
    canary_margin: Optional[float] = None
    canary_std_factor: float = 2.0
    fault_plan: Optional[FaultPlan] = None
    restart_policy: str = "instant"
    restart_seconds_per_node: float = RESTART_SECONDS_PER_NODE
    load: bool = True
    trace_phases: bool = False

    def __post_init__(self):
        if not self.tenant_id or self.tenant_id != self.tenant_id.strip():
            raise SearchError(f"invalid tenant id {self.tenant_id!r}")
        if len(self.rr_series) == 0:
            raise SearchError(f"tenant {self.tenant_id!r} has an empty RR series")
        if self.n_nodes < 1:
            raise SearchError("n_nodes must be >= 1")
        if self.fault_plan is not None:
            self.fault_plan.validate()
            if self.fault_plan.max_node >= self.n_nodes:
                raise SearchError(
                    f"fault plan targets node {self.fault_plan.max_node} but "
                    f"tenant {self.tenant_id!r} runs {self.n_nodes} node(s)"
                )
            if self.n_nodes == 1 and (
                self.fault_plan.node_crashes or self.fault_plan.disk_slowdowns
            ):
                raise SearchError(
                    "node crash/slowdown faults need a multi-node cluster "
                    "(n_nodes >= 2); a single server only takes "
                    "control-plane faults"
                )


class MiddlewareScheduler:
    """Runs many tenant sessions in deterministic lockstep."""

    def __init__(
        self,
        datastore: Datastore,
        rafiki=None,
        *,
        events: Optional[EventBus] = None,
        clock: Optional[SimClock] = None,
    ):
        self.datastore = datastore
        self.rafiki = rafiki
        self.events = events or EventBus()
        self.clock = clock or SimClock()
        self._tenants: Dict[str, tuple] = {}   # id -> (spec, session); ordered

    @property
    def tenant_ids(self) -> list:
        return list(self._tenants)

    def session(self, tenant_id: str) -> TenantSession:
        return self._tenants[tenant_id][1]

    def add_tenant(self, spec: TenantSpec) -> TenantSession:
        """Register a tenant; order of registration is execution order."""
        if spec.tenant_id in self._tenants:
            raise SearchError(f"duplicate tenant id {spec.tenant_id!r}")
        if spec.use_rafiki and self.rafiki is None:
            raise SearchError(
                f"tenant {spec.tenant_id!r} wants tuning but the scheduler "
                "has no shared rafiki"
            )
        scoped = self.events.scoped(f"tenant.{spec.tenant_id}")
        adapter = SimulatedDatastoreAdapter(
            self.datastore,
            n_nodes=spec.n_nodes,
            replication_factor=spec.replication_factor,
            profile=spec.base_workload.to_profile(),
            seed=spec.seed,
            restart_seconds_per_node=spec.restart_seconds_per_node,
            events=scoped,
        )
        session = TenantSession(
            self.datastore,
            self.rafiki if spec.use_rafiki else None,
            adapter,
            spec.policy,
            tenant_id=spec.tenant_id,
            window_seconds=spec.window_seconds,
            reconfiguration_penalty_s=spec.reconfiguration_penalty_s,
            retry=spec.retry,
            canary_margin=spec.canary_margin,
            canary_std_factor=spec.canary_std_factor,
            events=scoped,
            fault_plan=spec.fault_plan,
            restart_policy=spec.restart_policy,
            trace_phases=spec.trace_phases,
        )
        self._tenants[spec.tenant_id] = (spec, session)
        return session

    def run(self) -> Dict[str, ControllerRun]:
        """Drive every tenant to the end of its series, in lockstep.

        Window *w* of every tenant completes before window *w+1* of any
        tenant starts; within a window round, tenants execute in
        registration order.  The shared clock advances by the longest
        active window each round.
        """
        if not self._tenants:
            raise SearchError("scheduler has no tenants")
        for spec, session in self._tenants.values():
            session.start(
                load_keys=spec.base_workload.n_keys if spec.load else None
            )
        horizon = max(len(spec.rr_series) for spec, _ in self._tenants.values())
        self.events.publish(
            "scheduler.start",
            f"{len(self._tenants)} tenant(s), {horizon} window round(s)",
            tenants=list(self._tenants),
            windows=horizon,
        )
        for w in range(horizon):
            active = []
            round_seconds = 0.0
            for tenant_id, (spec, session) in self._tenants.items():
                if w < len(spec.rr_series):
                    session.step(spec.rr_series[w])
                    active.append(tenant_id)
                    round_seconds = max(round_seconds, spec.window_seconds)
            self.clock.advance(round_seconds)
            self.events.publish(
                "scheduler.window",
                f"window round {w} ({len(active)} active)",
                window=w,
                t=self.clock.now,
                active_tenants=active,
            )
        results = {
            tenant_id: session.finish()
            for tenant_id, (_, session) in self._tenants.items()
        }
        self.events.publish(
            "scheduler.done",
            f"campaign complete at t={self.clock.now:.0f}s",
            t=self.clock.now,
            tenants=list(results),
        )
        return results

    def __repr__(self) -> str:
        return (
            f"MiddlewareScheduler({self.datastore.name}, "
            f"tenants={list(self._tenants)})"
        )
