"""Scheduler layer: multiplex N tenant sessions on one simulated clock.

Rafiki pays off when the tuning loop is decoupled from per-instance
execution so models amortize across workloads (the Tuneful/WATER
observation): here one shared surrogate — and its
:class:`~repro.core.cache.RecommendationCache` — serves every tenant,
so a regime one tenant has already searched is a cache hit for all of
them.

Interleaving is deterministic by construction: tenants run in
registration order, window by window, on a shared
:class:`~repro.sim.clock.SimClock`.  The same seed and the same tenant
set (in the same order) therefore produce the identical event sequence
— the property the hypothesis tests in
``tests/test_middleware_scheduler.py`` pin down.

Every tenant's events are namespaced (``tenant.<id>.controller.*``,
``tenant.<id>.fault.*``, ``tenant.<id>.actuate.*``) via
``bus.scoped()``; the scheduler itself publishes ``scheduler.start`` /
``scheduler.window`` / ``scheduler.done``.

**Sharded serve.**  Within one window round, tenant sessions are
independent except for the shared rafiki (surrogate + recommendation
cache) and the shared bus.  ``backend=`` / ``workers=`` fan each round
out across :class:`~repro.runtime.backend.ProcessPoolBackend` workers:
every worker steps one session against a *copy* of the round-start
rafiki state and journals its externally visible effects (published
events and ``recommend()`` calls); the parent then, in registration
order, merges the journals back — replaying events on the shared bus
and folding fresh search results into the shared cache (burning the
same named seed stream a serial search would have consumed).  Because
the GA search is deterministic given the round-start seed stream,
two tenants racing the same regime in one round compute the *same*
result the serial run's cache hit would have returned, so sharded runs
are bit-identical to serial (see ``tests/test_sharded_scheduler.py``).
Caveats: the guarantee assumes the rafiki's own event bus is unset
(worker copies cannot replay mid-search progress events) and that the
recommendation cache does not evict within a single round.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cache import RecommendationCache
from repro.core.controller import ControllerRun, RetryPolicy
from repro.core.policies import DecisionPolicy, HysteresisPolicy, OraclePolicy
from repro.datastore.adapter import (
    RESTART_SECONDS_PER_NODE,
    SimulatedDatastoreAdapter,
)
from repro.datastore.base import Datastore
from repro.errors import SearchError
from repro.faults.plan import FaultPlan
from repro.middleware.session import TenantSession
from repro.runtime.backend import ExecutionBackend, resolve_backend
from repro.runtime.events import EventBus
from repro.sim.clock import SimClock
from repro.sim.rng import SeedSequence
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import DEFAULT_WINDOW_SECONDS


def _default_policy() -> DecisionPolicy:
    return HysteresisPolicy(OraclePolicy(), min_change=0.08)


class _RecordingBus(EventBus):
    """Worker-side bus: journals every publish for parent-side replay."""

    def __init__(self):
        super().__init__()
        self.records: List[Tuple[str, str, dict]] = []

    def publish(self, topic: str, message: str = "", **payload):
        self.records.append((topic, message, payload))
        return super().publish(topic, message, **payload)


class _RecordingRafiki:
    """Worker-side proxy over a rafiki copy, journaling ``recommend()``.

    The journal carries ``(read_ratio, result)`` pairs; the parent
    replays them against the shared rafiki so its cache/seed state
    evolves exactly as a serial round's would.
    """

    def __init__(self, inner, records: List[tuple]):
        self._inner = inner
        self._records = records

    def recommend(self, read_ratio, use_cache: bool = True):
        result = self._inner.recommend(read_ratio, use_cache=use_cache)
        self._records.append((float(read_ratio), result))
        return result

    def predicted_throughput(self, read_ratio, config):
        return self._inner.predicted_throughput(read_ratio, config)

    def predicted_mean_std(self, read_ratio, config):
        return self._inner.predicted_mean_std(read_ratio, config)


def _attach_session_bus(session: TenantSession, bus) -> None:
    """Point every bus reference a session's step() publishes on at ``bus``."""
    session.events = bus
    session.adapter.events = bus
    if session._injector is not None:
        session._injector.events = bus


def _shard_window_worker(task):
    """Run one tenant's window in a worker process.

    The session arrives with its bus references stripped (they hold
    parent-side subscriber callables that must not travel); a recording
    bus takes their place so the step's event stream can be replayed in
    the parent.  Returns ``(session, event_records, search_records)``
    with the buses stripped again for the trip home.
    """
    tenant_id, read_ratio, session, rafiki_blob = task
    recorder = _RecordingBus()
    _attach_session_bus(session, recorder.scoped(f"tenant.{tenant_id}"))
    searches: List[tuple] = []
    if rafiki_blob is not None:
        session.rafiki = _RecordingRafiki(pickle.loads(rafiki_blob), searches)
    try:
        session.step(read_ratio)
    finally:
        _attach_session_bus(session, None)
        session.rafiki = None
    return session, recorder.records, searches


@dataclass
class TenantSpec:
    """Everything the scheduler needs to host one tenant."""

    tenant_id: str
    rr_series: Sequence[float]
    base_workload: WorkloadSpec
    policy: DecisionPolicy = field(default_factory=_default_policy)
    use_rafiki: bool = True            # False = static-default baseline tenant
    n_nodes: int = 1
    replication_factor: int = 1
    seed: int = 0
    window_seconds: float = DEFAULT_WINDOW_SECONDS
    reconfiguration_penalty_s: float = 5.0
    retry: Optional[RetryPolicy] = None
    canary_margin: Optional[float] = None
    canary_std_factor: float = 2.0
    fault_plan: Optional[FaultPlan] = None
    restart_policy: str = "instant"
    restart_seconds_per_node: float = RESTART_SECONDS_PER_NODE
    load: bool = True
    trace_phases: bool = False
    execution: str = "analytic"    # "analytic" | "engine" (materialized LSM)

    def __post_init__(self):
        if not self.tenant_id or self.tenant_id != self.tenant_id.strip():
            raise SearchError(f"invalid tenant id {self.tenant_id!r}")
        if len(self.rr_series) == 0:
            raise SearchError(f"tenant {self.tenant_id!r} has an empty RR series")
        if self.n_nodes < 1:
            raise SearchError("n_nodes must be >= 1")
        if self.execution == "engine" and self.n_nodes != 1:
            raise SearchError(
                f"tenant {self.tenant_id!r}: engine execution is single-node"
            )
        if self.fault_plan is not None:
            self.fault_plan.validate()
            if self.fault_plan.max_node >= self.n_nodes:
                raise SearchError(
                    f"fault plan targets node {self.fault_plan.max_node} but "
                    f"tenant {self.tenant_id!r} runs {self.n_nodes} node(s)"
                )
            if self.n_nodes == 1 and (
                self.fault_plan.node_crashes or self.fault_plan.disk_slowdowns
            ):
                raise SearchError(
                    "node crash/slowdown faults need a multi-node cluster "
                    "(n_nodes >= 2); a single server only takes "
                    "control-plane faults"
                )


class MiddlewareScheduler:
    """Runs many tenant sessions in deterministic lockstep."""

    def __init__(
        self,
        datastore: Datastore,
        rafiki=None,
        *,
        events: Optional[EventBus] = None,
        clock: Optional[SimClock] = None,
        backend: Optional[ExecutionBackend] = None,
        workers: Optional[int] = None,
    ):
        self.datastore = datastore
        self.rafiki = rafiki
        self.events = events or EventBus()
        self.clock = clock or SimClock()
        # backend=None and workers in (None, 1) keep the legacy in-process
        # serial loop; an explicit backend (even SerialBackend, useful for
        # exercising the shard protocol without processes) or workers > 1
        # routes every round through the sharded path.
        if backend is not None:
            self.backend = backend
        elif workers is not None and workers > 1:
            self.backend = resolve_backend(workers=workers)
        else:
            self.backend = None
        self._tenants: Dict[str, tuple] = {}   # id -> (spec, session); ordered

    @property
    def tenant_ids(self) -> list:
        return list(self._tenants)

    def session(self, tenant_id: str) -> TenantSession:
        return self._tenants[tenant_id][1]

    def add_tenant(self, spec: TenantSpec) -> TenantSession:
        """Register a tenant; order of registration is execution order."""
        if spec.tenant_id in self._tenants:
            raise SearchError(f"duplicate tenant id {spec.tenant_id!r}")
        if spec.use_rafiki and self.rafiki is None:
            raise SearchError(
                f"tenant {spec.tenant_id!r} wants tuning but the scheduler "
                "has no shared rafiki"
            )
        scoped = self.events.scoped(f"tenant.{spec.tenant_id}")
        adapter = SimulatedDatastoreAdapter(
            self.datastore,
            n_nodes=spec.n_nodes,
            replication_factor=spec.replication_factor,
            profile=spec.base_workload.to_profile(),
            seed=spec.seed,
            restart_seconds_per_node=spec.restart_seconds_per_node,
            events=scoped,
            execution=spec.execution,
            workload=spec.base_workload,
        )
        session = TenantSession(
            self.datastore,
            self.rafiki if spec.use_rafiki else None,
            adapter,
            spec.policy,
            tenant_id=spec.tenant_id,
            window_seconds=spec.window_seconds,
            reconfiguration_penalty_s=spec.reconfiguration_penalty_s,
            retry=spec.retry,
            canary_margin=spec.canary_margin,
            canary_std_factor=spec.canary_std_factor,
            events=scoped,
            fault_plan=spec.fault_plan,
            restart_policy=spec.restart_policy,
            trace_phases=spec.trace_phases,
        )
        self._tenants[spec.tenant_id] = (spec, session)
        return session

    def run(self) -> Dict[str, ControllerRun]:
        """Drive every tenant to the end of its series, in lockstep.

        Window *w* of every tenant completes before window *w+1* of any
        tenant starts; within a window round, tenants execute in
        registration order.  The shared clock advances by the longest
        active window each round.
        """
        if not self._tenants:
            raise SearchError("scheduler has no tenants")
        for spec, session in self._tenants.values():
            session.start(
                load_keys=spec.base_workload.n_keys if spec.load else None
            )
        horizon = max(len(spec.rr_series) for spec, _ in self._tenants.values())
        self.events.publish(
            "scheduler.start",
            f"{len(self._tenants)} tenant(s), {horizon} window round(s)",
            tenants=list(self._tenants),
            windows=horizon,
        )
        for w in range(horizon):
            active = [
                tenant_id
                for tenant_id, (spec, _) in self._tenants.items()
                if w < len(spec.rr_series)
            ]
            round_seconds = max(
                (self._tenants[t][0].window_seconds for t in active),
                default=0.0,
            )
            if self.backend is None:
                for tenant_id in active:
                    spec, session = self._tenants[tenant_id]
                    session.step(spec.rr_series[w])
            else:
                self._run_round_sharded(w, active)
            self.clock.advance(round_seconds)
            self.events.publish(
                "scheduler.window",
                f"window round {w} ({len(active)} active)",
                window=w,
                t=self.clock.now,
                active_tenants=active,
            )
        results = {
            tenant_id: session.finish()
            for tenant_id, (_, session) in self._tenants.items()
        }
        self.events.publish(
            "scheduler.done",
            f"campaign complete at t={self.clock.now:.0f}s",
            t=self.clock.now,
            tenants=list(results),
        )
        return results

    # -- sharded rounds ---------------------------------------------------------

    def _run_round_sharded(self, w: int, active: Sequence[str]) -> None:
        """Fan one window round out over the backend's workers.

        Workers receive bus-stripped sessions plus one shared pickle of
        the round-start rafiki state; results are merged back in
        registration order (the lockstep barrier), so the shared cache,
        seed streams, and event log evolve exactly as a serial round's.
        """
        blob = self._rafiki_blob() if any(
            self._tenants[t][0].use_rafiki for t in active
        ) else None
        tasks = []
        for tenant_id in active:
            spec, session = self._tenants[tenant_id]
            _attach_session_bus(session, None)
            session.rafiki = None
            tasks.append(
                (
                    tenant_id,
                    float(spec.rr_series[w]),
                    session,
                    blob if spec.use_rafiki else None,
                )
            )
        try:
            outcomes = self.backend.map_tasks(_shard_window_worker, tasks)
        finally:
            # On a worker-raised error the parent-side sessions are left
            # bus-stripped; restore them so the scheduler stays usable.
            for tenant_id in active:
                spec, session = self._tenants[tenant_id]
                self._reattach(spec, session)
        for tenant_id, outcome in zip(active, outcomes):
            session, event_records, search_records = outcome
            spec, _ = self._tenants[tenant_id]
            self._reattach(spec, session)
            self._tenants[tenant_id] = (spec, session)
            self._merge_searches(search_records)
            for topic, message, payload in event_records:
                self.events.publish(topic, message, **payload)

    def _reattach(self, spec: TenantSpec, session: TenantSession) -> None:
        _attach_session_bus(
            session, self.events.scoped(f"tenant.{spec.tenant_id}")
        )
        session.rafiki = self.rafiki if spec.use_rafiki else None

    def _rafiki_blob(self) -> bytes:
        """Pickle the shared rafiki with its bus references detached."""
        rafiki = self.rafiki
        stripped = []
        for obj, attr in (
            (rafiki, "events"),
            (getattr(rafiki, "optimizer", None), "bus"),
        ):
            if obj is not None and getattr(obj, attr, None) is not None:
                stripped.append((obj, attr, getattr(obj, attr)))
                setattr(obj, attr, None)
        try:
            return pickle.dumps(rafiki)
        finally:
            for obj, attr, value in stripped:
                setattr(obj, attr, value)

    def _merge_searches(self, records: Sequence[tuple]) -> None:
        """Fold one worker's ``recommend()`` journal into the shared rafiki.

        For a real :class:`~repro.core.rafiki.Rafiki` the replay is
        exact: each journaled call performs the same cache lookup a
        serial call would (same hit/miss stats, same LRU refresh), and a
        miss installs the worker's result after burning the named seed
        stream the serial search would have consumed — so a later round
        searching a new regime draws from the identical stream index.
        Duck-typed recommenders without cache/seeds state (test fakes)
        fall back to replaying the calls outright, which is cheap for
        anything whose recommend() is a table fill.
        """
        rafiki = self.rafiki
        cache = getattr(rafiki, "cache", None)
        seeds = getattr(rafiki, "seeds", None)
        if isinstance(cache, RecommendationCache) and isinstance(seeds, SeedSequence):
            for read_ratio, result in records:
                key = cache.quantize(read_ratio)
                if cache.get(key) is None:
                    seeds.stream(f"search-rr{key}")
                    cache.put(key, result)
        else:
            for read_ratio, _ in records:
                rafiki.recommend(read_ratio)

    def __repr__(self) -> str:
        return (
            f"MiddlewareScheduler({self.datastore.name}, "
            f"tenants={list(self._tenants)})"
        )
