"""Scheduler layer: multiplex N tenant sessions on one simulated clock.

Rafiki pays off when the tuning loop is decoupled from per-instance
execution so models amortize across workloads (the Tuneful/WATER
observation): here one shared surrogate — and its
:class:`~repro.core.cache.RecommendationCache` — serves every tenant,
so a regime one tenant has already searched is a cache hit for all of
them.

Interleaving is deterministic by construction: tenants run in
registration order, window by window, on a shared
:class:`~repro.sim.clock.SimClock`.  The same seed and the same tenant
set (in the same order) therefore produce the identical event sequence
— the property the hypothesis tests in
``tests/test_middleware_scheduler.py`` pin down.

Every tenant's events are namespaced (``tenant.<id>.controller.*``,
``tenant.<id>.fault.*``, ``tenant.<id>.actuate.*``) via
``bus.scoped()``; the scheduler itself publishes ``scheduler.start`` /
``scheduler.window`` / ``scheduler.done``.

**Sharded serve.**  Within one window round, tenant sessions are
independent except for the shared rafiki (surrogate + recommendation
cache) and the shared bus.  ``backend=`` / ``workers=`` fan each round
out across :class:`~repro.runtime.backend.ProcessPoolBackend` workers:
every worker steps one session against a *copy* of the round-start
rafiki state and journals its externally visible effects (published
events and ``recommend()`` calls); the parent then, in registration
order, merges the journals back — replaying events on the shared bus
and folding fresh search results into the shared cache (burning the
same named seed stream a serial search would have consumed).  Because
the GA search is deterministic given the round-start seed stream,
two tenants racing the same regime in one round compute the *same*
result the serial run's cache hit would have returned, so sharded runs
are bit-identical to serial (see ``tests/test_sharded_scheduler.py``).

**State shipping.**  The round-start rafiki copy does *not* travel as
a fresh pickle in every task: the scheduler fingerprints the
decision-relevant state (ensemble weights, cache contents, seed-stream
counters — not hit/miss stats or LRU order, which mutate on every
lookup without affecting results) and, through a
:class:`~repro.runtime.stateship.StateShipper`, ships the full blob
only when the fingerprint changes (first round, post-retrain, a new
regime entering the cache).  Steady-state rounds ship the 16-byte
fingerprint; each persistent-pool worker unpickles from its local blob
cache.  A worker that missed the broadcast (fresh pool, post-crash
rebuild) answers with a ``StateMiss`` before touching its session and
the parent re-runs that one task blob-attached.  The protocol is
observable as ``backend.state_shipped_bytes`` / ``backend.state_hit``
/ ``backend.state_miss`` events — the only topics exempt from the
serial == sharded event-sequence contract, because blob placement
depends on OS scheduling.
The rafiki's own event bus must be unset (worker copies cannot replay
mid-search progress events).  The second historical caveat — the
recommendation cache evicting *within* one window round — is now
detected instead of silently breaking bit-identity: a round whose
current-window regimes cannot all fit the cache falls back to the serial
loop for that round (``scheduler.serial_fallback`` event), and an
eviction that still slips through (a policy searching a regime the
pre-round estimate could not see) raises
:class:`~repro.errors.MiddlewareError` rather than returning results
that may diverge from a serial run.

**Overload protection.**  ``cluster_capacity=`` activates the guard
layer's admission control (see :mod:`repro.middleware.ledger`): each
round, every active tenant's window is charged with its demand estimate
(previous window's served throughput) against the shared cluster's
modeled capacity.  When aggregate demand overflows, a deterministic
priority shedder (``TenantSpec.priority`` — higher sheds first — with
error-budget-remaining, then reverse registration order, as tiebreaks)
defers whole tenant windows (``guard.shed`` events, ``shed=True``
windows) rather than letting every tenant silently degrade; whatever
overflow shedding cannot remove (or all of it, with ``shedding=False``)
scales every admitted window by the round's capacity factor.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cache import RecommendationCache
from repro.core.controller import ControllerRun, RetryPolicy
from repro.core.policies import DecisionPolicy, HysteresisPolicy, OraclePolicy
from repro.datastore.adapter import (
    RESTART_SECONDS_PER_NODE,
    SimulatedDatastoreAdapter,
)
from repro.datastore.base import Datastore
from repro.errors import MiddlewareError, SearchError
from repro.faults.plan import FaultPlan
from repro.middleware.guard import GuardSpec, TenantGuard
from repro.middleware.ledger import CapacityLedger
from repro.middleware.reconcile import DriftReconciler, ReconcileSpec
from repro.middleware.session import TenantSession
from repro.middleware.slo import SloSpec
from repro.runtime.backend import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    resolve_backend,
)
from repro.runtime.events import EventBus
from repro.runtime.stateship import (
    StateMiss,
    StateMissError,
    StateShipment,
    StateShipper,
    install_shipment,
    state_fingerprint,
)
from repro.sim.clock import SimClock
from repro.sim.rng import SeedSequence
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import DEFAULT_WINDOW_SECONDS


def _default_policy() -> DecisionPolicy:
    return HysteresisPolicy(OraclePolicy(), min_change=0.08)


class _RecordingBus(EventBus):
    """Worker-side bus: journals every publish for parent-side replay."""

    def __init__(self):
        super().__init__()
        self.records: List[Tuple[str, str, dict]] = []

    def publish(self, topic: str, message: str = "", **payload):
        self.records.append((topic, message, payload))
        return super().publish(topic, message, **payload)


class _RecordingRafiki:
    """Worker-side proxy over a rafiki copy, journaling ``recommend()``.

    The journal carries ``(read_ratio, result)`` pairs; the parent
    replays them against the shared rafiki so its cache/seed state
    evolves exactly as a serial round's would.
    """

    def __init__(self, inner, records: List[tuple]):
        self._inner = inner
        self._records = records

    def recommend(self, read_ratio, use_cache: bool = True):
        result = self._inner.recommend(read_ratio, use_cache=use_cache)
        self._records.append((float(read_ratio), result))
        return result

    def predicted_throughput(self, read_ratio, config):
        return self._inner.predicted_throughput(read_ratio, config)

    def predicted_mean_std(self, read_ratio, config):
        return self._inner.predicted_mean_std(read_ratio, config)


def _attach_session_bus(session: TenantSession, bus) -> None:
    """Point every bus reference a session's step() publishes on at ``bus``."""
    session.events = bus
    session.adapter.events = bus
    cluster = getattr(session.adapter, "cluster", None)
    if cluster is not None:
        cluster.events = bus
    if session._injector is not None:
        session._injector.events = bus
    if session.guard is not None:
        session.guard.events = bus
    if session.reconciler is not None:
        session.reconciler.events = bus


def _shard_window_worker(task):
    """Run one tenant's window in a worker process.

    The session arrives with its bus references stripped (they hold
    parent-side subscriber callables that must not travel); a recording
    bus takes their place so the step's event stream can be replayed in
    the parent.  The shared rafiki state arrives as a
    :class:`~repro.runtime.stateship.StateShipment`: blob-attached on a
    fingerprint change, fingerprint-only in steady state, resolved
    against this worker process's blob cache.  A fingerprint-only
    shipment that misses the cache returns a
    :class:`~repro.runtime.stateship.StateMiss` marker *before touching
    the session*, so the parent can re-run the task with the blob
    attached.  Returns ``(session, event_records, search_records,
    state_from_cache)`` with the buses stripped again for the trip home.
    """
    tenant_id, read_ratio, capacity_factor, session, shipment = task
    searches: List[tuple] = []
    from_cache = False
    if shipment is not None:
        try:
            blob, from_cache = install_shipment(shipment)
        except StateMissError:
            return StateMiss(shipment.fingerprint)
        session.rafiki = _RecordingRafiki(pickle.loads(blob), searches)
    recorder = _RecordingBus()
    _attach_session_bus(session, recorder.scoped(f"tenant.{tenant_id}"))
    try:
        session.step(read_ratio, capacity_factor=capacity_factor)
    finally:
        _attach_session_bus(session, None)
        session.rafiki = None
    return session, recorder.records, searches, from_cache


@dataclass
class TenantSpec:
    """Everything the scheduler needs to host one tenant."""

    tenant_id: str
    rr_series: Sequence[float]
    base_workload: WorkloadSpec
    policy: DecisionPolicy = field(default_factory=_default_policy)
    use_rafiki: bool = True            # False = static-default baseline tenant
    n_nodes: int = 1
    replication_factor: int = 1
    seed: int = 0
    window_seconds: float = DEFAULT_WINDOW_SECONDS
    reconfiguration_penalty_s: float = 5.0
    retry: Optional[RetryPolicy] = None
    canary_margin: Optional[float] = None
    canary_std_factor: float = 2.0
    fault_plan: Optional[FaultPlan] = None
    restart_policy: str = "instant"
    restart_seconds_per_node: float = RESTART_SECONDS_PER_NODE
    load: bool = True
    trace_phases: bool = False
    execution: str = "analytic"    # "analytic" | "engine" (materialized LSM)
    # Overload protection (all optional; None keeps the tenant unguarded):
    # lower priority = more important = shed last under admission control.
    priority: int = 0
    slo: Optional[SloSpec] = None
    guard: Optional[GuardSpec] = None
    # Verified actuation (None keeps the tenant on blind actuation).
    reconcile: Optional[ReconcileSpec] = None

    def __post_init__(self):
        if not self.tenant_id or self.tenant_id != self.tenant_id.strip():
            raise SearchError(f"invalid tenant id {self.tenant_id!r}")
        if len(self.rr_series) == 0:
            raise SearchError(f"tenant {self.tenant_id!r} has an empty RR series")
        if self.n_nodes < 1:
            raise SearchError("n_nodes must be >= 1")
        if self.execution == "engine" and self.n_nodes != 1:
            raise SearchError(
                f"tenant {self.tenant_id!r}: engine execution is single-node"
            )
        if self.fault_plan is not None:
            self.fault_plan.validate()
            if self.fault_plan.max_node >= self.n_nodes:
                raise SearchError(
                    f"fault plan targets node {self.fault_plan.max_node} but "
                    f"tenant {self.tenant_id!r} runs {self.n_nodes} node(s)"
                )
            if self.n_nodes == 1 and (
                self.fault_plan.node_crashes or self.fault_plan.disk_slowdowns
            ):
                raise SearchError(
                    "node crash/slowdown faults need a multi-node cluster "
                    "(n_nodes >= 2); a single server only takes "
                    "control-plane faults"
                )
            if self.n_nodes == 1 and (
                self.fault_plan.actuation_faults
                or self.fault_plan.stale_recoveries
            ):
                raise SearchError(
                    "actuation faults (partial push, stale recovery) need a "
                    "multi-node cluster (n_nodes >= 2); a single server has "
                    "no ring to drift"
                )


class MiddlewareScheduler:
    """Runs many tenant sessions in deterministic lockstep."""

    def __init__(
        self,
        datastore: Datastore,
        rafiki=None,
        *,
        events: Optional[EventBus] = None,
        clock: Optional[SimClock] = None,
        backend=None,
        workers: Optional[int] = None,
        cluster_capacity: Optional[float] = None,
        shedding: bool = True,
    ):
        self.datastore = datastore
        self.rafiki = rafiki
        self.events = events or EventBus()
        self.clock = clock or SimClock()
        # Up-front validation: a bad workers/backend combination used to
        # surface windows later as an opaque crash inside the round loop.
        if workers is not None and workers < 1:
            raise SearchError(
                f"workers must be >= 1, got {workers} "
                "(1 = serial, N > 1 = process-pool sharded rounds)"
            )
        if isinstance(backend, str):
            if backend == "serial":
                backend = SerialBackend()
            elif backend == "process":
                if workers is None:
                    raise SearchError(
                        'backend="process" needs workers=N to size the '
                        "pool (pass workers=2 or more, or pass a "
                        "ProcessPoolBackend instance directly)"
                    )
                backend = ProcessPoolBackend(workers)
            else:
                raise SearchError(
                    f"unknown backend {backend!r} (serial | process, or an "
                    "ExecutionBackend instance)"
                )
        # backend=None and workers in (None, 1) keep the legacy in-process
        # serial loop; an explicit backend (even SerialBackend, useful for
        # exercising the shard protocol without processes) or workers > 1
        # routes every round through the sharded path.
        if backend is not None:
            self.backend: Optional[ExecutionBackend] = backend
            self._owns_backend = False
        elif workers is not None and workers > 1:
            self.backend = resolve_backend(workers=workers)
            self._owns_backend = True
        else:
            self.backend = None
            self._owns_backend = False
        # One shipper per scheduler: the shared rafiki is the one big
        # blob whose steady-state rounds should ship O(1) bytes.
        self._shipper = (
            StateShipper(events=self.events) if self.backend is not None else None
        )
        # cluster_capacity activates admission control + the overload
        # model; None (the default) keeps runs bit-identical to the
        # unguarded scheduler.
        self.ledger = (
            CapacityLedger(cluster_capacity, shedding=shedding)
            if cluster_capacity is not None
            else None
        )
        self._tenants: Dict[str, tuple] = {}   # id -> (spec, session); ordered

    @property
    def tenant_ids(self) -> list:
        return list(self._tenants)

    def session(self, tenant_id: str) -> TenantSession:
        return self._tenants[tenant_id][1]

    def add_tenant(self, spec: TenantSpec) -> TenantSession:
        """Register a tenant; order of registration is execution order."""
        if spec.tenant_id in self._tenants:
            raise SearchError(f"duplicate tenant id {spec.tenant_id!r}")
        if spec.use_rafiki and self.rafiki is None:
            raise SearchError(
                f"tenant {spec.tenant_id!r} wants tuning but the scheduler "
                "has no shared rafiki"
            )
        scoped = self.events.scoped(f"tenant.{spec.tenant_id}")
        adapter = SimulatedDatastoreAdapter(
            self.datastore,
            n_nodes=spec.n_nodes,
            replication_factor=spec.replication_factor,
            profile=spec.base_workload.to_profile(),
            seed=spec.seed,
            restart_seconds_per_node=spec.restart_seconds_per_node,
            events=scoped,
            execution=spec.execution,
            workload=spec.base_workload,
        )
        guard = None
        if spec.slo is not None or spec.guard is not None:
            guard = TenantGuard(
                spec.tenant_id,
                slo=spec.slo,
                spec=spec.guard or GuardSpec(),
                events=scoped,
            )
        reconciler = None
        if spec.reconcile is not None:
            reconciler = DriftReconciler(
                spec.tenant_id, spec=spec.reconcile, events=scoped
            )
        session = TenantSession(
            self.datastore,
            self.rafiki if spec.use_rafiki else None,
            adapter,
            spec.policy,
            guard=guard,
            reconciler=reconciler,
            tenant_id=spec.tenant_id,
            window_seconds=spec.window_seconds,
            reconfiguration_penalty_s=spec.reconfiguration_penalty_s,
            retry=spec.retry,
            canary_margin=spec.canary_margin,
            canary_std_factor=spec.canary_std_factor,
            events=scoped,
            fault_plan=spec.fault_plan,
            restart_policy=spec.restart_policy,
            trace_phases=spec.trace_phases,
        )
        self._tenants[spec.tenant_id] = (spec, session)
        return session

    def run(self) -> Dict[str, ControllerRun]:
        """Drive every tenant to the end of its series, in lockstep.

        Window *w* of every tenant completes before window *w+1* of any
        tenant starts; within a window round, tenants execute in
        registration order.  The shared clock advances by the longest
        active window each round.
        """
        if not self._tenants:
            raise SearchError("scheduler has no tenants")
        for spec, session in self._tenants.values():
            session.start(
                load_keys=spec.base_workload.n_keys if spec.load else None
            )
        horizon = max(len(spec.rr_series) for spec, _ in self._tenants.values())
        self.events.publish(
            "scheduler.start",
            f"{len(self._tenants)} tenant(s), {horizon} window round(s)",
            tenants=list(self._tenants),
            windows=horizon,
        )
        for w in range(horizon):
            active = [
                tenant_id
                for tenant_id, (spec, _) in self._tenants.items()
                if w < len(spec.rr_series)
            ]
            round_seconds = max(
                (self._tenants[t][0].window_seconds for t in active),
                default=0.0,
            )
            shed, factor = self._plan_round(w, active)
            sharded = self.backend is not None
            if sharded and self._eviction_risk(
                w, [t for t in active if t not in shed]
            ):
                # The round's regimes cannot all fit the shared cache:
                # sharding would evict mid-round and break bit-identity
                # with the serial loop, so run this round serially.
                self.events.publish(
                    "scheduler.serial_fallback",
                    f"window round {w}: recommendation cache too small for "
                    "the round's regimes; running the round serially",
                    window=w,
                    reason="cache-eviction-risk",
                )
                sharded = False
            if sharded:
                self._run_round_sharded(w, active, shed, factor)
            else:
                for tenant_id in active:
                    spec, session = self._tenants[tenant_id]
                    if tenant_id in shed:
                        session.record_shed_window(spec.rr_series[w])
                    else:
                        session.step(spec.rr_series[w], capacity_factor=factor)
            self.clock.advance(round_seconds)
            self.events.publish(
                "scheduler.window",
                f"window round {w} ({len(active)} active)",
                window=w,
                t=self.clock.now,
                active_tenants=active,
            )
        results = {
            tenant_id: session.finish()
            for tenant_id, (_, session) in self._tenants.items()
        }
        self.events.publish(
            "scheduler.done",
            f"campaign complete at t={self.clock.now:.0f}s",
            t=self.clock.now,
            tenants=list(results),
        )
        return results

    # -- admission control ------------------------------------------------------

    def _demand(self, tenant_id: str) -> float:
        """Demand estimate for the next window: last served throughput."""
        events = self._tenants[tenant_id][1].result.events
        return float(events[-1].mean_throughput) if events else 0.0

    def _shed_order(self, active: Sequence[str]) -> List[str]:
        """Active tenants, most-sheddable first.

        Highest ``priority`` number sheds first; among equals the tenant
        with the most SLO error budget remaining sheds first (it can
        afford the miss — tenants without an SLO count as infinite
        budget: no promise, no protection), and later registration
        breaks the final tie.
        """
        order = list(self._tenants)

        def key(tenant_id: str):
            spec, session = self._tenants[tenant_id]
            budget = (
                session.guard.budget_remaining
                if session.guard is not None
                else float("inf")
            )
            return (-spec.priority, -budget, -order.index(tenant_id))

        return sorted(active, key=key)

    def _plan_round(self, w: int, active: Sequence[str]):
        """Admission-control one round; returns (shed tenant set, factor)."""
        if self.ledger is None:
            return frozenset(), 1.0
        demands = {t: self._demand(t) for t in active}
        shed, factor = self.ledger.plan_round(demands, self._shed_order(active))
        for tenant_id in active:      # registration order, deterministically
            if tenant_id in shed:
                spec, _ = self._tenants[tenant_id]
                self.events.publish(
                    "guard.shed",
                    f"window round {w}: shedding tenant {tenant_id!r} "
                    f"(demand {demands[tenant_id]:,.0f} ops/s, "
                    f"priority {spec.priority})",
                    tenant=tenant_id,
                    window=w,
                    demand=demands[tenant_id],
                    capacity=self.ledger.capacity,
                    priority=spec.priority,
                )
        return frozenset(shed), factor

    def guard_report(self) -> Dict[str, dict]:
        """Per-tenant overload-protection summary (after or mid-run)."""
        report = {}
        for tenant_id, (spec, session) in self._tenants.items():
            entry: dict = {
                "priority": spec.priority,
                "sheds": sum(1 for e in session.result.events if e.shed),
                "slo": None,
                "breakers": None,
            }
            guard = session.guard
            if guard is not None:
                if guard.slo is not None:
                    entry["slo"] = {
                        "attainment": guard.slo.attainment,
                        "violations": guard.slo.violations,
                        "budget_remaining": guard.slo.budget_remaining,
                        "budget_exhausted": guard.slo.budget_exhausted,
                    }
                entry["breakers"] = {
                    breaker.name: {
                        "state": breaker.state,
                        "opens": breaker.opened_count,
                        "short_circuits": breaker.short_circuits,
                    }
                    for breaker in (guard.search_breaker, guard.push_breaker)
                }
            report[tenant_id] = entry
        return report

    # -- sharded rounds ---------------------------------------------------------

    def _eviction_risk(self, w: int, tenants: Sequence[str]) -> bool:
        """Could this round's searches evict from the shared cache?

        Conservative pre-round estimate over the tenants' *current*
        window regimes (what an oracle policy would search).  Duck-typed
        recommenders without a real :class:`RecommendationCache` are the
        generic replay path and exempt.
        """
        cache = getattr(self.rafiki, "cache", None)
        if not isinstance(cache, RecommendationCache):
            return False
        new_keys = set()
        for tenant_id in tenants:
            spec, _ = self._tenants[tenant_id]
            if not spec.use_rafiki:
                continue
            rr = float(np.clip(spec.rr_series[w], 0.0, 1.0))
            key = cache.quantize(rr)
            if key not in cache:
                new_keys.add(key)
        return len(cache) + len(new_keys) > cache.capacity

    def _run_round_sharded(
        self,
        w: int,
        active: Sequence[str],
        shed: frozenset = frozenset(),
        factor: float = 1.0,
    ) -> None:
        """Fan one window round out over the backend's workers.

        Workers receive bus-stripped sessions plus one shared pickle of
        the round-start rafiki state; results are merged back in
        registration order (the lockstep barrier), so the shared cache,
        seed streams, and event log evolve exactly as a serial round's.
        Shed tenants never travel: their zero-throughput windows are
        recorded parent-side at their registration slot, exactly where
        the serial loop would have recorded them.
        """
        served = [t for t in active if t not in shed]
        shipment = self._prepare_state_shipment() if any(
            self._tenants[t][0].use_rafiki for t in served
        ) else None
        cache = getattr(self.rafiki, "cache", None)
        evictions_before = (
            cache.stats.evictions
            if isinstance(cache, RecommendationCache)
            else None
        )
        tasks = []
        for tenant_id in served:
            spec, session = self._tenants[tenant_id]
            _attach_session_bus(session, None)
            session.rafiki = None
            task_shipment = shipment if spec.use_rafiki else None
            if task_shipment is not None:
                self._shipper.count_task(task_shipment)
            tasks.append(
                (
                    tenant_id,
                    float(spec.rr_series[w]),
                    float(factor),
                    session,
                    task_shipment,
                )
            )
        try:
            outcomes = self.backend.map_tasks(_shard_window_worker, tasks)
            outcomes = self._refetch_state_misses(tasks, outcomes)
        finally:
            # On a worker-raised error the parent-side sessions are left
            # bus-stripped; restore them so the scheduler stays usable.
            for tenant_id in served:
                spec, session = self._tenants[tenant_id]
                self._reattach(spec, session)
        results = iter(outcomes)
        for tenant_id in active:
            spec, session = self._tenants[tenant_id]
            if tenant_id in shed:
                session.record_shed_window(spec.rr_series[w])
                continue
            session, event_records, search_records, from_cache = next(results)
            if from_cache:
                self._shipper.record_hit(tenant=tenant_id, window=w)
            self._reattach(spec, session)
            self._tenants[tenant_id] = (spec, session)
            self._merge_searches(search_records)
            for topic, message, payload in event_records:
                self.events.publish(topic, message, **payload)
        if (
            evictions_before is not None
            and cache.stats.evictions > evictions_before
        ):
            raise MiddlewareError(
                f"recommendation cache evicted inside sharded window round "
                f"{w}: sharded results can silently diverge from a serial "
                "run once round-start cache state is stale. Raise the "
                "rafiki's cache_capacity or serve serially (workers=1)."
            )

    def _reattach(self, spec: TenantSpec, session: TenantSession) -> None:
        _attach_session_bus(
            session, self.events.scoped(f"tenant.{spec.tenant_id}")
        )
        session.rafiki = self.rafiki if spec.use_rafiki else None

    def _state_fingerprint(self) -> str:
        """Stable content hash of the shared rafiki's *decision-relevant*
        state.

        Covers everything a worker's ``recommend()`` result can depend
        on — ensemble weights, cache *contents*, named-seed-stream
        counters, GA budget knobs — while deliberately excluding the
        volatile bookkeeping that mutates on every lookup (cache
        hit/miss stats, LRU recency order, surrogate wall-clock stats).
        Two states with equal fingerprints therefore produce bitwise-
        identical worker results, which is what lets steady-state
        rounds ship the fingerprint instead of the blob.  Duck-typed
        recommenders without the real cache/seeds structure fall back
        to hashing their full (stripped) pickle.
        """
        rafiki = self.rafiki
        cache = getattr(rafiki, "cache", None)
        seeds = getattr(rafiki, "seeds", None)
        if isinstance(cache, RecommendationCache) and isinstance(
            seeds, SeedSequence
        ):
            optimizer = rafiki.optimizer
            knobs = {
                key: value
                for key, value in vars(optimizer).items()
                if key not in ("surrogate", "bus")
            }
            canonical = (
                rafiki.surrogate.ensemble,
                rafiki.surrogate.feature_parameters,
                knobs,
                sorted(cache._entries.items()),
                (cache.resolution, cache.capacity),
                (seeds.root_seed, sorted(seeds._counts.items())),
            )
            digest = hashlib.sha256(pickle.dumps(canonical)).hexdigest()
            return digest[:16]
        return state_fingerprint(self._rafiki_blob())

    def _prepare_state_shipment(self) -> StateShipment:
        """This round's rafiki shipment: blob on fingerprint change,
        fingerprint-only otherwise (the blob pickle is skipped too)."""
        return self._shipper.prepare(self._state_fingerprint(), self._rafiki_blob)

    def _refetch_state_misses(self, tasks, outcomes) -> list:
        """Re-run tasks whose worker lacked the state blob.

        A fresh or restarted worker (new pool, ``persistent=False``
        backend, post-crash rebuild, serial fallback in a parent that
        never cached the blob) answers a fingerprint-only shipment with
        a :class:`StateMiss` *before* touching its session, so the task
        is safely re-runnable with the blob attached — a one-shot
        refetch per task.
        """
        missed = [
            index
            for index, outcome in enumerate(outcomes)
            if isinstance(outcome, StateMiss)
        ]
        if not missed:
            return outcomes
        retry_tasks = []
        for index in missed:
            tenant_id, read_ratio, factor, session, shipment = tasks[index]
            self._shipper.record_miss(tenant=tenant_id)
            refetch = self._shipper.refetch(shipment.fingerprint)
            self._shipper.count_task(refetch)
            retry_tasks.append((tenant_id, read_ratio, factor, session, refetch))
        retried = self.backend.map_tasks(_shard_window_worker, retry_tasks)
        outcomes = list(outcomes)
        for index, outcome in zip(missed, retried):
            if isinstance(outcome, StateMiss):  # blob travelled: impossible
                raise MiddlewareError(
                    "worker missed the state blob on a blob-attached refetch"
                )
            outcomes[index] = outcome
        return outcomes

    def state_report(self) -> Optional[dict]:
        """State-shipping counters (None for the in-process serial loop)."""
        return self._shipper.report() if self._shipper is not None else None

    def close(self) -> None:
        """Release the execution backend if this scheduler created it
        (``workers=N``); an explicitly injected backend stays open —
        its lifecycle belongs to the caller."""
        if self._owns_backend and self.backend is not None:
            self.backend.close()

    def __enter__(self) -> "MiddlewareScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _rafiki_blob(self) -> bytes:
        """Pickle the shared rafiki with its bus references detached."""
        rafiki = self.rafiki
        stripped = []
        for obj, attr in (
            (rafiki, "events"),
            (getattr(rafiki, "optimizer", None), "bus"),
        ):
            if obj is not None and getattr(obj, attr, None) is not None:
                stripped.append((obj, attr, getattr(obj, attr)))
                setattr(obj, attr, None)
        try:
            return pickle.dumps(rafiki)
        finally:
            for obj, attr, value in stripped:
                setattr(obj, attr, value)

    def _merge_searches(self, records: Sequence[tuple]) -> None:
        """Fold one worker's ``recommend()`` journal into the shared rafiki.

        For a real :class:`~repro.core.rafiki.Rafiki` the replay is
        exact: each journaled call performs the same cache lookup a
        serial call would (same hit/miss stats, same LRU refresh), and a
        miss installs the worker's result after burning the named seed
        stream the serial search would have consumed — so a later round
        searching a new regime draws from the identical stream index.
        Duck-typed recommenders without cache/seeds state (test fakes)
        fall back to replaying the calls outright, which is cheap for
        anything whose recommend() is a table fill.
        """
        rafiki = self.rafiki
        cache = getattr(rafiki, "cache", None)
        seeds = getattr(rafiki, "seeds", None)
        if isinstance(cache, RecommendationCache) and isinstance(seeds, SeedSequence):
            for read_ratio, result in records:
                key = cache.quantize(read_ratio)
                if cache.get(key) is None:
                    seeds.stream(f"search-rr{key}")
                    cache.put(key, result)
        else:
            for read_ratio, _ in records:
                rafiki.recommend(read_ratio)

    def __repr__(self) -> str:
        return (
            f"MiddlewareScheduler({self.datastore.name}, "
            f"tenants={list(self._tenants)})"
        )
