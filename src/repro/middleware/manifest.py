"""Tenant manifests: declarative multi-tenant campaigns.

``python -m repro serve --manifest tenants.toml`` reads a TOML (Python
3.11+, via :mod:`tomllib`) or JSON manifest describing the tenant fleet
and builds the :class:`~repro.middleware.scheduler.TenantSpec` list a
:class:`~repro.middleware.scheduler.MiddlewareScheduler` runs.  Example::

    [defaults]
    mode = "oracle"
    hours = 6
    nodes = 1

    [[tenants]]
    id = "assembly-day"
    seed = 1

    [[tenants]]
    id = "annotation-burst"
    mode = "forecast"
    seed = 2
    nodes = 4
    replication_factor = 2
    restart_policy = "rolling"
    canary_margin = 0.2
    fault_seed = 7

Overload protection is declared the same way: a top-level ``[guard]``
section sets the shared cluster's modeled ``cluster_capacity`` (ops/s)
and whether ``shedding`` is enabled, and each tenant (or ``[defaults]``)
may carry nested ``slo`` / ``guard`` stanzas plus a ``priority``::

    [guard]
    cluster_capacity = 250000

    [[tenants]]
    id = "assembly-day"
    priority = 0                   # lower = more important = shed last

    [tenants.slo]
    throughput_floor = 40000
    window_span = 8
    error_budget = 0.25

    [tenants.guard]
    breaker_failures = 3
    max_restarts = 2

Verified actuation is a third nested stanza: ``[tenants.reconcile]``
(or ``[defaults.reconcile]``) turns on per-window drift read-back,
bounded repair, and telemetry quarantine::

    [tenants.reconcile]
    max_repairs = 2                # per rolling span; omit = uncapped
    span = 8
    escalate = true

Unknown keys are rejected (manifests must not silently drift from the
schema) — including inside the nested ``slo`` / ``guard`` stanzas —
``[defaults]`` applies to every tenant that does not override, and
tenant order in the file is the scheduler's deterministic execution
order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.policies import HysteresisPolicy, make_policy
from repro.errors import GuardError, PersistenceError, SearchError
from repro.faults.plan import FaultPlan
from repro.middleware.guard import GUARD_STANZA_KEYS, GuardSpec
from repro.middleware.reconcile import RECONCILE_STANZA_KEYS, ReconcileSpec
from repro.middleware.scheduler import TenantSpec
from repro.middleware.slo import SLO_STANZA_KEYS, SloSpec
from repro.workload.forecast import MarkovRegimeForecaster
from repro.workload.mgrast import MGRastTraceGenerator
from repro.workload.spec import mgrast_workload
from repro.workload.trace import DEFAULT_WINDOW_SECONDS

#: Tenant keys a manifest may set (``[defaults]`` may set all but ``id``).
TENANT_KEYS = frozenset(
    {
        "id",
        "mode",
        "seed",
        "hours",
        "nodes",
        "replication_factor",
        "base_read_ratio",
        "rr_change_threshold",
        "window_seconds",
        "reconfiguration_penalty_s",
        "canary_margin",
        "canary_std_factor",
        "fault_seed",
        "restart_policy",
        "restart_seconds_per_node",
        "load",
        "priority",
        "slo",
        "guard",
        "reconcile",
    }
)

#: Keys the top-level ``[guard]`` section may set.
GUARD_SECTION_KEYS = frozenset({"cluster_capacity", "shedding"})

_TENANT_DEFAULTS: Dict[str, Any] = {
    "mode": "oracle",
    "seed": 0,
    "hours": 24,
    "nodes": 1,
    "replication_factor": 1,
    "base_read_ratio": 0.5,
    "rr_change_threshold": 0.08,
    "window_seconds": DEFAULT_WINDOW_SECONDS,
    "reconfiguration_penalty_s": 5.0,
    "canary_margin": None,
    "canary_std_factor": 2.0,
    "fault_seed": None,
    "restart_policy": "instant",
    "restart_seconds_per_node": 30.0,
    "load": True,
    "priority": 0,
    "slo": None,
    "guard": None,
    "reconcile": None,
}


@dataclass(frozen=True)
class TenantManifest:
    """Parsed manifest: per-tenant settings with defaults applied."""

    tenants: List[Dict[str, Any]]
    source: str = "<memory>"
    #: Shared-cluster admission control (``[guard]`` section); None = off.
    cluster_capacity: Optional[float] = None
    shedding: bool = True

    def __len__(self) -> int:
        return len(self.tenants)


def _parse_document(text: str, path: str) -> Dict[str, Any]:
    if str(path).endswith(".toml"):
        try:
            import tomllib
        except ImportError:  # Python < 3.11: the stdlib has no TOML parser
            raise PersistenceError(
                f"cannot read {path}: TOML manifests need Python 3.11+ "
                "(tomllib); rewrite the manifest as JSON"
            ) from None
        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise PersistenceError(f"malformed TOML manifest {path}: {exc}") from exc
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"malformed JSON manifest {path}: {exc}") from exc


def load_manifest(path) -> TenantManifest:
    """Read and validate a tenant manifest file (TOML or JSON)."""
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        raise PersistenceError(f"cannot read manifest {path}: {exc}") from exc
    return parse_manifest(_parse_document(text, str(path)), source=str(path))


def _check_stanza(
    stanza: Any, allowed: frozenset, label: str, source: str
) -> None:
    """Validate one nested ``slo`` / ``guard`` stanza's shape and keys."""
    if stanza is None:
        return
    if not isinstance(stanza, dict):
        raise PersistenceError(f"manifest {source}: {label} must be a table")
    bad = set(stanza) - allowed
    if bad:
        raise PersistenceError(
            f"manifest {source}: {label} has unknown key(s) {sorted(bad)}"
        )


def _merge_stanza(base: Optional[dict], override: Optional[dict]) -> Optional[dict]:
    """Merge a tenant's nested stanza over the defaults', key by key."""
    if base is None and override is None:
        return None
    return {**(base or {}), **(override or {})}


def parse_manifest(document: Dict[str, Any], source: str = "<memory>") -> TenantManifest:
    """Validate a manifest document and apply ``[defaults]``."""
    if not isinstance(document, dict):
        raise PersistenceError(f"manifest {source} must be a table/object")
    unknown_sections = set(document) - {"defaults", "tenants", "guard"}
    if unknown_sections:
        raise PersistenceError(
            f"manifest {source} has unknown section(s) {sorted(unknown_sections)}"
        )
    guard_section = document.get("guard", {})
    if not isinstance(guard_section, dict):
        raise PersistenceError(f"manifest {source}: [guard] must be a table")
    bad = set(guard_section) - GUARD_SECTION_KEYS
    if bad:
        raise PersistenceError(
            f"manifest {source}: unknown [guard] key(s) {sorted(bad)}"
        )
    defaults = document.get("defaults", {})
    if not isinstance(defaults, dict):
        raise PersistenceError(f"manifest {source}: [defaults] must be a table")
    bad = set(defaults) - (TENANT_KEYS - {"id"})
    if bad:
        raise PersistenceError(
            f"manifest {source}: unknown default key(s) {sorted(bad)}"
        )
    _check_stanza(
        defaults.get("slo"), SLO_STANZA_KEYS, "[defaults.slo]", source
    )
    _check_stanza(
        defaults.get("guard"), GUARD_STANZA_KEYS, "[defaults.guard]", source
    )
    _check_stanza(
        defaults.get("reconcile"),
        RECONCILE_STANZA_KEYS,
        "[defaults.reconcile]",
        source,
    )
    raw_tenants = document.get("tenants")
    if not isinstance(raw_tenants, list) or not raw_tenants:
        raise PersistenceError(
            f"manifest {source} needs a non-empty [[tenants]] list"
        )
    seen = set()
    tenants = []
    for i, entry in enumerate(raw_tenants):
        if not isinstance(entry, dict):
            raise PersistenceError(f"manifest {source}: tenant #{i} must be a table")
        bad = set(entry) - TENANT_KEYS
        if bad:
            raise PersistenceError(
                f"manifest {source}: tenant #{i} has unknown key(s) {sorted(bad)}"
            )
        _check_stanza(
            entry.get("slo"), SLO_STANZA_KEYS, f"tenant #{i} [slo]", source
        )
        _check_stanza(
            entry.get("guard"), GUARD_STANZA_KEYS, f"tenant #{i} [guard]", source
        )
        _check_stanza(
            entry.get("reconcile"),
            RECONCILE_STANZA_KEYS,
            f"tenant #{i} [reconcile]",
            source,
        )
        merged = {**_TENANT_DEFAULTS, **defaults, **entry}
        # Nested stanzas merge key-wise, not wholesale: a tenant's [slo]
        # refines the [defaults.slo] baseline instead of replacing it.
        for stanza in ("slo", "guard", "reconcile"):
            merged[stanza] = _merge_stanza(
                defaults.get(stanza), entry.get(stanza)
            )
        tenant_id = merged.get("id")
        if not tenant_id or not isinstance(tenant_id, str):
            raise PersistenceError(
                f"manifest {source}: tenant #{i} needs a string 'id'"
            )
        if tenant_id in seen:
            raise PersistenceError(
                f"manifest {source}: duplicate tenant id {tenant_id!r}"
            )
        seen.add(tenant_id)
        tenants.append(merged)
    capacity = guard_section.get("cluster_capacity")
    if capacity is not None and (
        not isinstance(capacity, (int, float)) or isinstance(capacity, bool)
    ):
        raise PersistenceError(
            f"manifest {source}: [guard] cluster_capacity must be a number"
        )
    shedding = guard_section.get("shedding", True)
    if not isinstance(shedding, bool):
        raise PersistenceError(
            f"manifest {source}: [guard] shedding must be a boolean"
        )
    return TenantManifest(
        tenants=tenants,
        source=source,
        cluster_capacity=float(capacity) if capacity is not None else None,
        shedding=shedding,
    )


def specs_from_manifest(
    manifest: TenantManifest, hours: Optional[float] = None
) -> List[TenantSpec]:
    """Instantiate the scheduler-facing specs from a parsed manifest.

    ``hours`` overrides every tenant's campaign length (the CLI's
    ``--hours`` flag).  Each tenant gets its own seeded MG-RAST trace,
    decision policy, and (optionally) generated fault plan.
    """
    specs = []
    for entry in manifest.tenants:
        try:
            mode = entry["mode"]
            tenant_hours = hours if hours is not None else entry["hours"]
            series = MGRastTraceGenerator(
                seed=entry["seed"], window_seconds=entry["window_seconds"]
            ).read_ratio_series(tenant_hours * 3600)
            forecaster = MarkovRegimeForecaster() if mode == "forecast" else None
            policy = HysteresisPolicy(
                make_policy(mode, forecaster),
                min_change=entry["rr_change_threshold"],
            )
            fault_plan = None
            if entry["fault_seed"] is not None:
                fault_plan = FaultPlan.generate(
                    seed=entry["fault_seed"],
                    n_windows=len(series),
                    n_nodes=entry["nodes"],
                    slowdown_probability=0.05 if entry["nodes"] > 1 else 0.0,
                )
            slo = (
                SloSpec.from_dict(entry["slo"])
                if entry["slo"] is not None
                else None
            )
            guard = (
                GuardSpec.from_dict(entry["guard"])
                if entry["guard"] is not None
                else None
            )
            reconcile = (
                ReconcileSpec.from_dict(entry["reconcile"])
                if entry["reconcile"] is not None
                else None
            )
            specs.append(
                TenantSpec(
                    tenant_id=entry["id"],
                    rr_series=series,
                    base_workload=mgrast_workload(entry["base_read_ratio"]),
                    policy=policy,
                    n_nodes=entry["nodes"],
                    replication_factor=entry["replication_factor"],
                    seed=entry["seed"],
                    window_seconds=entry["window_seconds"],
                    reconfiguration_penalty_s=entry["reconfiguration_penalty_s"],
                    canary_margin=entry["canary_margin"],
                    canary_std_factor=entry["canary_std_factor"],
                    fault_plan=fault_plan,
                    restart_policy=entry["restart_policy"],
                    restart_seconds_per_node=entry["restart_seconds_per_node"],
                    load=bool(entry["load"]),
                    priority=int(entry["priority"]),
                    slo=slo,
                    guard=guard,
                    reconcile=reconcile,
                )
            )
        except (GuardError, SearchError, TypeError, ValueError) as exc:
            raise PersistenceError(
                f"manifest {manifest.source}: tenant {entry['id']!r}: {exc}"
            ) from exc
    return specs
