"""Drift reconciliation for one tenant: detect, repair, quarantine.

Actuation is fallible: a config push can silently fail on one node
(partial push) and a crashed node can rejoin on its pre-crash knobs
(stale recovery).  The :class:`DriftReconciler` is the session layer's
answer — after every actuate/recover point it reads back the per-node
applied configs (``adapter.verify_config()``), publishes ``actuate.drift``
with the drifted node set and fingerprint delta, and repairs by
re-pushing *only* the drifted nodes within a bounded rolling repair
budget (each repair charges the usual per-node restart transient).

A window that ran under detected drift is **quarantined**: its
throughput reflects a mixed-config ring, so the canary EWMA, the SLO
error budget, and the surrogate observation path must not ingest it as
if it were the intended configuration's.  Drift that cannot be repaired
this window — budget spent, or the re-push refused again — *escalates*:
the session enters degraded mode and trips the push breaker, so the
tenant stops layering new pushes on an unverified ring.

Like the guard, all state is window-indexed, seeded by nothing, and
picklable with ``events=None``, so the sharded serve path reproduces
identical drift/repair/quarantine event sequences.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import GuardError

#: Keys a manifest ``[tenants.reconcile]`` stanza may set.
RECONCILE_STANZA_KEYS = frozenset({"enabled", "max_repairs", "span", "escalate"})


@dataclass(frozen=True)
class ReconcileSpec:
    """Verified-actuation settings for one tenant.

    ``max_repairs`` caps repair re-pushes inside a rolling ``span``-window
    budget (``None`` = uncapped); ``escalate`` controls whether
    unrepaired drift degrades the window and trips the push breaker
    (``False`` keeps quarantining without touching the breaker —
    observe-only mode).  ``enabled=False`` skips verification entirely,
    reproducing the pre-reconciler blind-actuation behaviour.
    """

    enabled: bool = True
    max_repairs: Optional[int] = None
    span: int = 8
    escalate: bool = True

    def __post_init__(self):
        if self.span < 1:
            raise GuardError(f"span must be >= 1, got {self.span!r}")
        if self.max_repairs is not None and self.max_repairs < 0:
            raise GuardError(
                f"max_repairs must be >= 0, got {self.max_repairs!r}"
            )

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "ReconcileSpec":
        """Build a spec from a ``[reconcile]`` stanza (unknown keys rejected)."""
        bad = set(document) - RECONCILE_STANZA_KEYS
        if bad:
            raise GuardError(f"unknown [reconcile] key(s) {sorted(bad)}")
        return cls(**document)


@dataclass
class ReconcileOutcome:
    """What one reconcile pass found and did."""

    drift_detected: bool = False
    drifted_nodes: Tuple[int, ...] = ()
    repaired: bool = False
    repair_report: Optional[object] = None
    quarantined: bool = False
    escalated: bool = False


class DriftReconciler:
    """Per-tenant detect/repair loop the session runs each window."""

    def __init__(
        self,
        tenant_id: str,
        spec: Optional[ReconcileSpec] = None,
        events=None,
    ):
        self.tenant_id = tenant_id
        self.spec = spec or ReconcileSpec()
        self.events = events
        self._repairs: deque = deque()
        self.drift_windows = 0
        self.repairs_attempted = 0
        self.repairs_succeeded = 0
        self.quarantined_windows = 0
        self.escalations = 0

    # -- repair budget (rolling span, like the guard bulkheads) ----------------

    def repairs_used(self, window: int) -> int:
        while self._repairs and self._repairs[0] <= window - self.spec.span:
            self._repairs.popleft()
        return len(self._repairs)

    def allow_repair(self, window: int) -> bool:
        if self.spec.max_repairs is None:
            return True
        return self.repairs_used(window) < self.spec.max_repairs

    # -- the reconcile pass ----------------------------------------------------

    def reconcile(
        self, window: int, adapter, read_ratio: float, rolling: bool = True
    ) -> ReconcileOutcome:
        """Verify the ring; repair within budget; flag what ran drifted.

        Fast path first: with no drift this makes exactly one
        ``verify_config()`` read-back and publishes nothing, so
        fault-free runs stay bit-identical.
        """
        outcome = ReconcileOutcome()
        if not self.spec.enabled:
            return outcome
        report = adapter.verify_config()
        if not report.has_drift:
            return outcome
        outcome.drift_detected = True
        outcome.drifted_nodes = report.drifted_nodes
        outcome.quarantined = True
        self.drift_windows += 1
        self.quarantined_windows += 1
        applied = tuple(
            (node, report.node_fingerprints[node])
            for node in report.drifted_nodes
        )
        self._publish(
            "actuate.drift",
            f"config drift on node(s) {list(report.drifted_nodes)} "
            f"(window {window}): intended {report.intended_fingerprint}",
            window=window,
            nodes=report.drifted_nodes,
            intended_fingerprint=report.intended_fingerprint,
            applied_fingerprints=applied,
            down_nodes=report.down_drifted_nodes,
        )
        if not self.allow_repair(window):
            self._publish(
                "actuate.repair_blocked",
                f"repair budget spent ({self.repairs_used(window)}/"
                f"{self.spec.max_repairs} in {self.spec.span} windows); "
                f"drift persists (window {window})",
                window=window,
                nodes=report.drifted_nodes,
                used=self.repairs_used(window),
                limit=self.spec.max_repairs,
                span=self.spec.span,
            )
            outcome.escalated = self.spec.escalate
        else:
            self._repairs.append(window)
            self.repairs_attempted += 1
            outcome.repair_report = adapter.repair_config(
                report.drifted_nodes, read_ratio, rolling=rolling
            )
            verify = adapter.verify_config()
            if not verify.has_drift:
                outcome.repaired = True
                self.repairs_succeeded += 1
                self._publish(
                    "actuate.reconciled",
                    f"drift repaired on node(s) {list(report.drifted_nodes)} "
                    f"(window {window})",
                    window=window,
                    nodes=report.drifted_nodes,
                    repairs_used=self.repairs_used(window),
                )
            else:
                self._publish(
                    "actuate.repair_failed",
                    f"re-push refused on node(s) "
                    f"{list(verify.drifted_nodes)} (window {window}); "
                    "drift persists",
                    window=window,
                    nodes=verify.drifted_nodes,
                )
                outcome.escalated = self.spec.escalate
        if outcome.escalated:
            self.escalations += 1
        self._publish(
            "actuate.quarantine",
            f"window {window} ran under drift; telemetry quarantined",
            window=window,
            nodes=report.drifted_nodes,
            repaired=outcome.repaired,
            escalated=outcome.escalated,
        )
        return outcome

    def _publish(self, topic: str, message: str, **payload) -> None:
        if self.events is not None:
            self.events.publish(topic, message, **payload)

    def __repr__(self) -> str:
        return (
            f"DriftReconciler({self.tenant_id!r}, "
            f"drift_windows={self.drift_windows}, "
            f"repaired={self.repairs_succeeded}/{self.repairs_attempted}, "
            f"escalations={self.escalations})"
        )
