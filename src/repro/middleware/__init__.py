"""Middleware service layer: multi-tenant online tuning.

The paper positions Rafiki as middleware *between* dynamic workloads and
a datastore fleet.  This package is that service layer, in four tiers:

* **Actuation** — :class:`~repro.datastore.adapter.DatastoreAdapter`
  (re-exported here): provision / apply-config / rolling-restart /
  teardown, with restart transients charged as modeled capacity loss.
* **Session** — :class:`TenantSession`: one tenant's
  observe -> decide -> actuate -> canary loop as discrete, resumable
  phases, with the retry/degraded/rollback guardrails intact.
* **Scheduler** — :class:`MiddlewareScheduler`: N sessions multiplexed
  on a shared simulated clock with one shared surrogate and
  recommendation cache, deterministically interleaved.
* **Entry** — tenant manifests (:func:`load_manifest`,
  :func:`specs_from_manifest`) feeding ``python -m repro serve``.

Overload protection rides below the session tier: per-tenant
:class:`TenantGuard` facades compose an :class:`SloTracker` (rolling
error budget over an :class:`SloSpec`), circuit breakers around search
and actuation, and bulkhead budgets; the scheduler's
:class:`CapacityLedger` adds shared-cluster admission control and
deterministic priority shedding.  All of it is off by default — an
unguarded run is bit-identical to the pre-guard scheduler.

Verified actuation rides at the same tier: a per-tenant
:class:`DriftReconciler` (configured by :class:`ReconcileSpec`) reads
back the per-node applied configs after every actuate/recover point,
repairs partial pushes and stale recoveries within a bounded rolling
repair budget, and quarantines windows that ran on a mixed-config ring
so the canary EWMA and SLO budget never ingest drifted throughput.
Off by default, like the guards.

The legacy single-tenant ``OnlineController`` API survives as a thin
shim over one session; its runs are bit-identical to before.
"""

from repro.datastore.adapter import (
    DatastoreAdapter,
    RollingRestartReport,
    SimulatedDatastoreAdapter,
)
from repro.middleware.breaker import CircuitBreaker
from repro.middleware.guard import GuardSpec, TenantGuard
from repro.middleware.ledger import CapacityLedger
from repro.middleware.manifest import (
    TenantManifest,
    load_manifest,
    parse_manifest,
    specs_from_manifest,
)
from repro.middleware.reconcile import (
    DriftReconciler,
    ReconcileOutcome,
    ReconcileSpec,
)
from repro.middleware.scheduler import MiddlewareScheduler, TenantSpec
from repro.middleware.session import (
    RESTART_POLICIES,
    SESSION_PHASES,
    TenantSession,
    WindowState,
)
from repro.middleware.slo import SloSpec, SloTracker

__all__ = [
    "DatastoreAdapter",
    "SimulatedDatastoreAdapter",
    "RollingRestartReport",
    "TenantSession",
    "WindowState",
    "SESSION_PHASES",
    "RESTART_POLICIES",
    "MiddlewareScheduler",
    "TenantSpec",
    "TenantManifest",
    "load_manifest",
    "parse_manifest",
    "specs_from_manifest",
    "SloSpec",
    "SloTracker",
    "CircuitBreaker",
    "GuardSpec",
    "TenantGuard",
    "CapacityLedger",
    "ReconcileSpec",
    "ReconcileOutcome",
    "DriftReconciler",
]
