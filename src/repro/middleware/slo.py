"""Per-tenant SLO specs and the deterministic window-scoring tracker.

Rafiki's job is keeping a shared cluster inside its performance envelope
(paper §5); an :class:`SloSpec` makes that envelope explicit per tenant:
a throughput floor the tenant must sustain, an optional modeled-latency
ceiling, and an *error budget* — the fraction of windows inside a
rolling evaluation span the tenant is allowed to miss before the guard
layer reacts (stops churning configs, deprioritizes the tenant in
admission control).

The :class:`SloTracker` is pure bookkeeping: it scores each sealed
window against the spec and burns/refills the budget over the rolling
span.  It publishes nothing itself — the owning
:class:`~repro.middleware.guard.TenantGuard` turns its verdicts into
``guard.slo.*`` events — so scoring is trivially deterministic and
picklable for the sharded serve path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from math import isfinite
from typing import Any, Dict, Optional

from repro.errors import GuardError

#: Keys a manifest ``[tenants.slo]`` stanza may set.
SLO_STANZA_KEYS = frozenset(
    {"throughput_floor", "latency_ceiling_ms", "window_span", "error_budget"}
)


@dataclass(frozen=True)
class SloSpec:
    """One tenant's service-level objective.

    ``throughput_floor`` is ops/s the tenant's windows must sustain;
    ``latency_ceiling_ms`` bounds the modeled per-op service time
    (``1000 / mean_throughput`` ms — a proxy, the simulation has no
    queueing model); ``error_budget`` is the violating-window fraction
    tolerated inside a rolling ``window_span``-window evaluation span.
    """

    throughput_floor: float = 0.0
    latency_ceiling_ms: Optional[float] = None
    window_span: int = 8
    error_budget: float = 0.1

    def __post_init__(self):
        if not isfinite(self.throughput_floor) or self.throughput_floor < 0:
            raise GuardError(
                f"throughput_floor must be >= 0, got {self.throughput_floor!r}"
            )
        if self.latency_ceiling_ms is not None and not (
            isfinite(self.latency_ceiling_ms) and self.latency_ceiling_ms > 0
        ):
            raise GuardError(
                f"latency_ceiling_ms must be > 0, got {self.latency_ceiling_ms!r}"
            )
        if self.window_span < 1:
            raise GuardError(f"window_span must be >= 1, got {self.window_span!r}")
        if not (0.0 <= self.error_budget <= 1.0):
            raise GuardError(
                f"error_budget must be in [0, 1], got {self.error_budget!r}"
            )

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "SloSpec":
        """Build a spec from a manifest ``[slo]`` stanza (unknown keys rejected)."""
        bad = set(document) - SLO_STANZA_KEYS
        if bad:
            raise GuardError(f"unknown [slo] key(s) {sorted(bad)}")
        return cls(**document)

    @property
    def allowed_violations(self) -> float:
        """Violating windows the budget tolerates per evaluation span."""
        return self.error_budget * self.window_span


class SloTracker:
    """Scores sealed windows against an :class:`SloSpec`.

    Deterministic by construction: the verdict for a window depends only
    on the window's :class:`~repro.core.controller.ControllerEvent` and
    the previous verdicts inside the rolling span.  ``score`` returns
    ``(violated, transition)`` where ``transition`` is ``None``,
    ``"budget_exhausted"`` (the rolling span just overran the budget) or
    ``"recovered"`` (it just came back inside).
    """

    def __init__(self, spec: SloSpec):
        self.spec = spec
        self.windows_scored = 0
        self.violations = 0
        self.budget_exhausted = False
        self._recent: deque = deque(maxlen=spec.window_span)

    @property
    def budget_remaining(self) -> float:
        """Violations the span can still absorb (may go negative)."""
        return self.spec.allowed_violations - sum(self._recent)

    @property
    def attainment(self) -> float:
        """Fraction of scored windows that met the SLO (1.0 before any)."""
        if self.windows_scored == 0:
            return 1.0
        return 1.0 - self.violations / self.windows_scored

    def violates(self, event) -> bool:
        """Does one sealed window miss the objective?"""
        if getattr(event, "shed", False):
            return True
        if event.degraded or event.rolled_back:
            return True
        if event.mean_throughput < self.spec.throughput_floor:
            return True
        if self.spec.latency_ceiling_ms is not None:
            if event.mean_throughput <= 0.0:
                return True
            if 1000.0 / event.mean_throughput > self.spec.latency_ceiling_ms:
                return True
        return False

    def score(self, event):
        """Fold one window into the rolling span; returns (violated, transition)."""
        violated = self.violates(event)
        self.windows_scored += 1
        if violated:
            self.violations += 1
        self._recent.append(1 if violated else 0)
        exhausted = self.budget_remaining < 0
        transition = None
        if exhausted and not self.budget_exhausted:
            transition = "budget_exhausted"
        elif not exhausted and self.budget_exhausted:
            transition = "recovered"
        self.budget_exhausted = exhausted
        return violated, transition

    def __repr__(self) -> str:
        return (
            f"SloTracker({self.windows_scored} windows, "
            f"{self.violations} violations, "
            f"budget_remaining={self.budget_remaining:.2f})"
        )
