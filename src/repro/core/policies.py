"""Decision policies for the online controller.

The seed repo hard-coded the controller's decision logic behind string
dispatch (``"oracle" | "reactive" | "forecast"``).  This module turns
each mode into a :class:`DecisionPolicy` strategy object, and makes the
change-threshold logic a *composable* wrapper (:class:`HysteresisPolicy`)
instead of controller-internal state — so new policies (cost-aware,
SLA-aware, multi-metric) plug in without touching the control loop.

A policy answers one question per window: *which read ratio should the
controller hand to Rafiki's search, if any?*  Returning ``None`` means
"keep the current configuration" (no information yet, change too small,
or still cooling down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import SearchError
from repro.workload.forecast import RRForecaster


@dataclass(frozen=True)
class WindowObservation:
    """What the controller knows when deciding for one window."""

    index: int
    read_ratio: float                       # current window's observed RR
    previous_read_ratio: Optional[float]    # None in the very first window


class DecisionPolicy:
    """Strategy interface: pick the RR to tune for, or ``None`` to hold.

    ``proactive`` policies decide at the window boundary (the
    reconfiguration overlaps idle time); reactive ones decide inside the
    window and pay the reconfiguration penalty.
    """

    name = "base"
    proactive = False

    def decide(self, window: WindowObservation) -> Optional[float]:
        """The RR the controller should believe for this window."""
        raise NotImplementedError

    def observe(self, read_ratio: float) -> None:
        """Feed the window's actual RR after it completes."""

    def reset(self) -> None:
        """Forget per-run state (called between controller runs)."""


class OraclePolicy(DecisionPolicy):
    """The paper's setting: the current window's RR is known up front
    (RR is stationary within a window, so a few minutes of observation
    plus a seconds-fast search approximate an oracle)."""

    name = "oracle"

    def decide(self, window: WindowObservation) -> Optional[float]:
        return window.read_ratio


class ReactivePolicy(DecisionPolicy):
    """Pure measurement lag: tune for the previous window's RR.

    The very first window returns ``None`` — there is no information
    yet, so the controller keeps the default configuration."""

    name = "reactive"

    def decide(self, window: WindowObservation) -> Optional[float]:
        return window.previous_read_ratio


class ForecastPolicy(DecisionPolicy):
    """Proactive tuning from a one-step-ahead RR forecast (§6).

    Cold start: until the forecaster has seen at least one observation,
    ``decide`` returns ``None`` — predicting from an unfitted forecaster
    would just emit its prior (e.g. 0.5) and trigger a reconfiguration
    based on no data, the same first-window blindness reactive mode
    already acknowledges.  Pass ``assume_warm=True`` for a forecaster
    that was pre-trained on historical windows.
    """

    name = "forecast"
    proactive = True

    def __init__(self, forecaster: RRForecaster, assume_warm: bool = False):
        if forecaster is None:
            raise SearchError("forecast mode needs a forecaster")
        self.forecaster = forecaster
        self._observations = 1 if assume_warm else 0

    def decide(self, window: WindowObservation) -> Optional[float]:
        if self._observations == 0:
            return None
        return float(np.clip(self.forecaster.predict(), 0.0, 1.0))

    def observe(self, read_ratio: float) -> None:
        self.forecaster.update(read_ratio)
        self._observations += 1


class HysteresisPolicy(DecisionPolicy):
    """Composable damper around any inner policy.

    Passes the inner decision through only when it moved at least
    ``min_change`` away from the last *acted-on* decision (hysteresis),
    and at most once every ``cooldown_windows`` windows (cooldown) —
    reconfigurations cost downtime, so chattering around a regime
    boundary must not translate into reconfiguration storms.
    """

    def __init__(
        self,
        inner: DecisionPolicy,
        min_change: float = 0.08,
        cooldown_windows: int = 0,
    ):
        if min_change < 0:
            raise SearchError("min_change must be >= 0")
        if cooldown_windows < 0:
            raise SearchError("cooldown_windows must be >= 0")
        self.inner = inner
        self.min_change = min_change
        self.cooldown_windows = cooldown_windows
        self._last_rr: Optional[float] = None
        self._last_window: Optional[int] = None

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.inner.name

    @property
    def proactive(self) -> bool:  # type: ignore[override]
        return self.inner.proactive

    def decide(self, window: WindowObservation) -> Optional[float]:
        raw = self.inner.decide(window)
        if raw is None:
            return None
        if (
            self._last_window is not None
            and window.index - self._last_window < self.cooldown_windows
        ):
            return None
        if self._last_rr is not None and abs(raw - self._last_rr) < self.min_change:
            return None
        self._last_rr = raw
        self._last_window = window.index
        return raw

    def observe(self, read_ratio: float) -> None:
        self.inner.observe(read_ratio)

    def reset(self) -> None:
        self._last_rr = None
        self._last_window = None
        self.inner.reset()


#: Legacy string modes, mapped by :func:`make_policy`.
DECISION_MODES = ("oracle", "reactive", "forecast")


def make_policy(
    mode: str, forecaster: Optional[RRForecaster] = None
) -> DecisionPolicy:
    """Thin shim from the deprecated string API onto policy objects."""
    if mode == "oracle":
        return OraclePolicy()
    if mode == "reactive":
        return ReactivePolicy()
    if mode == "forecast":
        return ForecastPolicy(forecaster)
    raise SearchError(f"unknown decision mode {mode!r}")
