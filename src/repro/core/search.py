"""Configuration search strategies (paper §3.7 and baselines).

* :class:`ConfigurationOptimizer` — Rafiki's GA over the surrogate
  (Equation 4): thousands of ~45 us surrogate queries instead of
  7-minute benchmark samples.
* :class:`ExhaustiveSearch` — the grid search the paper uses as the
  theoretical upper bound (80 configurations per workload in §4.8),
  measured on the *real* (simulated) server.
* :class:`GreedySearch` — one-parameter-at-a-time sweeping, the "obvious
  technique" §4.6 shows is suboptimal because it ignores parameter
  interdependencies.
* :class:`RandomSearch` — same budget as the GA, no structure; an
  ablation baseline.

All searches report a cost ledger so the §4.8 claim (GA+surrogate uses
~1/10,000 of exhaustive search's benchmarking time) can be recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.bench.ycsb import YCSBBenchmark
from repro.config.space import Configuration
from repro.core.surrogate import SurrogateModel
from repro.datastore.base import Datastore
from repro.errors import SearchError
from repro.ga.algorithm import GAResult, GeneticAlgorithm
from repro.ga.encoding import ConfigurationEncoder
from repro.runtime.events import EventBus
from repro.sim.rng import SeedLike, SeedSequence, derive_rng
from repro.workload.spec import WorkloadSpec

#: Wall-clock cost of one real benchmark sample: ~2 min of loading plus
#: 5 min of stable metric collection (paper §4.8).
SAMPLE_WALL_SECONDS = (2 + 5) * 60.0
#: The paper's measured surrogate latency: ~45 us per evaluation (§4.8).
SURROGATE_QUERY_SECONDS = 45e-6


@dataclass
class OptimizationResult:
    """A chosen configuration plus the cost of finding it."""

    configuration: Configuration
    predicted_throughput: float
    evaluations: int                  # surrogate queries or benchmark runs
    equivalent_wall_seconds: float    # what the search "cost"
    strategy: str
    history: List[float] = field(default_factory=list)

    def __repr__(self) -> str:
        return (
            f"OptimizationResult({self.strategy}, "
            f"pred={self.predicted_throughput:,.0f} ops/s, "
            f"{self.evaluations} evals)"
        )


class ConfigurationOptimizer:
    """Rafiki's online search: GA over the trained surrogate."""

    def __init__(
        self,
        surrogate: SurrogateModel,
        parameters: Optional[Sequence[str]] = None,
        population_size: int = 48,
        generations: int = 70,
        seed_default: bool = True,
        uncertainty_penalty: float = 0.0,
        batched: bool = True,
        bus: Optional[EventBus] = None,
    ):
        """``seed_default`` keeps the vendor default as a candidate
        floor: after the GA finishes, the default wins if the surrogate
        scores it higher than anything evolution found.  (Injecting it
        into the population instead collapses diversity around it.)

        ``uncertainty_penalty`` (an extension beyond the paper) subtracts
        ``k x ensemble-spread`` from the fitness, discouraging the GA
        from chasing over-predictions in sparsely sampled corners.

        ``batched=True`` (the default) scores the whole GA population
        per generation in one surrogate call; ``batched=False`` keeps
        the per-individual reference path.  Both return bit-identical
        results under the same seed; batched is ~an order of magnitude
        faster (see ``benchmarks/perf/``).  ``bus`` receives
        ``search.*`` progress events when given.
        """
        self.surrogate = surrogate
        names = tuple(parameters or surrogate.feature_parameters)
        if names != surrogate.feature_parameters:
            raise SearchError(
                "optimizer parameters must match the surrogate's features"
            )
        self.encoder = ConfigurationEncoder(surrogate.space, names)
        self.population_size = population_size
        self.generations = generations
        self.seed_default = seed_default
        self.uncertainty_penalty = uncertainty_penalty
        self.batched = batched
        self.bus = bus

    def _fitness_batch(self, read_ratio: float):
        """Population-at-a-time fitness: one member walk per generation."""

        def fitness_batch(genes_matrix: np.ndarray) -> np.ndarray:
            rows = self.encoder.features_batch(genes_matrix, read_ratio)
            if self.uncertainty_penalty > 0.0:
                mean, spread = self.surrogate.predict_mean_std(rows)
                return mean - self.uncertainty_penalty * spread
            return self.surrogate.predict_features(rows)

        return fitness_batch

    def _fitness_scalar(self, read_ratio: float):
        """Per-individual reference fitness (one row per call), routed
        through the same one-pass ``predict_mean_std`` so mean and
        spread cost a single ensemble walk."""

        def fitness(genes: np.ndarray) -> float:
            row = self.encoder.features(genes, read_ratio)[None, :]
            if self.uncertainty_penalty > 0.0:
                mean, spread = self.surrogate.predict_mean_std(row)
                return float(mean[0] - self.uncertainty_penalty * spread[0])
            return float(self.surrogate.predict_features(row)[0])

        return fitness

    def optimize(
        self,
        read_ratio: float,
        seed: SeedLike = 0,
        seed_configs: Optional[Sequence[Configuration]] = None,
    ) -> OptimizationResult:
        """Equation 3 via Equation 4: argmax_C fnet(W, C)."""
        if not (0.0 <= read_ratio <= 1.0):
            raise SearchError("read_ratio must be in [0, 1]")

        fitness = self._fitness_scalar(read_ratio)
        ga = GeneticAlgorithm(
            encoder=self.encoder,
            fitness_fn=None if self.batched else fitness,
            fitness_batch_fn=self._fitness_batch(read_ratio) if self.batched else None,
            population_size=self.population_size,
            generations=self.generations,
            bus=self.bus,
        )
        initial = (
            [self.encoder.encode(c) for c in seed_configs] if seed_configs else None
        )
        result: GAResult = ga.run(seed=seed, initial=initial)
        best_config = result.best_configuration
        best_fitness = result.best_fitness
        evaluations = result.evaluations
        if self.seed_default:
            default = self.surrogate.space.default_configuration()
            default_fitness = fitness(self.encoder.encode(default))
            evaluations += 1
            if default_fitness > best_fitness:
                best_config, best_fitness = default, default_fitness
        return OptimizationResult(
            configuration=best_config,
            predicted_throughput=best_fitness,
            evaluations=evaluations,
            equivalent_wall_seconds=evaluations * SURROGATE_QUERY_SECONDS,
            strategy="rafiki-ga",
            history=result.history,
        )


class ExhaustiveSearch:
    """Grid search with real benchmarks: the theoretical best (§4.8)."""

    def __init__(
        self,
        datastore: Datastore,
        parameters: Sequence[str],
        resolution: int = 3,
        benchmark: Optional[YCSBBenchmark] = None,
        max_configs: Optional[int] = 80,
    ):
        if resolution < 2:
            raise SearchError("grid resolution must be >= 2")
        self.datastore = datastore
        self.parameters = tuple(parameters)
        self.resolution = resolution
        self.benchmark = benchmark or YCSBBenchmark(datastore)
        self.max_configs = max_configs

    def grid_configurations(self) -> List[Configuration]:
        configs = list(self.datastore.space.grid(self.parameters, self.resolution))
        if self.max_configs is not None and len(configs) > self.max_configs:
            # Deterministic thinning: keep an evenly spaced subset, as
            # the paper's "80 configuration sets per workload".
            idx = np.linspace(0, len(configs) - 1, self.max_configs).astype(int)
            configs = [configs[i] for i in np.unique(idx)]
        return configs

    def optimize(self, workload: WorkloadSpec, seed: int = 0) -> OptimizationResult:
        """Benchmark every grid point; return the measured best."""
        seeds = SeedSequence(seed)
        best_config, best_tp = None, -np.inf
        history: List[float] = []
        configs = self.grid_configurations()
        for i, config in enumerate(configs):
            tp = self.benchmark.run(config, workload, seed=seeds.stream(f"grid{i}")).mean_throughput
            history.append(max(best_tp, tp))
            if tp > best_tp:
                best_config, best_tp = config, tp
        return OptimizationResult(
            configuration=best_config,
            predicted_throughput=best_tp,
            evaluations=len(configs),
            equivalent_wall_seconds=len(configs) * SAMPLE_WALL_SECONDS,
            strategy="exhaustive-grid",
            history=history,
        )


class GreedySearch:
    """One-parameter-at-a-time sweep on the surrogate.

    Tunes each parameter to its locally best value while holding the
    others fixed, in ranking order, a single pass — the strategy §4.6
    argues cannot find interdependent optima (Figure 6).
    """

    def __init__(
        self,
        surrogate: SurrogateModel,
        resolution: int = 8,
    ):
        self.surrogate = surrogate
        self.resolution = resolution

    def optimize(self, read_ratio: float) -> OptimizationResult:
        space = self.surrogate.space
        current = space.default_configuration()
        evaluations = 0
        history: List[float] = []
        for name in self.surrogate.feature_parameters:
            # Score the whole per-parameter sweep in one surrogate call
            # instead of one ensemble walk per grid value.
            values = list(space[name].grid(self.resolution))
            candidates = [current.with_updates(**{name: v}) for v in values]
            rows = np.stack(
                [self.surrogate.encode(read_ratio, c) for c in candidates]
            )
            preds = self.surrogate.predict_features(rows)
            evaluations += len(values)
            best_idx = int(np.argmax(preds))
            current = current.with_updates(**{name: values[best_idx]})
            history.append(float(preds[best_idx]))
        final_tp = self.surrogate.predict(read_ratio, current)
        evaluations += 1
        return OptimizationResult(
            configuration=current,
            predicted_throughput=float(final_tp),
            evaluations=evaluations,
            equivalent_wall_seconds=evaluations * SURROGATE_QUERY_SECONDS,
            strategy="greedy-ofat",
            history=history,
        )


class RandomSearch:
    """Uniform random probing of the surrogate at a fixed budget.

    Candidates are sampled up front (same RNG stream as the old
    per-config loop) and scored in ``chunk_size`` blocks, so the
    surrogate runs each member network ~budget/chunk_size times instead
    of once per configuration.
    """

    def __init__(
        self, surrogate: SurrogateModel, budget: int = 3400, chunk_size: int = 512
    ):
        if budget < 1:
            raise SearchError("budget must be positive")
        if chunk_size < 1:
            raise SearchError("chunk_size must be positive")
        self.surrogate = surrogate
        self.budget = budget
        self.chunk_size = chunk_size

    def optimize(self, read_ratio: float, seed: SeedLike = 0) -> OptimizationResult:
        rng = derive_rng(seed)
        space = self.surrogate.space
        names = self.surrogate.feature_parameters
        configs = [
            space.sample_configuration(rng, names) for _ in range(self.budget)
        ]
        preds = np.empty(self.budget)
        for start in range(0, self.budget, self.chunk_size):
            block = configs[start : start + self.chunk_size]
            rows = np.stack([self.surrogate.encode(read_ratio, c) for c in block])
            preds[start : start + len(block)] = self.surrogate.predict_features(rows)
        best_idx = int(np.argmax(preds))
        running_best = np.maximum.accumulate(preds)
        return OptimizationResult(
            configuration=configs[best_idx],
            predicted_throughput=float(preds[best_idx]),
            evaluations=self.budget,
            equivalent_wall_seconds=self.budget * SURROGATE_QUERY_SECONDS,
            strategy="random-search",
            history=[float(v) for v in running_best],
        )
