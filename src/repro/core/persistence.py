"""Persistence for trained surrogates.

Rafiki's offline phase costs hours of (real-world) benchmarking; the
online phase may run in a different process on the database host.  These
helpers serialize a trained :class:`~repro.core.surrogate.SurrogateModel`
— ensemble weights, scalers, and feature schema — to a self-describing
JSON document, and restore it against a configuration space.

JSON keeps the artifact human-inspectable and dependency-free; the
weight payload for a paper-sized ensemble (14 nets x 163 weights) is a
few hundred kilobytes.

Files are written through :mod:`repro.recovery.atomic` — temp file +
fsync + rename with a CRC32 footer — so a kill mid-save leaves the old
artifact intact, and :func:`load_surrogate` rejects truncated or
bit-flipped files with :class:`~repro.errors.PersistenceError` instead
of leaking ``JSONDecodeError``/``KeyError``.  Pre-checksum files written
by older builds still load (their corruption is undetectable beyond JSON
validity).
"""

from __future__ import annotations

import pathlib
from typing import Dict, Union

import numpy as np

from repro.config.space import ConfigurationSpace
from repro.core.surrogate import SurrogateModel
from repro.errors import PersistenceError, TrainingError
from repro.ml.ensemble import EnsembleConfig
from repro.ml.network import FeedForwardNetwork
from repro.ml.scaler import StandardScaler
from repro.recovery.atomic import read_artifact, write_artifact

FORMAT_VERSION = 1

SURROGATE_KIND = "surrogate"


def _scaler_to_dict(scaler: StandardScaler) -> Dict:
    if not scaler.is_fitted:
        raise TrainingError("cannot serialize an unfitted scaler")
    return {"mean": scaler.mean_.tolist(), "scale": scaler.scale_.tolist()}


def _scaler_from_dict(blob: Dict) -> StandardScaler:
    scaler = StandardScaler()
    scaler.mean_ = np.asarray(blob["mean"], dtype=float)
    scaler.scale_ = np.asarray(blob["scale"], dtype=float)
    return scaler


def surrogate_to_dict(surrogate: SurrogateModel) -> Dict:
    """Serialize a fitted surrogate to a JSON-ready dictionary."""
    if not surrogate.is_fitted:
        raise TrainingError("cannot serialize an unfitted surrogate")
    ensemble = surrogate.ensemble
    return {
        "format_version": FORMAT_VERSION,
        "space_name": surrogate.space.name,
        "feature_parameters": list(surrogate.feature_parameters),
        "ensemble_config": {
            "hidden_layers": list(ensemble.config.hidden_layers),
            "n_networks": ensemble.config.n_networks,
            "prune_fraction": ensemble.config.prune_fraction,
            "max_epochs": ensemble.config.max_epochs,
        },
        "x_scaler": _scaler_to_dict(ensemble.x_scaler),
        "y_scaler": _scaler_to_dict(ensemble.y_scaler),
        "networks": [
            {"layer_sizes": net.layer_sizes, "weights": net.get_weights().tolist()}
            for net in ensemble.networks
        ],
    }


def surrogate_from_dict(blob: Dict, space: ConfigurationSpace) -> SurrogateModel:
    """Restore a surrogate serialized by :func:`surrogate_to_dict`.

    The configuration space is supplied by the caller (it is code, not
    data); its parameters must cover the stored feature schema.
    """
    if blob.get("format_version") != FORMAT_VERSION:
        raise TrainingError(
            f"unsupported surrogate format {blob.get('format_version')!r}"
        )
    features = blob["feature_parameters"]
    missing = [name for name in features if name not in space]
    if missing:
        raise TrainingError(f"space lacks stored feature parameters: {missing}")

    cfg = blob["ensemble_config"]
    surrogate = SurrogateModel(
        space,
        features,
        EnsembleConfig(
            hidden_layers=tuple(cfg["hidden_layers"]),
            n_networks=cfg["n_networks"],
            prune_fraction=cfg["prune_fraction"],
            max_epochs=cfg["max_epochs"],
        ),
    )
    ensemble = surrogate.ensemble
    ensemble.x_scaler = _scaler_from_dict(blob["x_scaler"])
    ensemble.y_scaler = _scaler_from_dict(blob["y_scaler"])
    networks = []
    for net_blob in blob["networks"]:
        net = FeedForwardNetwork(net_blob["layer_sizes"], rng=np.random.default_rng(0))
        net.set_weights(np.asarray(net_blob["weights"], dtype=float))
        networks.append(net)
    if not networks:
        raise TrainingError("stored surrogate has no networks")
    ensemble.networks = networks
    return surrogate


def save_surrogate(surrogate: SurrogateModel, path: Union[str, pathlib.Path]) -> None:
    """Atomically write a fitted surrogate to ``path`` as checksummed JSON."""
    payload = surrogate_to_dict(surrogate)
    write_artifact(path, payload, kind=SURROGATE_KIND, version=FORMAT_VERSION)


def load_surrogate(
    path: Union[str, pathlib.Path],
    space: ConfigurationSpace,
    events=None,
) -> SurrogateModel:
    """Read a surrogate written by :func:`save_surrogate`.

    Raises :class:`PersistenceError` for missing, truncated, or corrupt
    files — including structurally damaged payloads that parse as JSON
    but no longer describe a surrogate.  ``events`` (an EventBus)
    receives ``recovery.corrupt_artifact`` before a corruption raise.
    """
    blob = read_artifact(path, kind=SURROGATE_KIND, allow_legacy=True, events=events)
    try:
        return surrogate_from_dict(blob, space)
    except TrainingError:
        raise  # semantic mismatch (version, feature schema), not corruption
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(
            f"corrupt surrogate artifact {path}: {exc!r}"
        ) from exc
