"""The Rafiki middleware (paper Figure 1).

:class:`RafikiPipeline` runs the offline phases — workload
characterization, ANOVA parameter identification, data collection,
surrogate training — and produces a :class:`Rafiki` instance: the online
component that, given an observed read ratio, searches the surrogate
with a GA and returns a close-to-optimal configuration in seconds.

The §3.8 "DBA level of intervention" is the constructor signature: the
DBA supplies the performance metric (throughput, via the benchmark), the
eligible parameter list with valid ranges (the configuration space), and
a representative trace (or a base workload spec).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.bench.collection import DataCollectionCampaign
from repro.bench.dataset import PerformanceDataset
from repro.bench.ycsb import YCSBBenchmark
from repro.config.space import Configuration
from repro.core.anova import (
    AnovaRanking,
    consolidate_memtable_parameters,
    rank_parameters,
    select_key_parameters,
)
from repro.core.cache import RecommendationCache
from repro.core.search import ConfigurationOptimizer, OptimizationResult
from repro.core.surrogate import SurrogateModel
from repro.datastore.base import Datastore
from repro.datastore.scylla import ScyllaLike
from repro.errors import TrainingError
from repro.ml.ensemble import EnsembleConfig
from repro.runtime.backend import ExecutionBackend
from repro.runtime.deprecation import warn_deprecated
from repro.runtime.events import EventBus, callback_subscriber
from repro.sim.rng import SeedSequence
from repro.workload.characterize import WorkloadCharacterization, characterize_trace
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import Trace


@dataclass
class PipelineReport:
    """Everything the offline pipeline produced, for inspection."""

    characterization: Optional[WorkloadCharacterization]
    ranking: Optional[AnovaRanking]
    key_parameters: List[str]
    dataset: PerformanceDataset
    surrogate: SurrogateModel


class Rafiki:
    """The online tuner: observed workload in, configuration out."""

    def __init__(
        self,
        datastore: Datastore,
        surrogate: SurrogateModel,
        key_parameters: Sequence[str],
        seed: int = 0,
        rr_cache_resolution: float = 0.05,
        cache_capacity: int = 128,
        events: Optional[EventBus] = None,
    ):
        self.datastore = datastore
        self.surrogate = surrogate
        self.key_parameters = tuple(key_parameters)
        self.events = events
        self.optimizer = ConfigurationOptimizer(
            surrogate, self.key_parameters, bus=events
        )
        self.seeds = SeedSequence(seed)
        # Validates rr_cache_resolution > 0 up front: a zero/negative
        # resolution used to surface as a ZeroDivisionError at the first
        # recommend() call.
        self.cache = RecommendationCache(
            resolution=rr_cache_resolution, capacity=cache_capacity
        )

    @property
    def rr_cache_resolution(self) -> float:
        return self.cache.resolution

    def recommend(self, read_ratio: float, use_cache: bool = True) -> OptimizationResult:
        """Close-to-optimal configuration for the observed read ratio.

        Results are cached on a quantized RR grid: when the workload
        oscillates between regimes (Figure 3), revisiting a regime is
        free — part of how Rafiki reacts within seconds.  The cache is
        LRU-bounded with hit/miss/eviction stats on ``self.cache``.
        """
        key = self.cache.quantize(read_ratio)
        if use_cache:
            cached = self.cache.get(key)
            if cached is not None:
                return cached
        result = self.optimizer.optimize(
            key, seed=self.seeds.stream(f"search-rr{key}")
        )
        self.cache.put(key, result)
        return result

    def predicted_throughput(self, read_ratio: float, config: Configuration) -> float:
        return self.surrogate.predict(read_ratio, config)

    def predicted_mean_std(
        self, read_ratio: float, config: Configuration
    ) -> tuple:
        """Predicted AOPS and ensemble spread for one configuration.

        The online controller's canary guard uses the spread to widen
        its rollback threshold where the surrogate is uncertain.
        """
        row = self.surrogate.encode(read_ratio, config)[None, :]
        mean, std = self.surrogate.predict_mean_std(row)
        return float(mean[0]), float(std[0])

    # -- persistence -----------------------------------------------------------

    def save(self, path) -> None:
        """Persist the trained surrogate (the expensive artifact).

        The datastore and key-parameter schema are code; only the model
        weights travel.  Restore with :meth:`load`.
        """
        from repro.core.persistence import save_surrogate

        save_surrogate(self.surrogate, path)

    @classmethod
    def load(cls, path, datastore: Datastore, seed: int = 0) -> "Rafiki":
        """Rebuild a Rafiki from a surrogate saved by :meth:`save`."""
        from repro.core.persistence import load_surrogate

        surrogate = load_surrogate(path, datastore.space)
        return cls(datastore, surrogate, surrogate.feature_parameters, seed=seed)


class RafikiPipeline:
    """Offline phases: characterize -> ANOVA -> collect -> train.

    Execution strategy and progress reporting are injected: ``backend``
    decides how the embarrassingly parallel stages (ANOVA sweeps, the
    collection campaign, ensemble training) are scheduled, and ``events``
    receives structured progress on the ``pipeline.*`` / ``anova.*`` /
    ``collect.*`` topics.  The legacy ``progress`` string callback is a
    deprecated shim, bridged onto the bus.
    """

    def __init__(
        self,
        datastore: Datastore,
        base_workload: WorkloadSpec,
        benchmark: Optional[YCSBBenchmark] = None,
        ensemble_config: Optional[EnsembleConfig] = None,
        n_workloads: int = 11,
        n_configurations: int = 20,
        n_faulty: int = 20,
        anova_repeats: int = 2,
        key_parameter_count: int = 5,
        seed: int = 0,
        cassandra_ranking: Optional[AnovaRanking] = None,
        progress: Optional[Callable[[str], None]] = None,
        backend: Optional[ExecutionBackend] = None,
        events: Optional[EventBus] = None,
    ):
        self.datastore = datastore
        self.base_workload = base_workload
        self.benchmark = benchmark or YCSBBenchmark(datastore)
        self.ensemble_config = ensemble_config
        self.n_workloads = n_workloads
        self.n_configurations = n_configurations
        self.n_faulty = n_faulty
        self.anova_repeats = anova_repeats
        self.key_parameter_count = key_parameter_count
        self.seed = seed
        self.cassandra_ranking = cassandra_ranking
        self.backend = backend
        self.events = events or EventBus()
        if progress is not None:  # deprecated: subscribe the callback
            warn_deprecated(
                "pipeline.progress",
                "RafikiPipeline(progress=...) is deprecated; subscribe to "
                "'pipeline.*' events on the EventBus instead",
            )
            self.events.subscribe(callback_subscriber(progress))

    def _stage(self, message: str, **payload) -> None:
        self.events.publish("pipeline.stage", message, **payload)

    # -- stage 1 ------------------------------------------------------------------

    def characterize(self, trace: Trace) -> WorkloadCharacterization:
        """§3.3: RR windows + exponential KRD fit from a raw trace."""
        self._stage("characterizing workload trace", stage="characterize")
        return characterize_trace(trace)

    # -- stage 2 ------------------------------------------------------------------

    def identify_key_parameters(self) -> tuple:
        """§3.4: OFAT ANOVA ranking, knee cut, memtable consolidation.

        For ScyllaDB the paper's §4.10 correction applies: the internal
        auto-tuner contaminates direct ANOVA, so we start from the
        Cassandra ranking (if provided), strip auto-tuned parameters, and
        top up by variance until five parameters remain.
        """
        if isinstance(self.datastore, ScyllaLike) and self.cassandra_ranking is not None:
            self._stage(
                "deriving ScyllaDB key parameters from Cassandra ANOVA",
                stage="identify",
            )
            ranking = self.cassandra_ranking.without(
                self.datastore.autotuned_parameters
            )
            selected = self._top_up(ranking, self.key_parameter_count)
            return ranking, selected

        self._stage("running one-factor-at-a-time ANOVA", stage="identify")
        ranking = rank_parameters(
            self.datastore,
            self.base_workload,
            repeats=self.anova_repeats,
            benchmark=self.benchmark,
            seed=self.seed,
            backend=self.backend,
            events=self.events,
        )
        selected = select_key_parameters(ranking)
        # Consolidate the flush-parameter family (§4.5), then keep the
        # paper's "top parameters" count, topping up from the ranking if
        # consolidation shrank the set ("adding in new parameters, sorted
        # by variance, until 5 parameters are in the set", §4.10).
        selected = consolidate_memtable_parameters(selected)
        if len(selected) < self.key_parameter_count:
            selected = self._top_up(ranking, self.key_parameter_count, seed_list=selected)
        return ranking, selected[: self.key_parameter_count]

    def _top_up(self, ranking: AnovaRanking, count: int, seed_list=()) -> List[str]:
        """Walk the ranking, applying the §4.5 consolidation rule, until
        ``count`` parameters are collected."""
        selected = list(seed_list)
        for effect in ranking:
            candidate = consolidate_memtable_parameters([*selected, effect.name])
            for name in candidate:
                if name not in selected:
                    selected.append(name)
            if len(selected) >= count:
                break
        return selected[:count]

    # -- stage 3 ------------------------------------------------------------------

    def collect(self, key_parameters: Sequence[str]) -> PerformanceDataset:
        """§3.5/§4.2: the 11x20 campaign with faulty samples dropped."""
        self._stage("collecting training data", stage="collect")
        campaign = DataCollectionCampaign(
            self.datastore,
            self.base_workload,
            key_parameters=key_parameters,
            n_workloads=self.n_workloads,
            n_configurations=self.n_configurations,
            n_faulty=self.n_faulty,
            benchmark=self.benchmark,
            seed=self.seed,
            backend=self.backend,
            events=self.events,
        )
        return campaign.run()

    # -- stage 4 ------------------------------------------------------------------

    def train(
        self, dataset: PerformanceDataset, key_parameters: Sequence[str]
    ) -> SurrogateModel:
        """§3.6: fit the Bayesian-regularized DNN ensemble."""
        self._stage("training surrogate model", stage="train")
        surrogate = SurrogateModel(
            self.datastore.space,
            key_parameters,
            ensemble_config=self.ensemble_config,
        )
        surrogate.fit(dataset, seed=self.seed, backend=self.backend)
        return surrogate

    # -- all together ----------------------------------------------------------------

    def run(
        self,
        trace: Optional[Trace] = None,
        key_parameters: Optional[Sequence[str]] = None,
        dataset: Optional[PerformanceDataset] = None,
    ) -> tuple:
        """Run the offline pipeline; returns ``(rafiki, report)``.

        Stages can be skipped by supplying their outputs (a pre-computed
        key-parameter list or dataset), which the experiment harnesses
        use to share the expensive collection step.
        """
        characterization = self.characterize(trace) if trace is not None else None

        ranking: Optional[AnovaRanking] = None
        if key_parameters is None:
            ranking, key_parameters = self.identify_key_parameters()
        key_parameters = list(key_parameters)
        if not key_parameters:
            raise TrainingError("no key parameters identified")

        if dataset is None:
            dataset = self.collect(key_parameters)
        surrogate = self.train(dataset, key_parameters)

        rafiki = Rafiki(
            self.datastore,
            surrogate,
            key_parameters,
            seed=self.seed,
            events=self.events,
        )
        report = PipelineReport(
            characterization=characterization,
            ranking=ranking,
            key_parameters=key_parameters,
            dataset=dataset,
            surrogate=surrogate,
        )
        return rafiki, report
