"""Rafiki's core: the paper's primary contribution.

The five workflow stages (§3.1) map onto this package:

1. Workload characterization   -> :mod:`repro.workload.characterize`
2. Important-parameter ID      -> :mod:`repro.core.anova`
3. Data collection             -> :mod:`repro.bench.collection`
4. Surrogate modelling         -> :mod:`repro.core.surrogate`
5. Configuration optimization  -> :mod:`repro.core.search`

:class:`~repro.core.rafiki.Rafiki` glues them into the middleware, and
:class:`~repro.core.controller.OnlineController` applies it to a live
workload stream.
"""

from repro.core.anova import (
    AnovaRanking,
    ParameterEffect,
    rank_parameters,
    select_key_parameters,
    consolidate_memtable_parameters,
)
from repro.core.surrogate import SurrogateModel
from repro.core.search import (
    ConfigurationOptimizer,
    ExhaustiveSearch,
    GreedySearch,
    RandomSearch,
    OptimizationResult,
    SAMPLE_WALL_SECONDS,
)
from repro.core.cache import CacheStats, RecommendationCache
from repro.core.policies import (
    DecisionPolicy,
    ForecastPolicy,
    HysteresisPolicy,
    OraclePolicy,
    ReactivePolicy,
    WindowObservation,
    make_policy,
)
from repro.core.rafiki import Rafiki, RafikiPipeline, PipelineReport
from repro.core.controller import ControllerEvent, OnlineController, RetryPolicy
from repro.core.persistence import load_surrogate, save_surrogate

__all__ = [
    "CacheStats",
    "RecommendationCache",
    "DecisionPolicy",
    "OraclePolicy",
    "ReactivePolicy",
    "ForecastPolicy",
    "HysteresisPolicy",
    "WindowObservation",
    "make_policy",
    "AnovaRanking",
    "ParameterEffect",
    "rank_parameters",
    "select_key_parameters",
    "consolidate_memtable_parameters",
    "SurrogateModel",
    "ConfigurationOptimizer",
    "ExhaustiveSearch",
    "GreedySearch",
    "RandomSearch",
    "OptimizationResult",
    "SAMPLE_WALL_SECONDS",
    "Rafiki",
    "RafikiPipeline",
    "PipelineReport",
    "OnlineController",
    "ControllerEvent",
    "RetryPolicy",
    "save_surrogate",
    "load_surrogate",
]
