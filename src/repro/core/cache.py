"""Bounded recommendation cache for the online tuner.

:class:`~repro.core.rafiki.Rafiki` caches search results on a quantized
read-ratio grid: when the workload oscillates between regimes
(Figure 3), revisiting a regime costs a dict lookup instead of a GA
search — part of how Rafiki reacts within seconds.  The seed repo used a
bare unbounded dict; this class adds LRU eviction with a capacity
bound (a production tuner runs for months, and per-tenant instances
multiply) and hit/miss/eviction statistics for observability.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from math import isfinite
from typing import Optional

from repro.core.search import OptimizationResult
from repro.errors import SearchError


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class RecommendationCache:
    """LRU cache of :class:`OptimizationResult` keyed by quantized RR."""

    def __init__(self, resolution: float = 0.05, capacity: int = 128):
        if not isfinite(resolution) or resolution <= 0.0:
            raise SearchError(
                f"rr_cache_resolution must be a positive number, got {resolution!r}"
            )
        if capacity < 1:
            raise SearchError(f"cache capacity must be >= 1, got {capacity!r}")
        self.resolution = float(resolution)
        self.capacity = int(capacity)
        self.stats = CacheStats()
        self._entries: "OrderedDict[float, OptimizationResult]" = OrderedDict()

    def quantize(self, read_ratio: float) -> float:
        """Snap a read ratio onto the cache grid.

        The key is clamped into [0, 1] so the boundary workloads
        (``read_ratio=0.0`` and ``1.0``) always land on valid grid keys
        even for resolutions that do not divide 1 evenly.
        """
        if not (0.0 <= read_ratio <= 1.0):
            raise SearchError("read_ratio must be in [0, 1]")
        key = round(read_ratio / self.resolution) * self.resolution
        return round(min(1.0, max(0.0, key)), 6)

    def get(self, key: float) -> Optional[OptimizationResult]:
        """Look up a quantized key, refreshing its recency on a hit."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: float, result: OptimizationResult) -> None:
        """Insert/overwrite an entry, evicting the least recently used
        entry when over capacity."""
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: float) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        return (
            f"RecommendationCache({len(self)}/{self.capacity} entries, "
            f"{self.stats.hits} hits, {self.stats.misses} misses, "
            f"{self.stats.evictions} evictions)"
        )
