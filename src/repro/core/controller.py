"""Online reconfiguration controller.

Applies Rafiki to a live workload: watch the RR of each 15-minute
window, and when the regime shifts, search the surrogate and push the
new configuration to the server.  The paper's future work is minimizing
reconfiguration downtime; here a configurable penalty models the
disruption (cache demotion is already modelled inside ``reconfigure``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.config.space import Configuration
from repro.core.rafiki import Rafiki
from repro.datastore.base import Datastore
from repro.errors import SearchError
from repro.lsm.analytic import AnalyticLSMModel
from repro.sim.rng import SeedLike
from repro.workload.forecast import RRForecaster
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import DEFAULT_WINDOW_SECONDS


@dataclass
class ControllerEvent:
    """One window's outcome."""

    window_index: int
    read_ratio: float
    reconfigured: bool
    configuration: Configuration
    mean_throughput: float


@dataclass
class ControllerRun:
    """Full run summary."""

    events: List[ControllerEvent] = field(default_factory=list)

    @property
    def mean_throughput(self) -> float:
        if not self.events:
            raise SearchError("controller run is empty")
        return float(np.mean([e.mean_throughput for e in self.events]))

    @property
    def reconfiguration_count(self) -> int:
        return sum(1 for e in self.events if e.reconfigured)


class OnlineController:
    """Drives one simulated server through an RR window series."""

    #: How the controller knows the window's read ratio when it decides:
    #: "oracle"   — the current window's RR (the paper's setting: RR is
    #:              stationary within a window, so a few minutes of
    #:              observation plus a seconds-fast search approximate
    #:              knowing it up front);
    #: "reactive" — the previous window's RR (pure measurement lag);
    #: "forecast" — an online forecaster's one-step-ahead prediction
    #:              (the paper's future work, see repro.workload.forecast).
    DECISION_MODES = ("oracle", "reactive", "forecast")

    def __init__(
        self,
        datastore: Datastore,
        rafiki: Optional[Rafiki],
        base_workload: WorkloadSpec,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        rr_change_threshold: float = 0.08,
        reconfiguration_penalty_s: float = 5.0,
        decision_mode: str = "oracle",
        forecaster: Optional["RRForecaster"] = None,
        seed: SeedLike = 0,
    ):
        """``rafiki=None`` runs the static-default baseline."""
        if decision_mode not in self.DECISION_MODES:
            raise SearchError(f"unknown decision mode {decision_mode!r}")
        if decision_mode == "forecast" and forecaster is None:
            raise SearchError("forecast mode needs a forecaster")
        self.datastore = datastore
        self.rafiki = rafiki
        self.base_workload = base_workload
        self.window_seconds = window_seconds
        self.rr_change_threshold = rr_change_threshold
        self.reconfiguration_penalty_s = reconfiguration_penalty_s
        self.decision_mode = decision_mode
        self.forecaster = forecaster
        self.seed = seed

    def run(self, rr_series: Sequence[float], load: bool = True) -> ControllerRun:
        """Replay an RR window series against one long-lived server."""
        if len(rr_series) == 0:
            raise SearchError("empty RR series")
        config = self.datastore.default_configuration()
        model: AnalyticLSMModel = self.datastore.new_analytic_instance(
            config, profile=self.base_workload.to_profile(), seed=self.seed
        )
        if load:
            model.load(self.base_workload.n_keys)
            model.settle()

        run = ControllerRun()
        last_decision_rr: Optional[float] = None
        previous_rr: Optional[float] = None
        for w, rr in enumerate(rr_series):
            rr = float(np.clip(rr, 0.0, 1.0))
            decision_rr = self._decision_rr(rr, previous_rr)
            reconfigured = False
            if (
                self.rafiki is not None
                and decision_rr is not None
                and (
                    last_decision_rr is None
                    or abs(decision_rr - last_decision_rr) >= self.rr_change_threshold
                )
            ):
                new_config = self.rafiki.recommend(decision_rr).configuration
                if new_config != config:
                    model.reconfigure(self.datastore.effective_knobs(new_config))
                    config = new_config
                    reconfigured = True
                last_decision_rr = decision_rr
            if self.forecaster is not None:
                self.forecaster.update(rr)
            previous_rr = rr

            duration = self.window_seconds
            # Proactive (forecast-driven) reconfiguration happens at the
            # window boundary, overlapping idle time; reactive/oracle
            # reconfiguration eats into the window.
            proactive = self.decision_mode == "forecast"
            lost = (
                0.0
                if (proactive or not reconfigured)
                else self.reconfiguration_penalty_s
            )
            steps = model.run(rr, duration - lost, dt=1.0)
            window_ops = sum(s.throughput * s.dt for s in steps)
            run.events.append(
                ControllerEvent(
                    window_index=w,
                    read_ratio=rr,
                    reconfigured=reconfigured,
                    configuration=config,
                    # Downtime counts against the window's mean.
                    mean_throughput=window_ops / duration,
                )
            )
        return run

    def _decision_rr(self, current_rr: float, previous_rr: Optional[float]):
        """The RR the controller believes when choosing a configuration."""
        if self.decision_mode == "oracle":
            return current_rr
        if self.decision_mode == "reactive":
            return previous_rr  # None in the very first window: no info yet
        return float(np.clip(self.forecaster.predict(), 0.0, 1.0))
