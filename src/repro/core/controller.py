"""Online reconfiguration controller.

Applies Rafiki to a live workload: watch the RR of each 15-minute
window, and when the regime shifts, search the surrogate and push the
new configuration to the server.  The paper's future work is minimizing
reconfiguration downtime; here a configurable penalty models the
disruption (cache demotion is already modelled inside ``reconfigure``).

*What* to tune for each window is delegated to a
:class:`~repro.core.policies.DecisionPolicy`; the controller itself only
executes decisions (search, push, account for downtime).  The paper's
three modes remain available through the deprecated ``decision_mode``
string shim, which builds the equivalent policy stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.config.space import Configuration
from repro.core.policies import (
    DecisionPolicy,
    HysteresisPolicy,
    WindowObservation,
    make_policy,
)
from repro.core.rafiki import Rafiki
from repro.datastore.base import Datastore
from repro.errors import SearchError
from repro.lsm.analytic import AnalyticLSMModel
from repro.sim.rng import SeedLike
from repro.workload.forecast import RRForecaster
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import DEFAULT_WINDOW_SECONDS


@dataclass
class ControllerEvent:
    """One window's outcome."""

    window_index: int
    read_ratio: float
    reconfigured: bool
    configuration: Configuration
    mean_throughput: float


@dataclass
class ControllerRun:
    """Full run summary."""

    events: List[ControllerEvent] = field(default_factory=list)

    @property
    def mean_throughput(self) -> float:
        if not self.events:
            raise SearchError("controller run is empty")
        return float(np.mean([e.mean_throughput for e in self.events]))

    @property
    def reconfiguration_count(self) -> int:
        return sum(1 for e in self.events if e.reconfigured)


class OnlineController:
    """Drives one simulated server through an RR window series."""

    #: Deprecated string shim (see :mod:`repro.core.policies`):
    #: "oracle"   — the current window's RR (the paper's setting);
    #: "reactive" — the previous window's RR (pure measurement lag);
    #: "forecast" — an online forecaster's one-step-ahead prediction
    #:              (the paper's future work, see repro.workload.forecast).
    DECISION_MODES = ("oracle", "reactive", "forecast")

    def __init__(
        self,
        datastore: Datastore,
        rafiki: Optional[Rafiki],
        base_workload: WorkloadSpec,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        rr_change_threshold: float = 0.08,
        reconfiguration_penalty_s: float = 5.0,
        decision_mode: str = "oracle",
        forecaster: Optional["RRForecaster"] = None,
        policy: Optional[DecisionPolicy] = None,
        seed: SeedLike = 0,
    ):
        """``rafiki=None`` runs the static-default baseline.

        Pass ``policy`` to plug in any :class:`DecisionPolicy` — it is
        used verbatim, so wrap it in a
        :class:`~repro.core.policies.HysteresisPolicy` yourself if you
        want change-damping.  Without an explicit policy, the deprecated
        ``decision_mode`` string is translated into the equivalent
        policy wrapped with ``HysteresisPolicy(min_change=rr_change_threshold)``,
        reproducing the historical controller behaviour.
        """
        self.datastore = datastore
        self.rafiki = rafiki
        self.base_workload = base_workload
        self.window_seconds = window_seconds
        self.rr_change_threshold = rr_change_threshold
        self.reconfiguration_penalty_s = reconfiguration_penalty_s
        self.forecaster = forecaster
        self._passive_forecaster: Optional[RRForecaster] = None
        if policy is not None:
            self.policy = policy
        else:
            if decision_mode not in self.DECISION_MODES:
                raise SearchError(f"unknown decision mode {decision_mode!r}")
            self.policy = HysteresisPolicy(
                make_policy(decision_mode, forecaster),
                min_change=rr_change_threshold,
            )
            if forecaster is not None and decision_mode != "forecast":
                # Historical quirk kept for compatibility: a forecaster
                # passed alongside a non-forecast mode still observes
                # the series (useful for offline forecaster evaluation).
                self._passive_forecaster = forecaster
        self.decision_mode = getattr(self.policy, "name", "custom")
        self.seed = seed

    def run(self, rr_series: Sequence[float], load: bool = True) -> ControllerRun:
        """Replay an RR window series against one long-lived server."""
        if len(rr_series) == 0:
            raise SearchError("empty RR series")
        config = self.datastore.default_configuration()
        model: AnalyticLSMModel = self.datastore.new_analytic_instance(
            config, profile=self.base_workload.to_profile(), seed=self.seed
        )
        if load:
            model.load(self.base_workload.n_keys)
            model.settle()

        self.policy.reset()
        run = ControllerRun()
        previous_rr: Optional[float] = None
        for w, rr in enumerate(rr_series):
            rr = float(np.clip(rr, 0.0, 1.0))
            reconfigured = False
            if self.rafiki is not None:
                decision_rr = self.policy.decide(
                    WindowObservation(
                        index=w, read_ratio=rr, previous_read_ratio=previous_rr
                    )
                )
                if decision_rr is not None:
                    new_config = self.rafiki.recommend(decision_rr).configuration
                    if new_config != config:
                        model.reconfigure(self.datastore.effective_knobs(new_config))
                        config = new_config
                        reconfigured = True
            self.policy.observe(rr)
            if self._passive_forecaster is not None:
                self._passive_forecaster.update(rr)
            previous_rr = rr

            duration = self.window_seconds
            # Proactive (forecast-driven) reconfiguration happens at the
            # window boundary, overlapping idle time; reactive/oracle
            # reconfiguration eats into the window.
            lost = (
                0.0
                if (self.policy.proactive or not reconfigured)
                else self.reconfiguration_penalty_s
            )
            steps = model.run(rr, duration - lost, dt=1.0)
            window_ops = sum(s.throughput * s.dt for s in steps)
            run.events.append(
                ControllerEvent(
                    window_index=w,
                    read_ratio=rr,
                    reconfigured=reconfigured,
                    configuration=config,
                    # Downtime counts against the window's mean.
                    mean_throughput=window_ops / duration,
                )
            )
        return run
