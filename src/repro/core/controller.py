"""Online reconfiguration controller.

Applies Rafiki to a live workload: watch the RR of each 15-minute
window, and when the regime shifts, search the surrogate and push the
new configuration to the server.  The paper's future work is minimizing
reconfiguration downtime; here a configurable penalty models the
disruption (cache demotion is already modelled inside ``reconfigure``).

*What* to tune for each window is delegated to a
:class:`~repro.core.policies.DecisionPolicy`; the controller itself only
executes decisions (search, push, account for downtime).  The paper's
three modes remain available through the deprecated ``decision_mode``
string shim, which builds the equivalent policy stack.

Robustness (beyond the paper, which assumes every search and push
succeeds first try):

* **Retry with backoff** — transient search/push failures
  (:class:`~repro.errors.TransientError`, e.g. from an injected
  :class:`~repro.faults.FaultPlan`) are retried under a
  :class:`RetryPolicy`; the simulated backoff time is charged against
  the window, so flakiness costs throughput instead of crashing runs.
* **Degraded mode** — when the search or push budget is exhausted the
  controller falls back to the vendor default configuration (the
  paper's baseline) and keeps serving, publishing
  ``controller.degraded``.
* **Canary + rollback** — with ``canary_margin`` set, every freshly
  pushed configuration is canaried for one window: if the observed
  throughput undershoots the surrogate's prediction (normalized by a
  running observed/predicted ratio, widened by the ensemble's
  uncertainty from ``predict_mean_std``), the previous configuration is
  restored and ``controller.rollback`` published.
* **Multi-node operation** — ``n_nodes > 1`` drives a
  :class:`~repro.datastore.cluster.Cluster` instead of a single server,
  the target a :class:`~repro.faults.FaultInjector` needs for node
  crash / disk-slowdown faults.

All of it is event-audited (``controller.*`` / ``fault.*`` topics) and
deterministic: the same fault plan and seed reproduce the identical
event sequence.  With no fault plan, no canary, and one node, the run
is bit-identical to the fault-unaware controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.config.space import Configuration
from repro.core.policies import (
    DecisionPolicy,
    HysteresisPolicy,
    WindowObservation,
    make_policy,
)
from repro.core.rafiki import Rafiki
from repro.datastore.base import Datastore
from repro.datastore.cluster import Cluster
from repro.errors import SearchError, TransientError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.runtime.deprecation import warn_deprecated
from repro.runtime.events import EventBus
from repro.sim.rng import SeedLike
from repro.workload.forecast import RRForecaster
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import DEFAULT_WINDOW_SECONDS

#: Smoothing of the observed/predicted throughput ratio the canary
#: normalizes against (high = adapt fast to regime/fault shifts).
CANARY_RATIO_ALPHA = 0.5


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for search/push calls.

    Backoff is *simulated* time: every retry charges its backoff
    against the window it happens in.  ``deadline_s`` caps the total
    backoff one operation may accumulate regardless of attempts left.
    """

    max_attempts: int = 3
    backoff_s: float = 2.0
    backoff_factor: float = 2.0
    deadline_s: float = 60.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise SearchError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.deadline_s < 0:
            raise SearchError("backoff and deadline must be >= 0")
        if self.backoff_factor < 1.0:
            raise SearchError("backoff_factor must be >= 1")


@dataclass
class ControllerEvent:
    """One window's outcome."""

    window_index: int
    read_ratio: float
    reconfigured: bool
    configuration: Configuration
    mean_throughput: float
    rolled_back: bool = False
    degraded: bool = False


@dataclass
class ControllerRun:
    """Full run summary."""

    events: List[ControllerEvent] = field(default_factory=list)

    @property
    def mean_throughput(self) -> float:
        if not self.events:
            raise SearchError("controller run is empty")
        return float(np.mean([e.mean_throughput for e in self.events]))

    @property
    def reconfiguration_count(self) -> int:
        return sum(1 for e in self.events if e.reconfigured)

    @property
    def rollback_count(self) -> int:
        return sum(1 for e in self.events if e.rolled_back)

    @property
    def degraded_count(self) -> int:
        return sum(1 for e in self.events if e.degraded)


class OnlineController:
    """Drives one simulated server through an RR window series."""

    #: Deprecated string shim (see :mod:`repro.core.policies`):
    #: "oracle"   — the current window's RR (the paper's setting);
    #: "reactive" — the previous window's RR (pure measurement lag);
    #: "forecast" — an online forecaster's one-step-ahead prediction
    #:              (the paper's future work, see repro.workload.forecast).
    DECISION_MODES = ("oracle", "reactive", "forecast")

    def __init__(
        self,
        datastore: Datastore,
        rafiki: Optional[Rafiki],
        base_workload: WorkloadSpec,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        rr_change_threshold: float = 0.08,
        reconfiguration_penalty_s: float = 5.0,
        decision_mode: Optional[str] = None,
        forecaster: Optional["RRForecaster"] = None,
        policy: Optional[DecisionPolicy] = None,
        seed: SeedLike = 0,
        events: Optional[EventBus] = None,
        fault_plan: Optional[FaultPlan] = None,
        n_nodes: int = 1,
        replication_factor: int = 1,
        retry: Optional[RetryPolicy] = None,
        canary_margin: Optional[float] = None,
        canary_std_factor: float = 2.0,
    ):
        """``rafiki=None`` runs the static-default baseline.

        Pass ``policy`` to plug in any :class:`DecisionPolicy` — it is
        used verbatim, so wrap it in a
        :class:`~repro.core.policies.HysteresisPolicy` yourself if you
        want change-damping.  Without an explicit policy, the deprecated
        ``decision_mode`` string is translated into the equivalent
        policy wrapped with ``HysteresisPolicy(min_change=rr_change_threshold)``,
        reproducing the historical controller behaviour (the default is
        the paper's "oracle" mode).

        ``canary_margin`` enables the rollback guard: a canaried window
        whose observed/predicted throughput ratio drops more than
        ``margin + std_factor x (ensemble std / mean)`` below the
        running baseline ratio reverts the push.  Requires a ``rafiki``
        exposing ``predicted_mean_std``.
        """
        self.datastore = datastore
        self.rafiki = rafiki
        self.base_workload = base_workload
        self.window_seconds = window_seconds
        self.rr_change_threshold = rr_change_threshold
        self.reconfiguration_penalty_s = reconfiguration_penalty_s
        self.forecaster = forecaster
        self._passive_forecaster: Optional[RRForecaster] = None
        if policy is not None:
            self.policy = policy
        else:
            if decision_mode is not None:
                warn_deprecated(
                    "controller.decision_mode",
                    "OnlineController(decision_mode=...) is deprecated; pass a "
                    "DecisionPolicy via policy= instead",
                )
            mode = decision_mode if decision_mode is not None else "oracle"
            if mode not in self.DECISION_MODES:
                raise SearchError(f"unknown decision mode {mode!r}")
            self.policy = HysteresisPolicy(
                make_policy(mode, forecaster),
                min_change=rr_change_threshold,
            )
            if forecaster is not None and mode != "forecast":
                # Historical quirk kept for compatibility: a forecaster
                # passed alongside a non-forecast mode still observes
                # the series (useful for offline forecaster evaluation).
                self._passive_forecaster = forecaster
        self.decision_mode = getattr(self.policy, "name", "custom")
        self.seed = seed
        self.events = events or EventBus()
        if n_nodes < 1:
            raise SearchError("n_nodes must be >= 1")
        self.n_nodes = n_nodes
        self.replication_factor = replication_factor
        self.fault_plan = fault_plan
        if fault_plan is not None:
            fault_plan.validate()
            if fault_plan.max_node >= n_nodes:
                raise SearchError(
                    f"fault plan targets node {fault_plan.max_node} but the "
                    f"controller runs {n_nodes} node(s)"
                )
            if n_nodes == 1 and (
                fault_plan.node_crashes or fault_plan.disk_slowdowns
            ):
                raise SearchError(
                    "node crash/slowdown faults need a multi-node cluster "
                    "(n_nodes >= 2); a single server only takes "
                    "control-plane faults"
                )
        self.retry = retry or RetryPolicy()
        if canary_margin is not None:
            if not (0.0 <= canary_margin < 1.0):
                raise SearchError("canary_margin must be in [0, 1)")
            if rafiki is not None and not hasattr(rafiki, "predicted_mean_std"):
                raise SearchError(
                    "canary guard needs a rafiki exposing predicted_mean_std"
                )
        self.canary_margin = canary_margin
        self.canary_std_factor = canary_std_factor

    # -- resilient operations --------------------------------------------------

    def _publish(self, topic: str, message: str, **payload) -> None:
        self.events.publish(topic, message, **payload)

    def _attempt(
        self, kind: str, window: int, fn: Callable[[], object]
    ) -> Tuple[bool, object, float]:
        """Run ``fn`` under the retry policy.

        Returns ``(ok, result, lost_seconds)`` where ``lost_seconds`` is
        the simulated backoff spent on retries.  Only
        :class:`TransientError` is retried; anything else escapes.
        """
        lost = 0.0
        backoff = self.retry.backoff_s
        for attempt in range(1, self.retry.max_attempts + 1):
            try:
                return True, fn(), lost
            except TransientError:
                out_of_budget = (
                    attempt >= self.retry.max_attempts
                    or lost + backoff > self.retry.deadline_s
                )
                if out_of_budget:
                    return False, None, lost
                self._publish(
                    "controller.retry",
                    f"{kind} failed (window {window}, attempt {attempt}); "
                    f"retrying after {backoff:.1f}s",
                    kind=kind,
                    window=window,
                    attempt=attempt,
                    backoff_s=backoff,
                )
                lost += backoff
                backoff *= self.retry.backoff_factor
        return False, None, lost  # pragma: no cover - loop always returns

    def _make_server(self):
        """Fresh server (single analytic model or a multi-node cluster)."""
        profile = self.base_workload.to_profile()
        if self.n_nodes == 1:
            model = self.datastore.new_analytic_instance(
                self.datastore.default_configuration(),
                profile=profile,
                seed=self.seed,
            )
            return model, None
        cluster = Cluster(
            self.datastore,
            self.datastore.default_configuration(),
            n_nodes=self.n_nodes,
            replication_factor=self.replication_factor,
            n_shooters=self.n_nodes,
            profile=profile,
            seed=self.seed,
        )
        return cluster, cluster

    # -- the control loop ------------------------------------------------------

    def run(self, rr_series: Sequence[float], load: bool = True) -> ControllerRun:
        """Replay an RR window series against one long-lived server."""
        if len(rr_series) == 0:
            raise SearchError("empty RR series")
        default_config = self.datastore.default_configuration()
        config = default_config
        server, cluster = self._make_server()
        if load:
            server.load(self.base_workload.n_keys)
            server.settle()

        injector = (
            FaultInjector(self.fault_plan, events=self.events)
            if self.fault_plan is not None and not self.fault_plan.is_empty
            else None
        )
        canary_on = self.canary_margin is not None and self.rafiki is not None

        self.policy.reset()
        run = ControllerRun()
        previous_rr: Optional[float] = None
        ratio_baseline: Optional[float] = None    # EWMA of observed/predicted
        pending_canary: Optional[Configuration] = None  # config to roll back to
        redecide = False      # last window degraded: don't trust "hold"
        for w, rr in enumerate(rr_series):
            rr = float(np.clip(rr, 0.0, 1.0))
            reconfigured = False
            degraded = False
            rolled_back = False
            retry_lost = 0.0
            if injector is not None:
                injector.begin_window(w, cluster=cluster)
            if self.rafiki is not None:
                decision_rr = self.policy.decide(
                    WindowObservation(
                        index=w, read_ratio=rr, previous_read_ratio=previous_rr
                    )
                )
                if decision_rr is None and redecide:
                    # The previous window ended on a fallback config the
                    # policy believes was the intended one; hysteresis
                    # would hold forever.  Re-decide from the observed RR
                    # until a window completes healthy again.
                    decision_rr = rr
                if decision_rr is not None:
                    target, lost, degraded = self._decide_target(
                        w, decision_rr, injector, default_config
                    )
                    retry_lost += lost
                    if target is not None and target != config:
                        pushed, lost = self._push(w, server, target, injector)
                        retry_lost += lost
                        if pushed:
                            if canary_on and not degraded:
                                pending_canary = config
                            config = target
                            reconfigured = True
                        else:
                            degraded = True
                            self._publish(
                                "controller.degraded",
                                f"config push failed (window {w}); "
                                "keeping the current configuration",
                                reason="push",
                                window=w,
                            )
            self.policy.observe(rr)
            if self._passive_forecaster is not None:
                self._passive_forecaster.update(rr)
            previous_rr = rr

            duration = self.window_seconds
            # Proactive (forecast-driven) reconfiguration happens at the
            # window boundary, overlapping idle time; reactive/oracle
            # reconfiguration eats into the window.  Retry backoff is
            # always in-window lost time.
            lost = (
                0.0
                if (self.policy.proactive or not reconfigured)
                else self.reconfiguration_penalty_s
            )
            lost = min(lost + retry_lost, duration)
            steps = server.run(rr, duration - lost, dt=1.0)
            window_ops = sum(s.throughput * s.dt for s in steps)
            mean_throughput = window_ops / duration

            if canary_on:
                rolled_back, config, ratio_baseline, pending_canary = (
                    self._canary_check(
                        w, rr, config, mean_throughput,
                        ratio_baseline, pending_canary, server, injector,
                    )
                )
            redecide = degraded
            run.events.append(
                ControllerEvent(
                    window_index=w,
                    read_ratio=rr,
                    reconfigured=reconfigured,
                    configuration=config,
                    # Downtime counts against the window's mean.
                    mean_throughput=mean_throughput,
                    rolled_back=rolled_back,
                    degraded=degraded,
                )
            )
        return run

    # -- pieces of the loop ----------------------------------------------------

    def _decide_target(
        self,
        window: int,
        decision_rr: float,
        injector: Optional[FaultInjector],
        default_config: Configuration,
    ) -> Tuple[Optional[Configuration], float, bool]:
        """Search for the window's target config, surviving search faults.

        Returns ``(target, lost_seconds, degraded)``; a ``None`` target
        means "hold the current configuration".  A permanently failing
        search degrades to the vendor default — the paper's baseline is
        always a safe landing spot.
        """

        def do_search():
            if injector is not None:
                injector.check("search", window)
            return self.rafiki.recommend(decision_rr)

        ok, result, lost = self._attempt("search", window, do_search)
        if ok:
            return result.configuration, lost, False
        self._publish(
            "controller.degraded",
            f"search unavailable (window {window}); "
            "falling back to the default configuration",
            reason="search",
            window=window,
        )
        return default_config, lost, True

    def _push(
        self, window: int, server, target: Configuration,
        injector: Optional[FaultInjector],
    ) -> Tuple[bool, float]:
        """Push a configuration to the server under the retry policy."""

        def do_push():
            if injector is not None:
                injector.check("push", window)
            server.reconfigure(self.datastore.effective_knobs(target))
            return True

        ok, _, lost = self._attempt("push", window, do_push)
        return ok, lost

    def _canary_check(
        self,
        window: int,
        rr: float,
        config: Configuration,
        observed: float,
        ratio_baseline: Optional[float],
        pending_canary: Optional[Configuration],
        server,
        injector: Optional[FaultInjector],
    ):
        """Judge a canaried push against the surrogate's promise.

        The guard is unit-free: it tracks the EWMA of the
        observed/predicted throughput ratio (which absorbs the
        single-server-surrogate vs n-node-cluster scale factor) and
        rolls back when a canary window's ratio undershoots that
        baseline by more than ``canary_margin`` plus
        ``canary_std_factor`` times the ensemble's relative spread.
        """
        mean_pred, std_pred = self.rafiki.predicted_mean_std(rr, config)
        if mean_pred <= 0.0:
            return False, config, ratio_baseline, None
        ratio = observed / mean_pred
        if pending_canary is None:
            ratio_baseline = (
                ratio
                if ratio_baseline is None
                else CANARY_RATIO_ALPHA * ratio
                + (1.0 - CANARY_RATIO_ALPHA) * ratio_baseline
            )
            return False, config, ratio_baseline, None
        if ratio_baseline is None:
            # A push in the very first window has nothing to compare
            # against; accept it as the baseline.
            return False, config, ratio, None
        tolerance = self.canary_margin + self.canary_std_factor * (
            std_pred / mean_pred
        )
        allowed = ratio_baseline * max(0.0, 1.0 - tolerance)
        if ratio >= allowed:
            # Canary passed: fold the window into the baseline.
            ratio_baseline = (
                CANARY_RATIO_ALPHA * ratio
                + (1.0 - CANARY_RATIO_ALPHA) * ratio_baseline
            )
            return False, config, ratio_baseline, None
        # Canary failed: restore the previous configuration.  The revert
        # happens at the window boundary (no penalty charged); the
        # undershooting window is excluded from the baseline.
        self._publish(
            "controller.rollback",
            f"canary undershot prediction (window {window}): "
            f"observed/predicted {ratio:.2f} < allowed {allowed:.2f}",
            window=window,
            observed=observed,
            predicted=mean_pred,
            ratio=ratio,
            allowed=allowed,
            baseline=ratio_baseline,
        )
        pushed, _ = self._push(window, server, pending_canary, injector)
        if pushed:
            config = pending_canary
        else:
            self._publish(
                "controller.degraded",
                f"rollback push failed (window {window}); "
                "keeping the canaried configuration",
                reason="rollback-push",
                window=window,
            )
        return True, config, ratio_baseline, None
