"""Online reconfiguration controller (legacy single-tenant API).

Applies Rafiki to a live workload: watch the RR of each 15-minute
window, and when the regime shifts, search the surrogate and push the
new configuration to the server.

Historically this module owned the whole control loop.  That loop now
lives in the middleware service layer — a
:class:`~repro.middleware.session.TenantSession` runs the
observe -> decide -> actuate -> canary state machine against a
:class:`~repro.datastore.adapter.DatastoreAdapter`, and a
:class:`~repro.middleware.scheduler.MiddlewareScheduler` multiplexes
many such sessions over one shared surrogate.  ``OnlineController`` is
kept as a thin, fully compatible shim: :meth:`run` provisions a
single-tenant session with the legacy instant-push semantics and drives
it window by window, producing bit-identical results (throughputs,
reconfigurations, rollbacks, and the ``controller.*`` / ``fault.*``
event sequence) to the historical monolithic loop.

The guardrail vocabulary still lives here, because both the shim and
the middleware share it:

* :class:`RetryPolicy` — bounded exponential backoff for transient
  search/push failures; simulated backoff time is charged against the
  window, so flakiness costs throughput instead of crashing runs.
* Degraded mode — an exhausted search/push budget falls back to the
  vendor default configuration (the paper's baseline) and publishes
  ``controller.degraded``.
* Canary + rollback — with ``canary_margin`` set, a freshly pushed
  configuration is canaried for one window against the surrogate's
  promise (normalized by a running observed/predicted ratio, widened by
  the ensemble's uncertainty) and reverted on undershoot
  (``controller.rollback``).
* Multi-node operation — ``n_nodes > 1`` drives a
  :class:`~repro.datastore.cluster.Cluster`, the target a
  :class:`~repro.faults.FaultInjector` needs for node faults.

All of it is event-audited and deterministic: the same fault plan and
seed reproduce the identical event sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.config.space import Configuration
from repro.core.policies import (
    DecisionPolicy,
    HysteresisPolicy,
    make_policy,
)
from repro.core.rafiki import Rafiki
from repro.datastore.base import Datastore
from repro.errors import SearchError
from repro.faults.plan import FaultPlan
from repro.runtime.deprecation import warn_deprecated
from repro.runtime.events import EventBus
from repro.sim.rng import SeedLike
from repro.workload.forecast import RRForecaster
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import DEFAULT_WINDOW_SECONDS

#: Smoothing of the observed/predicted throughput ratio the canary
#: normalizes against (high = adapt fast to regime/fault shifts).
CANARY_RATIO_ALPHA = 0.5


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for search/push calls.

    Backoff is *simulated* time: every retry charges its backoff
    against the window it happens in.  ``deadline_s`` caps the total
    backoff one operation may accumulate regardless of attempts left.
    """

    max_attempts: int = 3
    backoff_s: float = 2.0
    backoff_factor: float = 2.0
    deadline_s: float = 60.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise SearchError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.deadline_s < 0:
            raise SearchError("backoff and deadline must be >= 0")
        if self.backoff_factor < 1.0:
            raise SearchError("backoff_factor must be >= 1")


@dataclass
class ControllerEvent:
    """One window's outcome."""

    window_index: int
    read_ratio: float
    reconfigured: bool
    configuration: Configuration
    mean_throughput: float
    rolled_back: bool = False
    degraded: bool = False
    #: Admission control deferred this whole window (nothing was served).
    shed: bool = False
    #: The window ran under detected config drift (mixed-config ring);
    #: canary EWMA / SLO scoring / surrogate observation must skip it.
    quarantined: bool = False


@dataclass
class ControllerRun:
    """Full run summary."""

    events: List[ControllerEvent] = field(default_factory=list)

    @property
    def mean_throughput(self) -> float:
        if not self.events:
            raise SearchError("controller run is empty")
        return float(np.mean([e.mean_throughput for e in self.events]))

    @property
    def reconfiguration_count(self) -> int:
        return sum(1 for e in self.events if e.reconfigured)

    @property
    def rollback_count(self) -> int:
        return sum(1 for e in self.events if e.rolled_back)

    @property
    def degraded_count(self) -> int:
        return sum(1 for e in self.events if e.degraded)

    @property
    def shed_count(self) -> int:
        return sum(1 for e in self.events if e.shed)


class OnlineController:
    """Drives one simulated server through an RR window series.

    Deprecated-but-stable: new code should build a
    :class:`~repro.middleware.session.TenantSession` (or a
    :class:`~repro.middleware.scheduler.MiddlewareScheduler` for more
    than one tenant); this class wraps exactly one session per
    :meth:`run` call.
    """

    #: Deprecated string shim (see :mod:`repro.core.policies`):
    #: "oracle"   — the current window's RR (the paper's setting);
    #: "reactive" — the previous window's RR (pure measurement lag);
    #: "forecast" — an online forecaster's one-step-ahead prediction
    #:              (the paper's future work, see repro.workload.forecast).
    DECISION_MODES = ("oracle", "reactive", "forecast")

    def __init__(
        self,
        datastore: Datastore,
        rafiki: Optional[Rafiki],
        base_workload: WorkloadSpec,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        rr_change_threshold: float = 0.08,
        reconfiguration_penalty_s: float = 5.0,
        decision_mode: Optional[str] = None,
        forecaster: Optional["RRForecaster"] = None,
        policy: Optional[DecisionPolicy] = None,
        seed: SeedLike = 0,
        events: Optional[EventBus] = None,
        fault_plan: Optional[FaultPlan] = None,
        n_nodes: int = 1,
        replication_factor: int = 1,
        retry: Optional[RetryPolicy] = None,
        canary_margin: Optional[float] = None,
        canary_std_factor: float = 2.0,
    ):
        """``rafiki=None`` runs the static-default baseline.

        Pass ``policy`` to plug in any :class:`DecisionPolicy` — it is
        used verbatim, so wrap it in a
        :class:`~repro.core.policies.HysteresisPolicy` yourself if you
        want change-damping.  Without an explicit policy, the deprecated
        ``decision_mode`` string is translated into the equivalent
        policy wrapped with ``HysteresisPolicy(min_change=rr_change_threshold)``,
        reproducing the historical controller behaviour (the default is
        the paper's "oracle" mode).

        ``canary_margin`` enables the rollback guard: a canaried window
        whose observed/predicted throughput ratio drops more than
        ``margin + std_factor x (ensemble std / mean)`` below the
        running baseline ratio reverts the push.  Requires a ``rafiki``
        exposing ``predicted_mean_std``.
        """
        self.datastore = datastore
        self.rafiki = rafiki
        self.base_workload = base_workload
        self.window_seconds = window_seconds
        self.rr_change_threshold = rr_change_threshold
        self.reconfiguration_penalty_s = reconfiguration_penalty_s
        self.forecaster = forecaster
        self._passive_forecaster: Optional[RRForecaster] = None
        if policy is not None:
            self.policy = policy
        else:
            if decision_mode is not None:
                warn_deprecated(
                    "controller.decision_mode",
                    "OnlineController(decision_mode=...) is deprecated; pass a "
                    "DecisionPolicy via policy= instead",
                )
            mode = decision_mode if decision_mode is not None else "oracle"
            if mode not in self.DECISION_MODES:
                raise SearchError(f"unknown decision mode {mode!r}")
            self.policy = HysteresisPolicy(
                make_policy(mode, forecaster),
                min_change=rr_change_threshold,
            )
            if forecaster is not None and mode != "forecast":
                # Historical quirk kept for compatibility: a forecaster
                # passed alongside a non-forecast mode still observes
                # the series (useful for offline forecaster evaluation).
                self._passive_forecaster = forecaster
        self.decision_mode = getattr(self.policy, "name", "custom")
        self.seed = seed
        self.events = events or EventBus()
        if n_nodes < 1:
            raise SearchError("n_nodes must be >= 1")
        self.n_nodes = n_nodes
        self.replication_factor = replication_factor
        self.fault_plan = fault_plan
        if fault_plan is not None:
            fault_plan.validate()
            if fault_plan.max_node >= n_nodes:
                raise SearchError(
                    f"fault plan targets node {fault_plan.max_node} but the "
                    f"controller runs {n_nodes} node(s)"
                )
            if n_nodes == 1 and (
                fault_plan.node_crashes or fault_plan.disk_slowdowns
            ):
                raise SearchError(
                    "node crash/slowdown faults need a multi-node cluster "
                    "(n_nodes >= 2); a single server only takes "
                    "control-plane faults"
                )
        self.retry = retry or RetryPolicy()
        if canary_margin is not None:
            if not (0.0 <= canary_margin < 1.0):
                raise SearchError("canary_margin must be in [0, 1)")
            if rafiki is not None and not hasattr(rafiki, "predicted_mean_std"):
                raise SearchError(
                    "canary guard needs a rafiki exposing predicted_mean_std"
                )
        self.canary_margin = canary_margin
        self.canary_std_factor = canary_std_factor

    # -- the control loop ------------------------------------------------------

    def make_session(self):
        """Build the single-tenant middleware session this shim drives.

        Lazy-imports the middleware layer: ``core`` sits below
        ``middleware`` in the import DAG (see
        ``scripts/check_layering.py``), and a deprecated shim reaching
        one layer up at call time is the sanctioned exception.
        """
        from repro.datastore.adapter import SimulatedDatastoreAdapter
        from repro.middleware.session import TenantSession

        adapter = SimulatedDatastoreAdapter(
            self.datastore,
            n_nodes=self.n_nodes,
            replication_factor=self.replication_factor,
            profile=self.base_workload.to_profile(),
            seed=self.seed,
            events=self.events,
        )
        return TenantSession(
            self.datastore,
            self.rafiki,
            adapter,
            self.policy,
            tenant_id="legacy",
            window_seconds=self.window_seconds,
            reconfiguration_penalty_s=self.reconfiguration_penalty_s,
            retry=self.retry,
            canary_margin=self.canary_margin,
            canary_std_factor=self.canary_std_factor,
            events=self.events,
            fault_plan=self.fault_plan,
            restart_policy="instant",
            passive_forecaster=self._passive_forecaster,
        )

    def run(self, rr_series: Sequence[float], load: bool = True) -> ControllerRun:
        """Replay an RR window series against one long-lived server."""
        if len(rr_series) == 0:
            raise SearchError("empty RR series")
        session = self.make_session()
        session.start(load_keys=self.base_workload.n_keys if load else None)
        for rr in rr_series:
            session.step(rr)
        return session.finish(teardown=False)
