"""Important-parameter identification via one-way ANOVA (paper §3.4).

Each performance-related parameter is varied one-factor-at-a-time with
every other parameter at its default ("C1 = {v1=5, v2=def, v3=def}" ...),
benchmarked, and scored by the variability of mean throughput across its
levels.  Parameters are ranked by that standard deviation (Figure 5) and
the key set is cut at the knee: "we find empirically that there is a
distinct drop in the variance when going from top-k to top-(k+1)".

An F-test over the per-level replicate groups provides the statistical
significance the paper's method name promises.

Each parameter's OFAT sweep is independent of every other parameter's,
so the sweeps are submitted as seeded work units through an
:class:`~repro.runtime.backend.ExecutionBackend` and run in parallel
with bitwise-identical results to the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.bench.ycsb import YCSBBenchmark
from repro.config.space import Configuration
from repro.datastore.base import Datastore
from repro.errors import SearchError
from repro.runtime.backend import ExecutionBackend, resolve_backend
from repro.runtime.deprecation import warn_deprecated
from repro.runtime.events import EventBus
from repro.sim.rng import SeedSequence
from repro.workload.spec import WorkloadSpec


@dataclass(frozen=True)
class ParameterEffect:
    """ANOVA outcome for one parameter."""

    name: str
    values: Tuple = ()
    level_means: Tuple[float, ...] = ()
    throughput_std: float = 0.0     # std of level means (Figure 5's metric)
    f_statistic: float = 0.0
    p_value: float = 1.0

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05


@dataclass
class AnovaRanking:
    """Parameters ordered by descending throughput variability."""

    effects: List[ParameterEffect] = field(default_factory=list)

    def __post_init__(self):
        self.effects.sort(key=lambda e: e.throughput_std, reverse=True)

    def __len__(self) -> int:
        return len(self.effects)

    def __iter__(self):
        return iter(self.effects)

    def __getitem__(self, i) -> ParameterEffect:
        return self.effects[i]

    def names(self) -> List[str]:
        return [e.name for e in self.effects]

    def top(self, k: int) -> List[ParameterEffect]:
        return self.effects[:k]

    def without(self, names: Sequence[str]) -> "AnovaRanking":
        """Drop parameters (e.g. those ScyllaDB's tuner ignores, §4.10)."""
        excluded = set(names)
        return AnovaRanking([e for e in self.effects if e.name not in excluded])


@dataclass(frozen=True)
class SweepTask:
    """One parameter's full OFAT sweep as an independent work unit.

    ``rngs[i][j]`` is the pre-derived stream for the j-th replicate of
    the i-th sweep value — derived in the parent so scheduling cannot
    perturb seeding.
    """

    name: str
    values: Tuple
    configurations: Tuple[Configuration, ...]
    rngs: Tuple[Tuple[np.random.Generator, ...], ...]
    workload: WorkloadSpec
    benchmark: YCSBBenchmark


def execute_sweep_task(task: SweepTask) -> ParameterEffect:
    """Benchmark one parameter's levels and score the effect
    (module-level so process pools can pickle it)."""
    groups: List[List[float]] = []
    for config, level_rngs in zip(task.configurations, task.rngs):
        groups.append(
            [
                task.benchmark.run(config, task.workload, seed=rng).mean_throughput
                for rng in level_rngs
            ]
        )
    level_means = [float(np.mean(g)) for g in groups]
    repeats = len(task.rngs[0]) if task.rngs else 0
    if len(groups) >= 2 and repeats >= 2:
        f_stat, p_val = stats.f_oneway(*groups)
        f_stat = float(f_stat) if np.isfinite(f_stat) else 0.0
        p_val = float(p_val) if np.isfinite(p_val) else 1.0
    else:
        f_stat, p_val = 0.0, 1.0
    return ParameterEffect(
        name=task.name,
        values=task.values,
        level_means=tuple(level_means),
        throughput_std=float(np.std(level_means)),
        f_statistic=f_stat,
        p_value=p_val,
    )


def rank_parameters(
    datastore: Datastore,
    workload: WorkloadSpec,
    parameters: Optional[Sequence[str]] = None,
    sweep_count: int = 4,
    repeats: int = 2,
    benchmark: Optional[YCSBBenchmark] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
    backend: Optional[ExecutionBackend] = None,
    events: Optional[EventBus] = None,
) -> AnovaRanking:
    """One-factor-at-a-time ANOVA sweep over ``parameters``.

    For each parameter: benchmark each sweep value ``repeats`` times with
    everything else at defaults, take per-level mean throughputs, and
    score the parameter by their standard deviation plus a one-way
    F-test over the replicate groups.  Sweeps run through ``backend``
    (serial by default); seeds are derived in sweep order beforehand, so
    every backend produces the same ranking.
    """
    if repeats < 1:
        raise SearchError("repeats must be >= 1")
    if progress is not None:
        warn_deprecated(
            "anova.progress",
            "rank_parameters(progress=...) is deprecated; subscribe to "
            "'anova.parameter' events on the EventBus instead",
        )
    bench = benchmark or YCSBBenchmark(datastore)
    names = list(parameters) if parameters is not None else [
        p.name for p in datastore.space.performance_parameters()
    ]
    seeds = SeedSequence(seed)
    events = events or EventBus()

    tasks: List[SweepTask] = []
    for name in names:
        spec = datastore.space[name]
        values = list(spec.sweep_values(sweep_count))
        configs = tuple(Configuration(datastore.space, {name: value}) for value in values)
        rngs = tuple(
            tuple(seeds.stream(f"{name}={value!r}") for _ in range(repeats))
            for value in values
        )
        tasks.append(
            SweepTask(
                name=name,
                values=tuple(values),
                configurations=configs,
                rngs=rngs,
                workload=workload,
                benchmark=bench,
            )
        )

    done = 0

    def on_result(index: int, effect: ParameterEffect) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(effect.name)
        events.publish(
            "anova.parameter",
            f"anova: {effect.name}",
            name=effect.name,
            throughput_std=effect.throughput_std,
            done=done,
            total=len(tasks),
        )

    effects = resolve_backend(backend).map_tasks(
        execute_sweep_task, tasks, on_result=on_result
    )
    return AnovaRanking(effects)


def select_key_parameters(
    ranking: AnovaRanking,
    min_k: int = 3,
    max_k: int = 8,
    drop_ratio: float = 2.0,
) -> List[str]:
    """Cut the ranking at the knee.

    Scans k in [min_k, max_k) and cuts where ``std_k / std_(k+1)`` first
    exceeds ``drop_ratio`` — the paper's "distinct drop in the variance
    when going from top-k to top-(k+1)".  Falls back to ``max_k`` when no
    distinct drop exists.
    """
    stds = [max(e.throughput_std, 1e-9) for e in ranking]
    if len(stds) <= min_k:
        return ranking.names()
    for k in range(min_k, min(max_k, len(stds) - 1) + 1):
        if k >= len(stds):
            break
        if stds[k - 1] / stds[k] >= drop_ratio:
            return ranking.names()[:k]
    return ranking.names()[: min(max_k, len(stds))]


#: Parameters that all steer the same mechanism — memtable flushing.
MEMTABLE_FAMILY = (
    "memtable_flush_writers",
    "memtable_heap_space_in_mb",
    "memtable_offheap_space_in_mb",
)


def consolidate_memtable_parameters(selected: Sequence[str]) -> List[str]:
    """Collapse the memtable family onto ``memtable_cleanup_threshold``.

    §4.5: the flush-related parameters jointly determine one quantity —
    the flush trigger space — so the paper "skip[s] the second and third
    configuration parameters and only include[s] memtable_cleanup_threshold
    to control the frequency of MEMtables flushing".
    """
    out: List[str] = []
    injected = False
    for name in selected:
        if name in MEMTABLE_FAMILY:
            if not injected and "memtable_cleanup_threshold" not in selected:
                out.append("memtable_cleanup_threshold")
                injected = True
            continue
        out.append(name)
    return out
