"""The surrogate performance model (paper §3.6).

``AOPS = fnet(RR, CM, CW, FCZ, MT, CC)`` — a Bayesian-regularized DNN
ensemble that predicts mean throughput for any (workload, configuration)
pair, standing in for a 5-minute benchmark at ~tens of microseconds per
query.  Wraps :class:`~repro.ml.ensemble.NetworkEnsemble` with the
feature encoding shared with the dataset and the GA.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.bench.dataset import PerformanceDataset
from repro.config.space import Configuration, ConfigurationSpace
from repro.errors import TrainingError
from repro.ml.ensemble import EnsembleConfig, NetworkEnsemble
from repro.runtime.backend import ExecutionBackend
from repro.sim.rng import SeedLike


@dataclass
class SurrogateStats:
    """Bookkeeping for the §4.8 search-speed accounting."""

    n_training_samples: int = 0
    fit_wall_seconds: float = 0.0
    n_queries: int = 0
    query_wall_seconds: float = 0.0

    @property
    def seconds_per_query(self) -> float:
        if self.n_queries == 0:
            return 0.0
        return self.query_wall_seconds / self.n_queries


class SurrogateModel:
    """fnet: (read ratio, key-parameter values) -> predicted AOPS."""

    def __init__(
        self,
        space: ConfigurationSpace,
        feature_parameters: Sequence[str],
        ensemble_config: Optional[EnsembleConfig] = None,
    ):
        if not feature_parameters:
            raise TrainingError("surrogate needs at least one parameter feature")
        self.space = space
        self.feature_parameters = tuple(feature_parameters)
        self.ensemble = NetworkEnsemble(ensemble_config)
        self.stats = SurrogateStats()

    @property
    def is_fitted(self) -> bool:
        return self.ensemble.is_fitted

    @property
    def feature_names(self) -> list:
        return ["read_ratio", *self.feature_parameters]

    # -- training --------------------------------------------------------------

    def fit(
        self,
        dataset: PerformanceDataset,
        seed: SeedLike = 0,
        backend: Optional[ExecutionBackend] = None,
        checkpoint_dir=None,
        events=None,
    ) -> "SurrogateModel":
        """Train on a performance dataset (features must match).

        ``backend`` fans per-member training out through an
        :class:`~repro.runtime.backend.ExecutionBackend` (serial when
        omitted); predictions are backend-independent.
        ``checkpoint_dir`` makes the fit resumable: finished members are
        checkpointed and a restart retrains only the missing ones (see
        :meth:`repro.ml.ensemble.NetworkEnsemble.fit`).
        """
        if tuple(dataset.feature_parameters) != self.feature_parameters:
            raise TrainingError(
                "dataset feature parameters "
                f"{dataset.feature_parameters} != surrogate's {self.feature_parameters}"
            )
        t0 = time.perf_counter()
        self.ensemble.fit(
            dataset.features(),
            dataset.targets(),
            seed=seed,
            backend=backend,
            checkpoint_dir=checkpoint_dir,
            events=events,
        )
        self.stats.fit_wall_seconds = time.perf_counter() - t0
        self.stats.n_training_samples = len(dataset)
        return self

    # -- prediction ----------------------------------------------------------------

    def encode(self, read_ratio: float, config: Configuration) -> np.ndarray:
        """Feature row for one (workload, configuration) pair."""
        return np.concatenate(
            [[read_ratio], config.to_vector(self.feature_parameters)]
        )

    def predict(self, read_ratio: float, config: Configuration) -> float:
        """Predicted AOPS for a concrete configuration."""
        return self.predict_features(self.encode(read_ratio, config)[None, :])[0]

    def predict_features(self, rows: np.ndarray) -> np.ndarray:
        """Predict from raw feature rows (the GA's hot path)."""
        if not self.is_fitted:
            raise TrainingError("surrogate queried before fit()")
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        t0 = time.perf_counter()
        out = self.ensemble.predict(rows)
        self.stats.query_wall_seconds += time.perf_counter() - t0
        self.stats.n_queries += rows.shape[0]
        return np.asarray(out, dtype=float).ravel()

    def predict_mean_std(self, rows: np.ndarray):
        """Mean prediction and ensemble spread in one member walk.

        The uncertainty-penalized GA fitness needs both; calling
        ``predict_features`` + ``ensemble.predict_std`` separately would
        run every member network twice on the same rows.  Returns
        ``(mean, std)``, each ``(n,)``.
        """
        if not self.is_fitted:
            raise TrainingError("surrogate queried before fit()")
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        t0 = time.perf_counter()
        mean, std = self.ensemble.predict_mean_std(rows)
        self.stats.query_wall_seconds += time.perf_counter() - t0
        self.stats.n_queries += rows.shape[0]
        return np.asarray(mean, dtype=float).ravel(), np.asarray(std, dtype=float).ravel()

    def predict_dataset(self, dataset: PerformanceDataset) -> np.ndarray:
        """Predictions for every sample of a dataset (validation path)."""
        if tuple(dataset.feature_parameters) != self.feature_parameters:
            raise TrainingError("dataset/surrogate feature mismatch")
        return self.predict_features(dataset.features())
