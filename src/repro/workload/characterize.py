"""Workload characterization (paper §3.3, step 1 of the Rafiki workflow).

From a raw query trace, extract the two statistics Rafiki uses:

* **Read Ratio (RR)** per window — the time window must be such that RR
  is (approximately) stationary within it; the paper finds 15 minutes
  for MG-RAST.
* **Key Reuse Distance (KRD)** — fit an exponential distribution over
  the observed reuse distances of the whole trace.

Also provides a stationarity diagnostic used to justify the window size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import DEFAULT_WINDOW_SECONDS, Trace


@dataclass(frozen=True)
class WorkloadCharacterization:
    """The paper's two workload features plus window bookkeeping."""

    window_seconds: float
    read_ratios: Tuple[float, ...]       # RR per window
    krd_mean_ops: float                  # exponential fit scale
    krd_samples: int                     # reuse observations used
    overall_read_ratio: float

    @property
    def n_windows(self) -> int:
        return len(self.read_ratios)

    def window_spec(self, index: int, n_keys: int = 30_000_000) -> WorkloadSpec:
        """Benchmark spec for one observed window."""
        return WorkloadSpec(
            read_ratio=self.read_ratios[index],
            krd_mean_ops=self.krd_mean_ops,
            n_keys=n_keys,
            name=f"window-{index:04d}",
        )


def read_ratio_windows(
    trace: Trace, window_seconds: float = DEFAULT_WINDOW_SECONDS
) -> List[float]:
    """RR per fixed window; empty windows carry the previous value
    forward (a quiet quarter-hour does not change the regime)."""
    ratios: List[float] = []
    previous = 0.5
    for _, records in trace.windows(window_seconds):
        if records:
            reads = sum(1 for r in records if r.kind == "read")
            previous = reads / len(records)
        ratios.append(previous)
    return ratios


def fit_exponential_krd(trace: Trace, max_records: int = 0) -> Tuple[float, int]:
    """MLE exponential fit of the key-reuse-distance distribution.

    For Exp(scale), the MLE of the scale is the sample mean.  Returns
    ``(scale, n_samples)``; raises if the trace has no key reuse at all.
    """
    distances = trace.key_reuse_distances(max_records=max_records)
    if distances.size == 0:
        raise WorkloadError("trace exhibits no key reuse; cannot fit KRD")
    return float(distances.mean()), int(distances.size)


def rr_stationarity_score(
    trace: Trace, window_seconds: float, n_subwindows: int = 4
) -> float:
    """How stationary RR is *within* windows of the given width.

    Splits each window into ``n_subwindows`` parts and returns the mean
    absolute deviation of sub-window RR from the window RR (lower is more
    stationary).  The paper picks the window size for which RR is
    stationary "in an information-theoretic sense"; this is the
    operational proxy.
    """
    deviations: List[float] = []
    for _, records in trace.windows(window_seconds):
        if len(records) < 2 * n_subwindows:
            continue
        reads = np.array([1.0 if r.kind == "read" else 0.0 for r in records])
        window_rr = reads.mean()
        for part in np.array_split(reads, n_subwindows):
            if part.size:
                deviations.append(abs(part.mean() - window_rr))
    if not deviations:
        raise WorkloadError("trace too short for a stationarity estimate")
    return float(np.mean(deviations))


def characterize_trace(
    trace: Trace,
    window_seconds: float = DEFAULT_WINDOW_SECONDS,
    max_krd_records: int = 0,
) -> WorkloadCharacterization:
    """Run the full §3.3 characterization over a trace."""
    if len(trace) == 0:
        raise WorkloadError("cannot characterize an empty trace")
    ratios = read_ratio_windows(trace, window_seconds)
    krd_scale, n_samples = fit_exponential_krd(trace, max_records=max_krd_records)
    return WorkloadCharacterization(
        window_seconds=window_seconds,
        read_ratios=tuple(ratios),
        krd_mean_ops=krd_scale,
        krd_samples=n_samples,
        overall_read_ratio=trace.read_ratio(),
    )
