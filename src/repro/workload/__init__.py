"""Workload modelling: specs, key distributions, traces, characterization.

Implements the paper's workload layer (§2.4, §3.3): MG-RAST-style
dynamic query streams, the two characterization statistics Rafiki uses —
Read Ratio (RR) per 15-minute window and Key Reuse Distance (KRD, fit
with an exponential distribution) — and generators to drive benchmarks.
"""

from repro.workload.spec import WorkloadSpec, READ, WRITE, DELETE
from repro.workload.keydist import (
    ExponentialReuseKeyDistribution,
    UniformKeyDistribution,
    ZipfianKeyDistribution,
)
from repro.workload.generator import Operation, OperationGenerator
from repro.workload.trace import QueryRecord, Trace
from repro.workload.mgrast import MGRastTraceGenerator, MGRastPhase
from repro.workload.characterize import (
    WorkloadCharacterization,
    characterize_trace,
    fit_exponential_krd,
    read_ratio_windows,
)
from repro.workload.forecast import (
    ExponentialSmoothingForecaster,
    LastValueForecaster,
    MarkovRegimeForecaster,
    RRForecaster,
    forecast_series,
)

__all__ = [
    "WorkloadSpec",
    "READ",
    "WRITE",
    "DELETE",
    "ExponentialReuseKeyDistribution",
    "UniformKeyDistribution",
    "ZipfianKeyDistribution",
    "Operation",
    "OperationGenerator",
    "QueryRecord",
    "Trace",
    "MGRastTraceGenerator",
    "MGRastPhase",
    "WorkloadCharacterization",
    "characterize_trace",
    "fit_exponential_krd",
    "read_ratio_windows",
    "RRForecaster",
    "LastValueForecaster",
    "ExponentialSmoothingForecaster",
    "MarkovRegimeForecaster",
    "forecast_series",
]
