"""Key-selection distributions.

The paper characterizes MG-RAST key access by its Key Reuse Distance
(KRD): "the number of queries that pass before the same key is
re-accessed" (§3.3), summarized by a fitted exponential distribution.
:class:`ExponentialReuseKeyDistribution` generates exactly that process;
uniform and zipfian selectors are provided for contrast (zipfian is the
archetypal YCSB web workload the paper argues MG-RAST does *not* look
like).
"""

from __future__ import annotations

from collections import deque
from typing import Deque

import numpy as np

from repro.errors import WorkloadError


class KeyDistribution:
    """Interface: pick keys from a keyspace of ``n_keys`` items."""

    def __init__(self, n_keys: int):
        if n_keys <= 0:
            raise WorkloadError("n_keys must be positive")
        self.n_keys = n_keys

    def next_key(self, rng: np.random.Generator) -> int:
        """Return the integer id of the next key to access."""
        raise NotImplementedError

    def next_keys(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Vectorized sampling: the ids of the next ``n`` key accesses.

        The base implementation loops :meth:`next_key` and is therefore
        always stream-identical to scalar sampling; subclasses override
        it with vectorized draws.  Uniform and zipfian batches consume
        the generator exactly as ``n`` scalar calls would (numpy fills
        arrays element-by-element with the same algorithm), so batched
        and scalar op streams see the same keys; the exponential-reuse
        sampler documents its own contract.
        """
        if n < 0:
            raise WorkloadError("batch size must be non-negative")
        return np.array([self.next_key(rng) for _ in range(n)], dtype=np.int64)

    def key_name(self, key_id: int) -> str:
        """Stable, sortable string form (zero-padded, YCSB-style)."""
        return f"user{key_id:012d}"


class UniformKeyDistribution(KeyDistribution):
    """Every key equally likely — the no-locality extreme."""

    def next_key(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.n_keys))

    def next_keys(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n < 0:
            raise WorkloadError("batch size must be non-negative")
        return rng.integers(self.n_keys, size=n).astype(np.int64)


class ZipfianKeyDistribution(KeyDistribution):
    """Zipf-skewed popularity (YCSB's default web-style workload).

    Uses the rejection-inversion sampler so construction is O(1) in the
    keyspace size.
    """

    def __init__(self, n_keys: int, theta: float = 0.99):
        super().__init__(n_keys)
        if not (0.0 < theta < 1.0):
            raise WorkloadError("zipfian theta must be in (0, 1)")
        self.theta = theta
        # Gray et al. approximation constants (as used by YCSB).
        zeta2 = self._zeta(2, theta)
        self._zetan = self._zeta(n_keys, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1 - (2.0 / n_keys) ** (1 - theta)) / (1 - zeta2 / self._zetan)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Exact up to a cutoff, then an integral approximation: the tail
        # of sum(1/i^theta) converges to the integral for large i.
        cutoff = min(n, 10_000)
        s = sum(1.0 / i**theta for i in range(1, cutoff + 1))
        if n > cutoff:
            s += (n ** (1 - theta) - cutoff ** (1 - theta)) / (1 - theta)
        return s

    def next_key(self, rng: np.random.Generator) -> int:
        u = rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.n_keys * (self._eta * u - self._eta + 1) ** self._alpha)

    def next_keys(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n < 0:
            raise WorkloadError("batch size must be non-negative")
        u = rng.random(n)
        uz = u * self._zetan
        # Same expression tree as next_key, so each element is bit-equal
        # to the scalar call on the same uniform draw.  Lanes taken by
        # the uz < 1 + 0.5**theta branches can have a negative power
        # base; they are discarded by the where, but the base is clamped
        # so they never raise on the way through.
        base = self._eta * u - self._eta + 1
        tail = (self.n_keys * np.where(base > 0, base, 1.0) ** self._alpha).astype(
            np.int64
        )
        keys = np.where(uz < 1.0, 0, np.where(uz < 1.0 + 0.5**self.theta, 1, tail))
        return keys.astype(np.int64)


class ExponentialReuseKeyDistribution(KeyDistribution):
    """Key stream with exponentially distributed reuse distances.

    With probability ``reuse_probability`` the next access re-uses a key
    seen ``d`` operations ago, where ``d ~ Exp(mean_reuse_distance)``;
    otherwise it touches a uniformly random (likely cold) key.  A bounded
    history window keeps memory flat — the paper faces the same bound
    when computing KRD from production logs (§3.3).
    """

    def __init__(
        self,
        n_keys: int,
        mean_reuse_distance: float,
        reuse_probability: float = 0.8,
        history_limit: int = 2_000_000,
    ):
        super().__init__(n_keys)
        if mean_reuse_distance <= 0:
            raise WorkloadError("mean_reuse_distance must be positive")
        if not (0.0 <= reuse_probability <= 1.0):
            raise WorkloadError("reuse_probability outside [0, 1]")
        self.mean_reuse_distance = float(mean_reuse_distance)
        self.reuse_probability = reuse_probability
        self.history_limit = history_limit
        self._history: Deque[int] = deque(maxlen=history_limit)
        self._last_seen: dict = {}
        self._count = 0

    def next_key(self, rng: np.random.Generator) -> int:
        key = -1
        if self._history and rng.random() < self.reuse_probability:
            # Draw a target distance; retry a couple of times if the
            # slot's key was re-accessed more recently (which would
            # realize a much shorter distance and bias the KRD low).
            for _ in range(3):
                distance = int(rng.exponential(self.mean_reuse_distance))
                if distance >= len(self._history):
                    break
                candidate = self._history[len(self._history) - 1 - distance]
                realized = self._count - self._last_seen.get(candidate, self._count) - 1
                if realized >= distance // 2:
                    key = candidate
                    break
        if key < 0:
            # Reuse distance beyond the observable window (or a cold
            # start): touch a uniformly random — likely cold — key.
            key = int(rng.integers(self.n_keys))
        if len(self._history) == self.history_limit:
            # Evict bookkeeping for keys falling out of the window.
            oldest = self._history[0]
            if self._last_seen.get(oldest, -1) <= self._count - self.history_limit:
                self._last_seen.pop(oldest, None)
        self._history.append(key)
        self._last_seen[key] = self._count
        self._count += 1
        return key

    def next_keys(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Vectorized reuse-distance sampling.

        One reuse coin, one exponential distance, and one cold key are
        drawn per op up front; in-batch reuse targets (an op whose
        distance lands on an *earlier op of the same batch*) are resolved
        by pointer-halving, so the realized reuse-distance process is the
        same as the scalar sampler's.  This is the batch path's own
        deterministic sampler, not a replay of :meth:`next_key` — the
        scalar sampler's RNG consumption is data-dependent (its re-access
        retry loop redraws up to three times), which no fixed-shape batch
        draw can reproduce; the retry heuristic is dropped here, slightly
        thickening the short-distance tail.  Both paths remain seed-
        deterministic, and batched runs are reproducible run-to-run.
        """
        if n < 0:
            raise WorkloadError("batch size must be non-negative")
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        if len(self._history) + n > self.history_limit:
            # Eviction bookkeeping would trigger mid-batch; keep that
            # rare regime on the scalar path.
            return super().next_keys(rng, n)

        reuse_coin = rng.random(n)
        distance = rng.exponential(self.mean_reuse_distance, size=n).astype(np.int64)
        cold = rng.integers(self.n_keys, size=n).astype(np.int64)

        h = len(self._history)
        idx = np.arange(n, dtype=np.int64)
        # Op i sees an effective history of h + i entries; a distance at
        # or beyond that window falls back to a cold key, as in the
        # scalar sampler.
        window = h + idx
        reuse = (reuse_coin < self.reuse_probability) & (distance < window) & (window > 0)
        # Position of the reused entry on the combined stream
        # [history[0..h-1], batch[0..n-1]]:
        target = window - 1 - distance

        keys = cold.copy()
        hist_hit = reuse & (target < h)
        if np.any(hist_hit):
            hist_arr = np.array(self._history, dtype=np.int64)
            keys[hist_hit] = hist_arr[target[hist_hit]]
        # In-batch references always point strictly backward, so
        # repeated pointer-halving terminates with every chain rooted at
        # a cold or history-sourced op.
        parent = np.where(reuse & (target >= h), target - h, idx)
        while True:
            grand = parent[parent]
            if np.array_equal(grand, parent):
                break
            parent = grand
        keys = keys[parent]

        key_list = keys.tolist()
        self._history.extend(key_list)
        self._last_seen.update(zip(key_list, range(self._count, self._count + n)))
        self._count += n
        return keys
