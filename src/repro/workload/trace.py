"""Query traces: timestamped logs of database operations.

The paper's raw input is a 4-day MG-RAST query log; this module is its
in-memory representation plus windowing helpers used by the workload
characterizer (§3.3) and the online controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.workload.spec import READ

#: The paper's characterization window: 15 minutes (§3.3, Figure 3).
DEFAULT_WINDOW_SECONDS = 15 * 60


@dataclass(frozen=True)
class QueryRecord:
    """One logged query: arrival time, kind, and key."""

    timestamp: float
    kind: str  # READ | WRITE | DELETE
    key: str


class Trace:
    """A time-ordered sequence of :class:`QueryRecord`."""

    def __init__(self, records: Sequence[QueryRecord]):
        self._records: List[QueryRecord] = list(records)
        for a, b in zip(self._records, self._records[1:]):
            if b.timestamp < a.timestamp:
                raise WorkloadError("trace records must be time-ordered")

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[QueryRecord]:
        return iter(self._records)

    def __getitem__(self, i):
        return self._records[i]

    @property
    def duration(self) -> float:
        if not self._records:
            return 0.0
        return self._records[-1].timestamp - self._records[0].timestamp

    @property
    def start_time(self) -> float:
        return self._records[0].timestamp if self._records else 0.0

    def windows(
        self, window_seconds: float = DEFAULT_WINDOW_SECONDS
    ) -> Iterator[Tuple[float, List[QueryRecord]]]:
        """Yield (window_start, records) over fixed-width time windows.

        Empty trailing windows are not emitted; empty interior windows
        are (a production system can go quiet for a window).
        """
        if window_seconds <= 0:
            raise WorkloadError("window_seconds must be positive")
        if not self._records:
            return
        t0 = self.start_time
        bucket: List[QueryRecord] = []
        current = 0
        for rec in self._records:
            idx = int((rec.timestamp - t0) // window_seconds)
            while idx > current:
                yield (t0 + current * window_seconds, bucket)
                bucket = []
                current += 1
            bucket.append(rec)
        yield (t0 + current * window_seconds, bucket)

    def read_ratio(self) -> float:
        """Overall RR of the trace (reads / all queries)."""
        if not self._records:
            raise WorkloadError("empty trace has no read ratio")
        reads = sum(1 for r in self._records if r.kind == READ)
        return reads / len(self._records)

    def key_reuse_distances(self, max_records: int = 0) -> np.ndarray:
        """Observed KRDs: queries between successive accesses to a key.

        ``max_records`` bounds the scan (0 = all), mirroring the paper's
        note that operationally the KRD window must be bounded (§3.3).
        """
        records = self._records[:max_records] if max_records else self._records
        last_seen = {}
        distances: List[int] = []
        for i, rec in enumerate(records):
            prev = last_seen.get(rec.key)
            if prev is not None:
                distances.append(i - prev - 1)
            last_seen[rec.key] = i
        return np.asarray(distances, dtype=float)

    def subsample(self, fraction: float, rng: np.random.Generator) -> "Trace":
        """Random subsample preserving order (the paper's case study
        sub-sampling, §1)."""
        if not (0.0 < fraction <= 1.0):
            raise WorkloadError("fraction must be in (0, 1]")
        keep = rng.random(len(self._records)) < fraction
        return Trace([r for r, k in zip(self._records, keep) if k])
