"""Workload specifications.

A :class:`WorkloadSpec` is the benchmark-facing description of a
workload: the read ratio (the paper's single workload feature for the
surrogate model), the key-reuse-distance scale, payload sizes, and the
dataset size.  It converts directly to the engine-facing
:class:`~repro.lsm.analytic.WorkloadProfile`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import WorkloadError
from repro.lsm.analytic import WorkloadProfile

READ = "read"
WRITE = "write"
DELETE = "delete"


@dataclass(frozen=True)
class WorkloadSpec:
    """Parametrized workload for the YCSB-style harness.

    Attributes mirror the paper's characterization (§3.3): ``read_ratio``
    (RR) is the surrogate-model feature; ``krd_mean_ops`` is the fitted
    exponential KRD scale (held stationary for MG-RAST and therefore used
    to *configure* data collection, not as a model input).
    """

    read_ratio: float
    n_keys: int = 30_000_000
    value_bytes: int = 200
    key_bytes: int = 16
    update_fraction: float = 0.3
    krd_mean_ops: float = 200_000.0
    delete_fraction: float = 0.0
    name: str = ""

    def __post_init__(self):
        if not (0.0 <= self.read_ratio <= 1.0):
            raise WorkloadError(f"read_ratio {self.read_ratio} outside [0, 1]")
        if not (0.0 <= self.update_fraction <= 1.0):
            raise WorkloadError("update_fraction outside [0, 1]")
        if not (0.0 <= self.delete_fraction <= 1.0):
            raise WorkloadError("delete_fraction outside [0, 1]")
        if self.delete_fraction > 1.0 - self.read_ratio:
            raise WorkloadError("delete_fraction cannot exceed the write share")
        if self.n_keys <= 0:
            raise WorkloadError("n_keys must be positive")
        if self.value_bytes < 0 or self.key_bytes <= 0:
            raise WorkloadError("payload sizes must be positive")
        if self.krd_mean_ops <= 0:
            raise WorkloadError("krd_mean_ops must be positive")

    @property
    def write_ratio(self) -> float:
        return 1.0 - self.read_ratio

    @property
    def label(self) -> str:
        return self.name or f"RR={self.read_ratio:.0%}"

    def with_read_ratio(self, read_ratio: float) -> "WorkloadSpec":
        return replace(self, read_ratio=read_ratio, name="")

    def to_profile(self) -> WorkloadProfile:
        """Engine-facing view of the per-op cost characteristics."""
        return WorkloadProfile(
            value_bytes=self.value_bytes,
            key_bytes=self.key_bytes,
            update_fraction=self.update_fraction,
            krd_mean_ops=self.krd_mean_ops,
        )


def mgrast_workload(read_ratio: float, name: str = "") -> WorkloadSpec:
    """An MG-RAST-shaped workload at a given read ratio.

    Large key-reuse distance (disk pressure, weak caching) and a
    meaningful update share from pipeline re-insertions (paper §2.4.2).
    """
    return WorkloadSpec(
        read_ratio=read_ratio,
        n_keys=30_000_000,
        value_bytes=200,
        update_fraction=0.3,
        krd_mean_ops=200_000.0,
        name=name or f"mgrast-rr{int(round(read_ratio * 100))}",
    )
