"""Workload forecasting (the paper's future work, §6).

"We are also developing a prediction model for the workloads" — the
point being that if the next window's read ratio can be predicted, the
controller can reconfigure *proactively* at the window boundary instead
of reacting one window late.

Three online forecasters over the per-window RR series:

* :class:`LastValueForecaster` — predicts "same as last window"; this is
  what a purely reactive controller implicitly assumes.
* :class:`ExponentialSmoothingForecaster` — smooths wobble inside a
  regime but lags regime switches.
* :class:`MarkovRegimeForecaster` — quantizes RR into regime bins and
  learns the window-to-window transition matrix online; suits MG-RAST's
  regime-switching structure (Figure 3), where "same regime" is likely
  but switches have learnable destinations.

All are online: ``update()`` with each observed window, ``predict()``
for the next.  They never see the future.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import WorkloadError


class RRForecaster:
    """Interface: an online predictor of the next window's read ratio."""

    def update(self, read_ratio: float) -> None:
        """Feed the just-observed window's RR."""
        raise NotImplementedError

    def predict(self) -> float:
        """Predict the next window's RR (in [0, 1])."""
        raise NotImplementedError

    def observe_and_predict(self, read_ratio: float) -> float:
        self.update(read_ratio)
        return self.predict()

    @staticmethod
    def _check(read_ratio: float) -> float:
        if not (0.0 <= read_ratio <= 1.0):
            raise WorkloadError(f"read ratio {read_ratio} outside [0, 1]")
        return float(read_ratio)


class LastValueForecaster(RRForecaster):
    """Next window == this window (the reactive-controller assumption)."""

    def __init__(self, initial: float = 0.5):
        self._last = self._check(initial)

    def update(self, read_ratio: float) -> None:
        self._last = self._check(read_ratio)

    def predict(self) -> float:
        return self._last


class ExponentialSmoothingForecaster(RRForecaster):
    """EWMA over the RR series: ``level <- a*rr + (1-a)*level``."""

    def __init__(self, alpha: float = 0.5, initial: float = 0.5):
        if not (0.0 < alpha <= 1.0):
            raise WorkloadError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._level = self._check(initial)

    def update(self, read_ratio: float) -> None:
        rr = self._check(read_ratio)
        self._level = self.alpha * rr + (1.0 - self.alpha) * self._level

    def predict(self) -> float:
        return self._level


class MarkovRegimeForecaster(RRForecaster):
    """First-order Markov chain over quantized RR regimes.

    RR is binned into ``n_bins`` regimes; transition counts are learned
    online with Laplace smoothing.  The prediction is the expected RR of
    the next regime: ``sum_j P(j | current) * center_j`` — which decays
    toward the regime's continuation when the chain is confident and
    toward the global mix when it is not.
    """

    def __init__(self, n_bins: int = 5, smoothing: float = 1.0):
        if n_bins < 2:
            raise WorkloadError("need at least two regime bins")
        if smoothing <= 0:
            raise WorkloadError("smoothing must be positive")
        self.n_bins = n_bins
        self.smoothing = smoothing
        self._transitions = np.full((n_bins, n_bins), smoothing, dtype=float)
        self._bin_sums = np.zeros(n_bins)     # running mean RR per bin
        self._bin_counts = np.zeros(n_bins)
        self._current_bin: Optional[int] = None

    def _bin_of(self, rr: float) -> int:
        return min(int(rr * self.n_bins), self.n_bins - 1)

    def _bin_center(self, b: int) -> float:
        if self._bin_counts[b] > 0:
            return float(self._bin_sums[b] / self._bin_counts[b])
        return (b + 0.5) / self.n_bins

    def update(self, read_ratio: float) -> None:
        rr = self._check(read_ratio)
        new_bin = self._bin_of(rr)
        self._bin_sums[new_bin] += rr
        self._bin_counts[new_bin] += 1
        if self._current_bin is not None:
            self._transitions[self._current_bin, new_bin] += 1.0
        self._current_bin = new_bin

    def predict(self) -> float:
        if self._current_bin is None:
            return 0.5
        row = self._transitions[self._current_bin]
        probs = row / row.sum()
        centers = np.array([self._bin_center(b) for b in range(self.n_bins)])
        return float(np.clip(probs @ centers, 0.0, 1.0))

    def transition_matrix(self) -> np.ndarray:
        """Row-normalized learned transition probabilities."""
        rows = self._transitions.sum(axis=1, keepdims=True)
        return self._transitions / rows


def forecast_series(
    forecaster: RRForecaster, rr_series: "np.ndarray"
) -> List[float]:
    """One-step-ahead forecasts for each window (given only the past).

    ``predictions[i]`` is the forecast for window ``i`` made after
    observing windows ``0..i-1``; ``predictions[0]`` is the forecaster's
    prior.
    """
    predictions: List[float] = []
    for rr in rr_series:
        predictions.append(forecaster.predict())
        forecaster.update(float(rr))
    return predictions
