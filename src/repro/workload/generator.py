"""Operation-stream generation.

Turns a :class:`~repro.workload.spec.WorkloadSpec` into a concrete
sequence of read/write/delete operations with keys drawn from a
KRD-faithful distribution — the per-operation analogue of what the
batched benchmark path computes in expectation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.workload.keydist import (
    ExponentialReuseKeyDistribution,
    KeyDistribution,
)
from repro.workload.spec import DELETE, READ, WRITE, WorkloadSpec


@dataclass(frozen=True)
class Operation:
    """One benchmark operation."""

    kind: str  # READ | WRITE | DELETE
    key: str
    value_bytes: int = 0

    def payload(self, rng: np.random.Generator) -> bytes:
        """Materialize a value body (random bytes of the spec'd size)."""
        if self.kind != WRITE:
            return b""
        return rng.bytes(self.value_bytes)


class OperationGenerator:
    """Draws an endless operation stream matching a workload spec.

    Writes split between updates of existing keys (``update_fraction``)
    and inserts of fresh keys; reads follow the KRD distribution.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        rng: np.random.Generator,
        key_dist: Optional[KeyDistribution] = None,
        loaded_keys: int = 0,
    ):
        self.spec = spec
        self.rng = rng
        self.key_dist = key_dist or ExponentialReuseKeyDistribution(
            n_keys=spec.n_keys,
            mean_reuse_distance=spec.krd_mean_ops,
        )
        # Insert cursor: fresh keys get ids past the loaded range.
        self._next_insert_id = loaded_keys
        self._loaded_keys = loaded_keys

    def load_operations(self, count: int) -> Iterator[Operation]:
        """The YCSB load phase: ``count`` sequential fresh inserts."""
        for _ in range(count):
            key = self.key_dist.key_name(self._next_insert_id)
            self._next_insert_id += 1
            yield Operation(kind=WRITE, key=key, value_bytes=self.spec.value_bytes)

    def __iter__(self) -> Iterator[Operation]:
        while True:
            yield self.next_operation()

    def next_operation(self) -> Operation:
        u = self.rng.random()
        if u < self.spec.read_ratio:
            key_id = self._existing_key()
            return Operation(kind=READ, key=self.key_dist.key_name(key_id))
        if u < self.spec.read_ratio + self.spec.delete_fraction:
            key_id = self._existing_key()
            return Operation(kind=DELETE, key=self.key_dist.key_name(key_id))
        # Write: update an existing key or insert a fresh one.
        if self.rng.random() < self.spec.update_fraction:
            key_id = self._existing_key()
        else:
            key_id = self._next_insert_id
            self._next_insert_id += 1
        return Operation(
            kind=WRITE,
            key=self.key_dist.key_name(key_id),
            value_bytes=self.spec.value_bytes,
        )

    def operations(self, count: int) -> Iterator[Operation]:
        """A bounded stream of ``count`` run-phase operations."""
        for _ in range(count):
            yield self.next_operation()

    def _existing_key(self) -> int:
        populated = max(self._next_insert_id, 1)
        key_id = self.key_dist.next_key(self.rng)
        return key_id % populated
