"""Operation-stream generation.

Turns a :class:`~repro.workload.spec.WorkloadSpec` into a concrete
sequence of read/write/delete operations with keys drawn from a
KRD-faithful distribution — the per-operation analogue of what the
batched benchmark path computes in expectation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from repro.lsm.engine import OP_DELETE, OP_READ, OP_WRITE
from repro.workload.keydist import (
    ExponentialReuseKeyDistribution,
    KeyDistribution,
)
from repro.workload.spec import DELETE, READ, WRITE, WorkloadSpec

#: Workload kind string <-> engine op code (the codes live in
#: :mod:`repro.lsm.engine` because the import DAG runs lsm -> workload).
_KIND_OF_CODE = {OP_READ: READ, OP_WRITE: WRITE, OP_DELETE: DELETE}


@dataclass(frozen=True)
class Operation:
    """One benchmark operation."""

    kind: str  # READ | WRITE | DELETE
    key: str
    value_bytes: int = 0

    def payload(self, rng: np.random.Generator) -> bytes:
        """Materialize a value body (random bytes of the spec'd size)."""
        if self.kind != WRITE:
            return b""
        return rng.bytes(self.value_bytes)


@dataclass
class OperationBatch:
    """A block of operations as parallel numpy columns.

    The vectorized analogue of a run of :class:`Operation`s: op kinds as
    :data:`~repro.lsm.engine.OP_READ`-family codes, key *ids* (names are
    materialized lazily), and write payload sizes.  Feed it to
    :meth:`~repro.lsm.engine.LSMEngine.execute_batch` directly, or walk
    :meth:`iter_operations` to run the same block through the scalar
    path — the engine produces bit-identical stats and timing either
    way.  Batched writes carry zero-filled payloads; value *content*
    never influences stats, simulated time, or cache behaviour (only
    ``len(value)`` does), so the streams are equivalent where it counts.
    """

    kinds: np.ndarray  # int8 OP_* codes, one per op
    key_ids: np.ndarray  # int64 key ids
    value_sizes: np.ndarray  # int64 payload bytes (0 for non-writes)
    _names: Optional[List[str]] = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.kinds)

    def key_names(self) -> List[str]:
        """Per-op key names (cached after first materialization)."""
        if self._names is None:
            self._names = [f"user{int(k):012d}" for k in self.key_ids]
        return self._names

    def iter_operations(self) -> Iterator[Operation]:
        """The same block as scalar :class:`Operation`s (reference path)."""
        names = self.key_names()
        for i in range(len(self.kinds)):
            yield Operation(
                kind=_KIND_OF_CODE[int(self.kinds[i])],
                key=names[i],
                value_bytes=int(self.value_sizes[i]),
            )


class OperationGenerator:
    """Draws an endless operation stream matching a workload spec.

    Writes split between updates of existing keys (``update_fraction``)
    and inserts of fresh keys; reads follow the KRD distribution.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        rng: np.random.Generator,
        key_dist: Optional[KeyDistribution] = None,
        loaded_keys: int = 0,
    ):
        self.spec = spec
        self.rng = rng
        self.key_dist = key_dist or ExponentialReuseKeyDistribution(
            n_keys=spec.n_keys,
            mean_reuse_distance=spec.krd_mean_ops,
        )
        # Insert cursor: fresh keys get ids past the loaded range.
        self._next_insert_id = loaded_keys
        self._loaded_keys = loaded_keys

    def load_operations(self, count: int) -> Iterator[Operation]:
        """The YCSB load phase: ``count`` sequential fresh inserts."""
        for _ in range(count):
            key = self.key_dist.key_name(self._next_insert_id)
            self._next_insert_id += 1
            yield Operation(kind=WRITE, key=key, value_bytes=self.spec.value_bytes)

    def __iter__(self) -> Iterator[Operation]:
        while True:
            yield self.next_operation()

    def next_operation(self) -> Operation:
        u = self.rng.random()
        if u < self.spec.read_ratio:
            key_id = self._existing_key()
            return Operation(kind=READ, key=self.key_dist.key_name(key_id))
        if u < self.spec.read_ratio + self.spec.delete_fraction:
            key_id = self._existing_key()
            return Operation(kind=DELETE, key=self.key_dist.key_name(key_id))
        # Write: update an existing key or insert a fresh one.
        if self.rng.random() < self.spec.update_fraction:
            key_id = self._existing_key()
        else:
            key_id = self._next_insert_id
            self._next_insert_id += 1
        return Operation(
            kind=WRITE,
            key=self.key_dist.key_name(key_id),
            value_bytes=self.spec.value_bytes,
        )

    def operations(self, count: int) -> Iterator[Operation]:
        """A bounded stream of ``count`` run-phase operations."""
        for _ in range(count):
            yield self.next_operation()

    def load_batch(self, count: int) -> OperationBatch:
        """Vectorized :meth:`load_operations`: ``count`` fresh inserts."""
        if count < 0:
            raise ValueError("count must be non-negative")
        key_ids = self._next_insert_id + np.arange(count, dtype=np.int64)
        self._next_insert_id += count
        return OperationBatch(
            kinds=np.full(count, OP_WRITE, dtype=np.int8),
            key_ids=key_ids,
            value_sizes=np.full(count, self.spec.value_bytes, dtype=np.int64),
        )

    def operation_batch(self, n: int, read_ratio: Optional[float] = None) -> OperationBatch:
        """Draw ``n`` run-phase operations as one vectorized block.

        Semantically the batch analogue of ``n`` :meth:`next_operation`
        calls — the same kind split, update/insert split, insert-cursor
        advancement, and modulo-populated existing-key mapping — drawn
        column-wise (all kind coins, then all update coins, then all key
        ids), so it is its own deterministic sampler rather than a replay
        of the scalar draw order.  ``read_ratio`` overrides the spec's
        ratio for serving a mid-campaign workload mix.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        rr = self.spec.read_ratio if read_ratio is None else float(read_ratio)
        df = self.spec.delete_fraction
        u = self.rng.random(n)
        v = self.rng.random(n)

        kinds = np.full(n, OP_WRITE, dtype=np.int8)
        kinds[u < rr + df] = OP_DELETE
        kinds[u < rr] = OP_READ
        write_mask = kinds == OP_WRITE
        insert_mask = write_mask & (v >= self.spec.update_fraction)
        existing_mask = ~insert_mask

        # The insert cursor advances as the block is consumed: op i maps
        # existing-key draws modulo the keys populated *before* it.
        inserts_before = np.cumsum(insert_mask) - insert_mask
        populated = np.maximum(self._next_insert_id + inserts_before, 1)

        key_ids = np.empty(n, dtype=np.int64)
        n_existing = int(existing_mask.sum())
        raw = self.key_dist.next_keys(self.rng, n_existing)
        key_ids[existing_mask] = raw % populated[existing_mask]
        key_ids[insert_mask] = self._next_insert_id + inserts_before[insert_mask]
        self._next_insert_id += int(insert_mask.sum())

        value_sizes = np.where(write_mask, self.spec.value_bytes, 0).astype(np.int64)
        return OperationBatch(kinds=kinds, key_ids=key_ids, value_sizes=value_sizes)

    def _existing_key(self) -> int:
        populated = max(self._next_insert_id, 1)
        key_id = self.key_dist.next_key(self.rng)
        return key_id % populated
