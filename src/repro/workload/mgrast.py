"""Synthetic MG-RAST workload traces.

The paper drives Rafiki with a 4-day query trace from Argonne's MG-RAST
metagenomics portal (production data we cannot ship).  This generator
reproduces the three properties the paper actually consumes:

* **Regime-switching read ratios** (Figure 3): extended read-heavy,
  write-heavy, and mixed periods whose transitions are abrupt and often
  last 15 minutes or less, driven by the pipeline stages — user
  submissions (bursty writes), gene-prediction / RNA-detection passes
  (mixed), and analysis/retrieval phases (read-heavy).
* **Very large key-reuse distance** (§1, §3.3): accesses rarely revisit
  keys soon, "putting immense pressure on the disk, while relieving
  pressure on caches"; stationary over the full trace.
* **Query mix realism**: inserts of derived products ~10x the submitted
  data (§2.4), i.e. a meaningful update/insert write mix.

The regimes form a semi-Markov chain with heavy-tailed dwell times, so a
handful of windows can flip RR from ~0.9 to ~0.1 within one 15-minute
window — the dynamism that breaks slow online tuners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.sim.rng import SeedLike, derive_rng
from repro.workload.keydist import ExponentialReuseKeyDistribution
from repro.workload.spec import READ, WRITE, WorkloadSpec
from repro.workload.trace import DEFAULT_WINDOW_SECONDS, QueryRecord, Trace


@dataclass(frozen=True)
class MGRastPhase:
    """One pipeline regime: an RR level with dwell-time statistics."""

    name: str
    mean_read_ratio: float
    rr_jitter: float           # within-regime window-to-window wobble
    mean_dwell_windows: float  # geometric dwell time, in windows
    weight: float              # stationary selection weight


#: Regimes mirroring Figure 3's qualitative pattern: mostly read-heavy
#: analysis with bursty write (submission) interludes and mixed
#: transformation phases.
DEFAULT_PHASES: Sequence[MGRastPhase] = (
    MGRastPhase("analysis-read-heavy", 0.88, 0.06, 10.0, 0.45),
    MGRastPhase("submission-write-burst", 0.08, 0.05, 2.0, 0.15),
    MGRastPhase("pipeline-mixed", 0.50, 0.12, 4.0, 0.25),
    MGRastPhase("annotation-moderate-read", 0.70, 0.08, 5.0, 0.15),
)

#: The paper's observation period.
FOUR_DAYS_SECONDS = 4 * 24 * 3600


class MGRastTraceGenerator:
    """Seeded generator of MG-RAST-like workload traces."""

    def __init__(
        self,
        phases: Sequence[MGRastPhase] = DEFAULT_PHASES,
        n_keys: int = 2_000_000,
        krd_mean_ops: float = 200_000.0,
        queries_per_window: int = 3_000,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        seed: SeedLike = 0,
    ):
        if not phases:
            raise ValueError("need at least one phase")
        self.phases = list(phases)
        self.n_keys = n_keys
        self.krd_mean_ops = krd_mean_ops
        self.queries_per_window = queries_per_window
        self.window_seconds = window_seconds
        self.rng = derive_rng(seed)
        weights = np.array([p.weight for p in self.phases], dtype=float)
        self._phase_probs = weights / weights.sum()

    # ------------------------------------------------------------------ RR series

    def read_ratio_series(self, duration_seconds: float = FOUR_DAYS_SECONDS) -> np.ndarray:
        """Per-window read ratios over ``duration_seconds`` (Figure 3)."""
        n_windows = max(1, int(duration_seconds // self.window_seconds))
        series = np.empty(n_windows)
        i = 0
        while i < n_windows:
            phase = self._pick_phase()
            dwell = 1 + self.rng.geometric(1.0 / phase.mean_dwell_windows)
            for _ in range(min(dwell, n_windows - i)):
                rr = phase.mean_read_ratio + phase.rr_jitter * self.rng.standard_normal()
                series[i] = float(np.clip(rr, 0.0, 1.0))
                i += 1
                if i >= n_windows:
                    break
        return series

    def _pick_phase(self) -> MGRastPhase:
        idx = int(self.rng.choice(len(self.phases), p=self._phase_probs))
        return self.phases[idx]

    # ------------------------------------------------------------------ full trace

    def generate(self, duration_seconds: float = FOUR_DAYS_SECONDS) -> Trace:
        """A full query trace: timestamped reads/writes with KRD-faithful
        key selection, per-window rates from the regime model."""
        rr_series = self.read_ratio_series(duration_seconds)
        key_dist = ExponentialReuseKeyDistribution(
            n_keys=self.n_keys,
            mean_reuse_distance=self.krd_mean_ops,
            history_limit=min(int(4 * self.krd_mean_ops), 2_000_000),
        )
        records: List[QueryRecord] = []
        for w, rr in enumerate(rr_series):
            t0 = w * self.window_seconds
            count = self.queries_per_window
            # Poisson-ish arrival spread inside the window, kept sorted.
            offsets = np.sort(self.rng.random(count)) * self.window_seconds
            kinds = np.where(self.rng.random(count) < rr, READ, WRITE)
            for dt, kind in zip(offsets, kinds):
                key_id = key_dist.next_key(self.rng)
                records.append(
                    QueryRecord(
                        timestamp=t0 + float(dt),
                        kind=str(kind),
                        key=key_dist.key_name(key_id),
                    )
                )
        return Trace(records)

    # ------------------------------------------------------------------ specs

    def workload_specs(
        self, duration_seconds: float = FOUR_DAYS_SECONDS
    ) -> List[WorkloadSpec]:
        """One benchmark-ready spec per window (for replay experiments)."""
        return [
            WorkloadSpec(
                read_ratio=float(rr),
                krd_mean_ops=self.krd_mean_ops,
                name=f"mgrast-w{i:04d}",
            )
            for i, rr in enumerate(self.read_ratio_series(duration_seconds))
        ]
