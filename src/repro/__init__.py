"""repro: a reproduction of Rafiki (Middleware 2017).

Rafiki is a middleware for automatic parameter tuning of NoSQL
datastores under dynamic (metagenomics) workloads: ANOVA selects the key
configuration parameters, a Bayesian-regularized DNN ensemble learns a
throughput surrogate ``AOPS = fnet(workload, configuration)``, and a
genetic algorithm searches the surrogate for close-to-optimal settings
in seconds instead of the months an exhaustive benchmark sweep would
take.

Because the original evaluation requires physical Cassandra/ScyllaDB
testbeds, this package also ships the substrate: a working LSM-tree
storage engine over simulated hardware whose throughput responds to the
same mechanisms (compaction strategy, flush thresholds, caches, thread
pools) the paper tunes.  See DESIGN.md for the substitution map.

Quickstart::

    from repro import CassandraLike, RafikiPipeline, mgrast_workload

    cassandra = CassandraLike()
    pipeline = RafikiPipeline(cassandra, mgrast_workload(0.5), seed=7)
    rafiki, report = pipeline.run()
    best = rafiki.recommend(read_ratio=0.9)
    print(best.configuration.non_default_items())
"""

from repro.config import (
    CASSANDRA_KEY_PARAMETERS,
    Configuration,
    ConfigurationSpace,
    SCYLLA_KEY_PARAMETERS,
    cassandra_space,
    scylla_space,
)
from repro.datastore import CassandraLike, Cluster, EngineCluster, HashRing, ScyllaLike
from repro.errors import (
    FaultError,
    PersistenceError,
    ReproError,
    SearchError,
    TrainingError,
    TransientError,
)
from repro.faults import (
    ActuationFault,
    CrashPoint,
    FaultInjector,
    FaultPlan,
    StaleRecovery,
)
from repro.bench import (
    BenchmarkResult,
    DataCollectionCampaign,
    PerformanceDataset,
    PerformanceSample,
    YCSBBenchmark,
)
from repro.core import (
    ConfigurationOptimizer,
    DecisionPolicy,
    ExhaustiveSearch,
    ForecastPolicy,
    GreedySearch,
    HysteresisPolicy,
    OnlineController,
    OptimizationResult,
    OraclePolicy,
    Rafiki,
    RetryPolicy,
    RafikiPipeline,
    RandomSearch,
    ReactivePolicy,
    RecommendationCache,
    SurrogateModel,
    rank_parameters,
    select_key_parameters,
)
from repro.middleware import (
    DriftReconciler,
    GuardSpec,
    MiddlewareScheduler,
    ReconcileSpec,
    SimulatedDatastoreAdapter,
    SloSpec,
    TenantGuard,
    TenantSession,
    TenantSpec,
    load_manifest,
)
from repro.runtime import (
    EventBus,
    ExecutionBackend,
    ProcessPoolBackend,
    ScopedEventBus,
    SerialBackend,
)
from repro.workload import (
    MGRastTraceGenerator,
    Trace,
    WorkloadSpec,
    characterize_trace,
)
from repro.workload.spec import mgrast_workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "Configuration",
    "ConfigurationSpace",
    "cassandra_space",
    "scylla_space",
    "CASSANDRA_KEY_PARAMETERS",
    "SCYLLA_KEY_PARAMETERS",
    # datastores
    "CassandraLike",
    "ScyllaLike",
    "Cluster",
    "EngineCluster",
    "HashRing",
    # benchmarking
    "YCSBBenchmark",
    "BenchmarkResult",
    "DataCollectionCampaign",
    "PerformanceDataset",
    "PerformanceSample",
    # core
    "Rafiki",
    "RafikiPipeline",
    "SurrogateModel",
    "ConfigurationOptimizer",
    "ExhaustiveSearch",
    "GreedySearch",
    "RandomSearch",
    "OptimizationResult",
    "OnlineController",
    "RetryPolicy",
    "rank_parameters",
    "select_key_parameters",
    "RecommendationCache",
    # middleware service layer
    "MiddlewareScheduler",
    "TenantSession",
    "TenantSpec",
    "SimulatedDatastoreAdapter",
    "load_manifest",
    "SloSpec",
    "GuardSpec",
    "TenantGuard",
    "ReconcileSpec",
    "DriftReconciler",
    # fault injection
    "FaultPlan",
    "FaultInjector",
    "CrashPoint",
    "ActuationFault",
    "StaleRecovery",
    # decision policies
    "DecisionPolicy",
    "OraclePolicy",
    "ReactivePolicy",
    "ForecastPolicy",
    "HysteresisPolicy",
    # errors raised by the root-level API
    "ReproError",
    "SearchError",
    "TrainingError",
    "FaultError",
    "TransientError",
    "PersistenceError",
    # runtime
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "EventBus",
    "ScopedEventBus",
    # workloads
    "WorkloadSpec",
    "mgrast_workload",
    "MGRastTraceGenerator",
    "Trace",
    "characterize_trace",
]
