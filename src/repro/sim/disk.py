"""Disk cost model with foreground/background sharing.

Magnetic disks (the paper's testbed) have two distinct budgets: sequential
bandwidth (commit-log appends, memtable flushes, compaction streams) and
random IOPS (point reads into SSTables on a file-cache miss).  Background
compaction competes with foreground queries for both; we model that
contention with a fluid approximation — over an accounting interval, the
fraction of the budget consumed by compaction is unavailable to queries,
inflating their effective service time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.hardware import HardwareSpec


@dataclass
class DiskStats:
    """Cumulative I/O accounting (bytes and operations, simulated)."""

    seq_bytes_written: float = 0.0
    seq_bytes_read: float = 0.0
    random_reads: int = 0
    compaction_bytes: float = 0.0


class DiskModel:
    """Shared disk with sequential-bandwidth and random-IOPS budgets.

    Foreground and background demand is expressed as *utilization*
    fractions of each budget; the model exposes effective service times
    under the current background load.  This is a fluid-flow model, not an
    event-driven queue: it is accurate when demand changes slowly relative
    to individual operations, which holds for our 1-second accounting
    steps against millisecond-scale operations.
    """

    def __init__(self, hardware: HardwareSpec):
        self.hardware = hardware
        self.stats = DiskStats()
        # Background (compaction) demand as budget fractions, set each
        # accounting interval by the engine.
        self._bg_seq_util = 0.0
        self._bg_iops_util = 0.0

    # -- background demand -------------------------------------------------

    def set_background_utilization(self, seq_util: float, iops_util: float) -> None:
        """Declare compaction demand for the current interval.

        Utilizations are clamped to [0, 0.95]: even a saturated compactor
        leaves a sliver of budget for foreground I/O (the OS scheduler and
        Cassandra's compaction throughput throttle guarantee this in
        practice).
        """
        self._bg_seq_util = min(max(seq_util, 0.0), 0.95)
        self._bg_iops_util = min(max(iops_util, 0.0), 0.95)

    @property
    def background_seq_utilization(self) -> float:
        return self._bg_seq_util

    @property
    def background_iops_utilization(self) -> float:
        return self._bg_iops_util

    # -- effective budgets ---------------------------------------------------

    @property
    def effective_seq_bandwidth(self) -> float:
        """Bytes/s of sequential bandwidth left for foreground work."""
        return self.hardware.disk_seq_bandwidth * (1.0 - self._bg_seq_util)

    @property
    def effective_rand_iops(self) -> float:
        """Random reads/s left for foreground work."""
        return self.hardware.disk_rand_iops * self.hardware.disk_count * (
            1.0 - self._bg_iops_util
        )

    # -- foreground cost primitives ------------------------------------------

    def seq_write_seconds(self, nbytes: float) -> float:
        """Time to append ``nbytes`` sequentially (commit log, flush)."""
        if nbytes < 0:
            raise ValueError("negative byte count")
        self.stats.seq_bytes_written += nbytes
        return nbytes / self.effective_seq_bandwidth

    def seq_read_seconds(self, nbytes: float) -> float:
        """Time to stream-read ``nbytes`` (compaction input, scans)."""
        if nbytes < 0:
            raise ValueError("negative byte count")
        self.stats.seq_bytes_read += nbytes
        return nbytes / self.effective_seq_bandwidth

    def random_read_seconds(self, count: int = 1) -> float:
        """Time for ``count`` random point reads (SSTable cache misses)."""
        if count < 0:
            raise ValueError("negative read count")
        self.stats.random_reads += count
        return count / self.effective_rand_iops

    # -- background accounting -------------------------------------------------

    def account_compaction_bytes(self, nbytes: float) -> None:
        """Record compaction I/O volume (already paid via utilization)."""
        self.stats.compaction_bytes += nbytes

    def __repr__(self) -> str:
        return (
            f"DiskModel({self.hardware.name}, bg_seq={self._bg_seq_util:.2f}, "
            f"bg_iops={self._bg_iops_util:.2f})"
        )
