"""LRU file cache model.

Models Cassandra's ``file_cache_size_in_mb`` buffer: a capacity-bounded
LRU of fixed-size pages holding SSTable blocks read from disk.  The LSM
engine consults it on every SSTable access; hits cost CPU only, misses
cost a random disk read.

Two interfaces are provided on one structure:

* exact per-key LRU (:meth:`access`) used on the per-operation path, and
* an analytic hit-ratio estimator (:meth:`expected_hit_ratio`) used on the
  batched path, derived from the key-reuse-distance distribution — the
  same quantity the paper characterizes (KRD) and the reason caching is of
  "limited value" for MG-RAST (§3.3).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Hashable


class LruFileCache:
    """Bounded LRU over (table_id, block) keys with hit/miss accounting."""

    def __init__(self, capacity_bytes: int, page_bytes: int = 64 * 1024):
        if page_bytes <= 0:
            raise ValueError("page size must be positive")
        if capacity_bytes < 0:
            raise ValueError("capacity cannot be negative")
        self.capacity_bytes = int(capacity_bytes)
        self.page_bytes = int(page_bytes)
        self._capacity_pages = self.capacity_bytes // self.page_bytes
        self._pages: OrderedDict[Hashable, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def capacity_pages(self) -> int:
        return self._capacity_pages

    def __len__(self) -> int:
        return len(self._pages)

    def resize(self, capacity_bytes: int) -> None:
        """Change capacity (an online reconfiguration); evicts LRU pages."""
        if capacity_bytes < 0:
            raise ValueError("capacity cannot be negative")
        self.capacity_bytes = int(capacity_bytes)
        self._capacity_pages = self.capacity_bytes // self.page_bytes
        while len(self._pages) > self._capacity_pages:
            self._pages.popitem(last=False)

    def access(self, page_key: Hashable) -> bool:
        """Touch a page; return True on hit, False on miss (page loaded)."""
        if self._capacity_pages == 0:
            self.misses += 1
            return False
        if page_key in self._pages:
            self._pages.move_to_end(page_key)
            self.hits += 1
            return True
        self.misses += 1
        self._pages[page_key] = None
        if len(self._pages) > self._capacity_pages:
            self._pages.popitem(last=False)
        return False

    def invalidate_prefix(self, table_id: Hashable) -> int:
        """Drop all pages of a compacted-away SSTable; returns count."""
        stale = [k for k in self._pages if isinstance(k, tuple) and k[0] == table_id]
        for k in stale:
            del self._pages[k]
        return len(stale)

    def clear(self) -> None:
        self._pages.clear()

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- analytic path -----------------------------------------------------------

    def expected_hit_ratio(self, mean_reuse_distance: float, working_set_pages: float) -> float:
        """Estimate steady-state hit ratio from the KRD distribution.

        With exponentially distributed reuse distances of mean ``d`` (in
        pages touched between reuses) and a cache of ``C`` pages over a
        working set of ``W`` pages, a re-access hits iff fewer than ``C``
        *distinct* pages intervened.  Approximating distinct-page count by
        the reuse distance capped by the working set, the hit probability
        is ``P[D < C_eff] = 1 - exp(-C_eff / d)`` with
        ``C_eff = min(C, W)``.  This is the classic che-approximation
        shape and matches the paper's observation that huge KRD makes
        caches nearly useless.
        """
        if mean_reuse_distance <= 0:
            raise ValueError("mean reuse distance must be positive")
        c_eff = min(float(self._capacity_pages), max(working_set_pages, 1.0))
        if c_eff <= 0:
            return 0.0
        if working_set_pages <= self._capacity_pages:
            # Entire working set fits: everything but cold misses hits.
            return 1.0
        return 1.0 - math.exp(-c_eff / mean_reuse_distance)

    def __repr__(self) -> str:
        return (
            f"LruFileCache(cap={self.capacity_bytes / (1024 * 1024):.0f}MB, "
            f"pages={len(self._pages)}/{self._capacity_pages}, hit={self.hit_ratio:.2%})"
        )
