"""Deterministic random-number plumbing.

Every stochastic component (workload generator, GA, NN initialization,
ScyllaDB tuner noise, ...) takes an explicit ``numpy.random.Generator``.
This module centralizes how independent streams are derived from a single
experiment seed so that results are reproducible end to end and components
do not perturb each other's streams.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


class SeedSequence:
    """Hands out independent, named random streams from one root seed.

    >>> seeds = SeedSequence(42)
    >>> rng_a = seeds.stream("workload")
    >>> rng_b = seeds.stream("ga")

    The same (root seed, name, index) always yields the same stream, and
    distinct names yield statistically independent streams.
    """

    def __init__(self, root_seed: int = 0):
        self._root = int(root_seed)
        self._counts: dict[str, int] = {}

    @property
    def root_seed(self) -> int:
        return self._root

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh independent generator for ``name``.

        Calling the same name repeatedly yields a *new* independent stream
        each time (indexed), so components that need several generators can
        just call again.
        """
        index = self._counts.get(name, 0)
        self._counts[name] = index + 1
        # Hash the name into ints for numpy's SeedSequence entropy pool.
        name_entropy = [ord(c) for c in name] or [0]
        seq = np.random.SeedSequence([self._root, index, *name_entropy])
        return np.random.default_rng(seq)

    def child(self, name: str) -> "SeedSequence":
        """Derive a child SeedSequence (e.g., one per cluster node)."""
        rng = self.stream(f"child:{name}")
        return SeedSequence(int(rng.integers(0, 2**31 - 1)))


def derive_rng(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` (int, Generator, or None) into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
