"""Hardware specifications for simulated servers.

The paper's testbed is a Dell PowerEdge R430 (2× Xeon E5-2623 v3, 4 cores
each at 3.0 GHz, 32 GB RAM, 2× 1 TB mirrored magnetic disks at 6 Gbps)
driven by an Opteron 4386 client over a 1 Gbps switch.  We encode those
machines here; all cost models take a :class:`HardwareSpec` so experiments
can also explore other architectures (the paper notes Rafiki retrains per
architecture).
"""

from __future__ import annotations

from dataclasses import dataclass

MB = 1024 * 1024
GB = 1024 * MB


@dataclass(frozen=True)
class HardwareSpec:
    """Static description of a simulated server.

    Attributes
    ----------
    name:
        Human-readable label used in reports.
    cpu_cores:
        Number of physical cores available to the datastore process.
    cpu_ghz:
        Clock speed; scales per-operation CPU costs.
    ram_bytes:
        Total memory; bounds heap, memtable space, and file cache.
    disk_seq_bandwidth:
        Sequential read/write bandwidth in bytes/second (commit log,
        flushes, compaction are sequential).
    disk_rand_iops:
        Effective random block fetches per second *through the OS page
        cache*.  On the paper's testbed the benchmark working set is
        partially memory-resident, so a file-cache miss is usually served
        by the page cache and only sometimes by a physical seek; this
        budget models that blend (a raw 7.2k-RPM disk would do ~220).
    disk_count:
        Number of independent spindles (mirrored pairs count once for
        writes); bounds useful compaction concurrency.
    net_bandwidth:
        Client-server link bandwidth in bytes/second.
    """

    name: str
    cpu_cores: int
    cpu_ghz: float
    ram_bytes: int
    disk_seq_bandwidth: float
    disk_rand_iops: float
    disk_count: int
    net_bandwidth: float

    def __post_init__(self):
        if self.cpu_cores <= 0:
            raise ValueError("cpu_cores must be positive")
        if self.ram_bytes <= 0:
            raise ValueError("ram_bytes must be positive")
        if self.disk_seq_bandwidth <= 0 or self.disk_rand_iops <= 0:
            raise ValueError("disk characteristics must be positive")
        if self.disk_count <= 0:
            raise ValueError("disk_count must be positive")

    @property
    def heap_bytes(self) -> int:
        """JVM-style heap: 1/4 of RAM, the Cassandra default policy."""
        return self.ram_bytes // 4


#: The paper's server: Dell PowerEdge R430.
DEFAULT_SERVER = HardwareSpec(
    name="dell-r430",
    cpu_cores=8,
    cpu_ghz=3.0,
    ram_bytes=32 * GB,
    disk_seq_bandwidth=180 * MB,  # magnetic disk sequential
    disk_rand_iops=30_000.0,      # page-cache-blended random block fetches
    disk_count=2,
    net_bandwidth=125 * MB,       # 1 Gbps
)

#: The paper's client machine: Opteron 4386.
CLIENT_OPTERON = HardwareSpec(
    name="opteron-4386",
    cpu_cores=8,
    cpu_ghz=3.1,
    ram_bytes=16 * GB,
    disk_seq_bandwidth=120 * MB,
    disk_rand_iops=12_000.0,
    disk_count=1,
    net_bandwidth=125 * MB,
)
