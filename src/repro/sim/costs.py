"""Shared operation-cost model.

Both execution paths — the materialized per-operation engine and the
batched analytic model — price work through the formulas here, so they
agree by construction on *why* a configuration is fast or slow:

* writes pay CQL/memtable CPU plus commit-log sequential bytes, and are
  capped by worker-thread concurrency and flush-writer bandwidth;
* reads pay base CPU, a bloom-filter check per searched table, an
  index/merge cost per probed candidate, and a random block fetch for
  every file-cache miss;
* compaction is background work that steals sequential bandwidth and CPU
  from the foreground.

The constants are calibrated (see ``benchmarks/`` and EXPERIMENTS.md) so
the Dell R430 spec lands in the paper's 40k–110k ops/s range with the
Table 1 default/min/max ordering; absolute numbers are not the goal —
response *shape* is.
"""

from __future__ import annotations

from dataclasses import dataclass

US = 1e-6  # one microsecond in seconds


@dataclass(frozen=True)
class CostConstants:
    """Per-operation cost calibration (single 3.0 GHz core, seconds)."""

    # -- write path ------------------------------------------------------------
    cpu_write: float = 70.0 * US        # parse + commitlog append + memtable insert
    write_thread_hold: float = 240.0 * US  # wall time a write worker is occupied
    commitlog_overhead_bytes: float = 28.0  # framing per commit-log entry
    flush_writer_bandwidth: float = 52.0 * 1024 * 1024  # bytes/s per flush writer

    # -- read path -------------------------------------------------------------
    cpu_read_base: float = 75.0 * US    # parse + coordinator + memtable lookup
    cpu_bloom_check: float = 1.5 * US   # one bloom membership test
    cpu_probe: float = 10.0 * US        # index lookup + row merge per candidate
    cpu_cache_hit: float = 5.0 * US     # copy a block out of the file cache
    read_thread_hold: float = 210.0 * US  # wall time a read worker is occupied

    # -- compaction --------------------------------------------------------------
    compaction_cpu_per_byte: float = 5.0e-9  # merge CPU per input byte
    # compaction reads inputs and writes outputs: 2x bytes of seq traffic
    compaction_io_factor: float = 2.0

    # -- caching ---------------------------------------------------------------
    # One cached 64k block effectively covers this many *operations* of
    # key-reuse distance: blocks hold ~256 records but random access over
    # a sorted table realizes only partial spatial locality.
    cache_coverage_ops_per_page: float = 4.0
    # Leveled compaction "groups data by rows" where size-tiered's
    # "merge-by-size process does not" (paper §2.2.2): clustered rows
    # make each cached block cover more of the reuse stream.
    leveled_cache_locality: float = 3.0

    # -- contention ----------------------------------------------------------------
    # Lock and scheduler contention grows smoothly (quadratically) with
    # the oversubscription ratio threads / (4 x cores); produces the
    # CW=64 droop in Figure 6 without a kinked response surface.
    contention_quadratic: float = 0.04
    oversubscription_factor: float = 4.0


DEFAULT_COSTS = CostConstants()


def thread_pool_rate(
    threads: int,
    hold_seconds: float,
    cores: float,
    cpu_seconds_per_op: float,
    costs: CostConstants = DEFAULT_COSTS,
) -> float:
    """Max ops/s a worker pool can sustain.

    Two ceilings apply: the pool itself (``threads / hold_seconds`` —
    workers spend most of their hold time blocked on I/O or locks, which
    is why more threads than cores helps up to a point), and the CPU
    (``cores / cpu_seconds_per_op``).  Past heavy oversubscription a
    contention penalty erodes the CPU ceiling, making concurrency knobs
    non-monotonic.
    """
    if threads < 1:
        raise ValueError("thread count must be >= 1")
    if hold_seconds <= 0 or cpu_seconds_per_op <= 0:
        raise ValueError("costs must be positive")
    pool_rate = threads / hold_seconds
    cpu_rate = (cores / cpu_seconds_per_op) / thread_contention(threads, cores, costs)
    return min(pool_rate, cpu_rate)


def thread_contention(
    threads: float, cores: float, costs: CostConstants = DEFAULT_COSTS
) -> float:
    """Smooth CPU-cost inflation factor for a pool of ``threads``."""
    ratio = threads / max(costs.oversubscription_factor * cores, 1.0)
    return 1.0 + costs.contention_quadratic * ratio * ratio


def read_cpu_seconds(
    tables_bloom_checked: float,
    candidates_probed: float,
    cache_hits: float,
    costs: CostConstants = DEFAULT_COSTS,
) -> float:
    """CPU seconds of one read: base + blooms + probes + cache copies."""
    return (
        costs.cpu_read_base
        + tables_bloom_checked * costs.cpu_bloom_check
        + candidates_probed * costs.cpu_probe
        + cache_hits * costs.cpu_cache_hit
    )


def read_cpu_seconds_array(
    tables_bloom_checked,
    candidates_probed,
    cache_hits,
    costs: CostConstants = DEFAULT_COSTS,
):
    """Vectorized :func:`read_cpu_seconds` over numpy tally arrays.

    The expression tree is kept identical (same left-associated adds on
    float64), so each element is bit-equal to the scalar call with the
    same tallies — the batch≡scalar convention the engine's
    ``execute_batch`` equivalence tests pin down.
    """
    return (
        costs.cpu_read_base
        + tables_bloom_checked * costs.cpu_bloom_check
        + candidates_probed * costs.cpu_probe
        + cache_hits * costs.cpu_cache_hit
    )


def write_cpu_seconds(costs: CostConstants = DEFAULT_COSTS) -> float:
    """CPU seconds of one write (whole-row upsert)."""
    return costs.cpu_write


def commitlog_bytes_per_write(
    record_bytes: float, costs: CostConstants = DEFAULT_COSTS
) -> float:
    return record_bytes + costs.commitlog_overhead_bytes


def expected_version_spread(
    table_count: float, update_fraction: float
) -> float:
    """Expected number of tables truly holding versions of a read key.

    With whole-row upserts a key usually lives in one table, but updates
    scatter newer versions into younger tables before compaction gathers
    them: the spread grows with the update share of writes and saturates
    with the table count (paper §2.2.2: size-tiered "makes it more likely
    that versions of a particular row may be spread over many SSTables").
    """
    if table_count <= 1:
        return max(table_count, 0.0) if table_count < 1 else 1.0
    spread = 1.0 + min(3.0, (table_count - 1) / 3.0) * min(max(update_fraction, 0.0), 1.0)
    return min(spread, table_count)


def expected_disk_probes_per_read(
    version_spread: float,
    tables_bloom_checked: float,
    fp_chance: float,
    cache_hit_ratio: float,
) -> float:
    """Expected random block fetches per read.

    Cassandra must merge row fragments, so the read probes every
    bloom-positive table: all true version holders plus false positives
    among the rest; every probe misses the cache with probability
    ``1 - hit``.
    """
    fp_tables = fp_chance * max(tables_bloom_checked - version_spread, 0.0)
    touched = max(version_spread, 1.0) + fp_tables
    return touched * (1.0 - min(max(cache_hit_ratio, 0.0), 1.0))
