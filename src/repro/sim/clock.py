"""A simulated clock.

All performance in this reproduction is measured in *simulated seconds*:
operations consume time according to the cost models in :mod:`repro.sim`,
and throughput is ``operations / elapsed simulated time``.  This lets a
"5-minute" benchmark from the paper complete in milliseconds of wall time
while preserving the relative costs that make tuning interesting.
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated clock measured in seconds.

    The clock only moves forward via :meth:`advance`; it never reads wall
    time, which keeps every experiment deterministic.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("clock cannot start before t=0")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time.

        Negative advances are rejected: simulated time is monotonic.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        self._now += seconds
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to absolute time ``t`` (no-op if in the past)."""
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.6f}s)"
