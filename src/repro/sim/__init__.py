"""Simulated-time hardware substrate.

The paper benchmarks real servers; this package provides the deterministic,
seedable stand-in: a simulated clock, a disk with separate sequential
bandwidth and random-IOPS budgets shared between foreground queries and
background compaction, a CPU-core pool with contention, and an LRU file
cache.  Every cost formula lives here so the per-operation and batched
execution paths of the LSM engine agree by construction.
"""

from repro.sim.clock import SimClock
from repro.sim.cpu import CpuModel
from repro.sim.disk import DiskModel
from repro.sim.cache import LruFileCache
from repro.sim.hardware import HardwareSpec, DEFAULT_SERVER, CLIENT_OPTERON
from repro.sim.rng import SeedSequence, derive_rng

__all__ = [
    "SimClock",
    "CpuModel",
    "DiskModel",
    "LruFileCache",
    "HardwareSpec",
    "DEFAULT_SERVER",
    "CLIENT_OPTERON",
    "SeedSequence",
    "derive_rng",
]
