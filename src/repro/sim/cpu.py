"""CPU cost model with concurrency contention.

Concurrency knobs like ``concurrent_writes`` control how many worker
threads serve requests.  Throughput scales with the thread count until it
saturates the cores, after which extra threads add context-switch and lock
contention overhead — this is what makes the concurrency parameters
non-monotonic in the paper's Figure 6.
"""

from __future__ import annotations

from repro.sim.hardware import HardwareSpec

#: Reference clock used to normalize per-op CPU costs across hardware.
_REFERENCE_GHZ = 3.0

#: Per-extra-thread contention penalty once past saturation.  Calibrated so
#: that oversubscribing by 8x costs roughly 30% of peak throughput, in line
#: with the CW=64 degradation the paper reports for leveled compaction.
_CONTENTION_PER_THREAD = 0.012


class CpuModel:
    """Maps thread counts to effective parallel speedup.

    ``effective_parallelism(threads)`` is the factor by which a pool of
    ``threads`` workers divides per-operation CPU time, accounting for the
    core limit and oversubscription contention.
    """

    def __init__(self, hardware: HardwareSpec, background_utilization: float = 0.0):
        self.hardware = hardware
        self._bg_util = min(max(background_utilization, 0.0), 0.9)

    def set_background_utilization(self, util: float) -> None:
        """Declare background CPU demand (compaction merge work)."""
        self._bg_util = min(max(util, 0.0), 0.9)

    @property
    def background_utilization(self) -> float:
        return self._bg_util

    @property
    def available_cores(self) -> float:
        """Cores left for foreground work this interval."""
        return self.hardware.cpu_cores * (1.0 - self._bg_util)

    def scale_cost(self, reference_seconds: float) -> float:
        """Scale a cost calibrated at 3.0 GHz to this machine's clock."""
        return reference_seconds * (_REFERENCE_GHZ / self.hardware.cpu_ghz)

    def effective_parallelism(self, threads: int) -> float:
        """Speedup factor for a pool of ``threads`` workers.

        Below the available core count, speedup is linear.  Past it,
        speedup plateaus and then *decreases* as contention costs mount:

        ``p(t) = min(t, cores) / (1 + c * max(0, t - saturation))``

        where ``saturation`` allows modest oversubscription (I/O-blocked
        threads) before contention kicks in.
        """
        if threads < 1:
            raise ValueError("thread count must be >= 1")
        cores = max(self.available_cores, 0.5)
        saturation = cores * 2.0  # tolerate 2 threads/core before penalty
        base = min(float(threads), cores)
        over = max(0.0, threads - saturation)
        return base / (1.0 + _CONTENTION_PER_THREAD * over * (threads / cores) )

    def __repr__(self) -> str:
        return f"CpuModel({self.hardware.name}, bg={self._bg_util:.2f})"
