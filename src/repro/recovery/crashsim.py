"""Drive an LSM engine through an op stream with scheduled kills.

The fidelity gap this closes: the engine has always *paid* for its
commit log (sync barriers, segment accounting) without ever exercising
the recovery path the log exists for.  This module is the harness that
does — apply a workload, kill the process at the
:class:`~repro.faults.plan.CrashPoint`\\ s of a fault plan, run
commitlog replay + SSTable scrub, keep going, and check at the end that
the survivor serves exactly what an uninterrupted engine would.

Ops are plain tuples so tests and hypothesis strategies can build them
directly: ``("put", key, value)``, ``("delete", key)``, ``("get", key)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.plan import CrashPoint, FaultPlan
from repro.lsm.engine import LSMEngine, RecoveryReport

Op = Tuple  # ("put", key, value) | ("delete", key) | ("get", key)


@dataclass
class CrashSimReport:
    """Outcome of one crash-injected run."""

    applied_ops: int = 0
    crashes: int = 0
    get_results: List[Optional[bytes]] = field(default_factory=list)
    recoveries: List[RecoveryReport] = field(default_factory=list)


def generate_ops(
    rng: np.random.Generator,
    n_ops: int,
    n_keys: int = 40,
    value_bytes: int = 64,
    read_fraction: float = 0.3,
    delete_fraction: float = 0.1,
) -> List[Op]:
    """A deterministic mixed op stream for crash tests and tours."""
    ops: List[Op] = []
    for _ in range(n_ops):
        key = f"key-{int(rng.integers(n_keys)):06d}"
        draw = rng.random()
        if draw < read_fraction:
            ops.append(("get", key))
        elif draw < read_fraction + delete_fraction:
            ops.append(("delete", key))
        else:
            value = rng.integers(0, 256, size=value_bytes, dtype=np.uint8)
            ops.append(("put", key, value.tobytes()))
    return ops


def apply_op(engine: LSMEngine, op: Op) -> Optional[Optional[bytes]]:
    """Apply one op; returns the value for gets, ``None`` otherwise."""
    kind = op[0]
    if kind == "put":
        engine.put(op[1], op[2])
        return None
    if kind == "delete":
        engine.delete(op[1])
        return None
    if kind == "get":
        return engine.get(op[1])
    raise ValueError(f"unknown op kind {kind!r}")


def run_ops(
    engine: LSMEngine,
    ops: Iterable[Op],
    crash_plan: Optional[FaultPlan] = None,
) -> CrashSimReport:
    """Apply ``ops`` in order, killing + recovering at each crash point.

    A :class:`CrashPoint` at op index ``k`` strikes *before* the k-th op
    runs: the engine loses its volatile state, recovers through scrub +
    commitlog replay, and the stream continues on the rebuilt engine —
    the same sequence a restarted server sees.
    """
    crash_ops = (
        {p.op for p in crash_plan.crash_points} if crash_plan is not None else set()
    )
    report = CrashSimReport()
    for index, op in enumerate(ops):
        if index in crash_ops:
            engine.crash()
            report.recoveries.append(engine.recover())
            report.crashes += 1
        result = apply_op(engine, op)
        if op[0] == "get":
            report.get_results.append(result)
        report.applied_ops += 1
    return report


def state_snapshot(engine: LSMEngine, keys: Sequence[str]) -> Dict[str, Optional[bytes]]:
    """Visible value per key — the basis for crash-equivalence checks.

    Uses the uncharged probe path so snapshotting does not advance the
    simulated clock (comparisons should not perturb what they compare).
    """
    out: Dict[str, Optional[bytes]] = {}
    for key in keys:
        best, _, _, _, _ = engine._probe_newest(key)
        out[key] = None if best is None or best.is_tombstone else best.value
    return out


def states_equivalent(
    crashed: LSMEngine, reference: LSMEngine, keys: Sequence[str]
) -> bool:
    """Whether both engines serve identical values for every key."""
    return state_snapshot(crashed, keys) == state_snapshot(reference, keys)
