"""Crash-safe persistence and resumable offline pipelines.

The offline phase is the expensive part of Rafiki — hundreds of
five-minute benchmark campaigns plus an ensemble of trained networks —
and this package is what lets a process kill cost seconds instead of
hours:

* :mod:`repro.recovery.atomic` — every artifact (surrogate, dataset,
  checkpoint) is written temp-file + fsync + rename with a CRC32
  footer, and every load rejects corruption with
  :class:`~repro.errors.PersistenceError`.
* :mod:`repro.recovery.journal` — the collection campaign's append-only
  JSONL WAL; a killed campaign resumes from the last durable sample and
  produces a bit-identical dataset.
* :mod:`repro.recovery.checkpoint` — per-member training checkpoints;
  a restarted ensemble fit skips already-trained networks and yields
  bitwise-identical weights.
* :mod:`repro.recovery.crashsim` — kills an LSM engine at scheduled
  :class:`~repro.faults.plan.CrashPoint`\\ s and rebuilds it through
  commitlog replay + SSTable checksum scrub.

Recovery actions are observable on the EventBus: ``recovery.resumed``
(work skipped because durable state covered it),
``recovery.journal_replayed`` (a WAL was re-applied), and
``recovery.corrupt_artifact`` (a file failed verification).
"""

from repro.recovery.atomic import (
    ARTIFACT_VERSION,
    read_artifact,
    verify_artifact,
    write_artifact,
    write_text_atomic,
)
from repro.recovery.checkpoint import (
    load_member_checkpoint,
    member_checkpoint_path,
    save_member_checkpoint,
    training_fingerprint,
)
from repro.recovery.crashsim import (
    CrashSimReport,
    generate_ops,
    run_ops,
    state_snapshot,
    states_equivalent,
)
from repro.recovery.journal import Journal, read_journal

__all__ = [
    "ARTIFACT_VERSION",
    "CrashSimReport",
    "Journal",
    "generate_ops",
    "load_member_checkpoint",
    "member_checkpoint_path",
    "read_artifact",
    "read_journal",
    "run_ops",
    "save_member_checkpoint",
    "state_snapshot",
    "states_equivalent",
    "training_fingerprint",
    "verify_artifact",
    "write_artifact",
    "write_text_atomic",
]
