"""Atomic, checksummed artifact files.

Every artifact this package writes (surrogate weights, collection
datasets, training checkpoints) used to be a bare ``open(path, "w")`` —
a crash mid-write left a truncated or torn file that later loads parsed
half-way and failed with raw ``JSONDecodeError``/``KeyError``.  This
module is the single write/read path for those artifacts:

* **Atomic replace** — content is written to a temp file in the target
  directory, fsynced, then ``os.replace``d over the destination (and the
  directory entry fsynced), so readers only ever observe the old file or
  the complete new one.
* **Self-describing envelope** — artifacts are a single JSON document
  carrying a ``format_version`` header, an ``artifact_kind`` tag, and a
  ``crc32`` footer computed over the canonical serialization of
  everything else.  The envelope keys live at the top level next to the
  payload's own keys, so artifacts stay plain, human-inspectable JSON.
* **Checked reads** — :func:`read_artifact` rejects missing, truncated,
  bit-flipped, or mis-typed files with
  :class:`~repro.errors.PersistenceError` instead of leaking parser
  internals.  Legacy (pre-checksum) files are accepted when
  ``allow_legacy`` is set so artifacts written by older builds keep
  loading; corruption in those cannot be detected beyond JSON validity.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import zlib
from typing import Dict, Optional, Union

from repro.errors import PersistenceError

PathLike = Union[str, pathlib.Path]

#: On-disk envelope version for all artifact files.
ARTIFACT_VERSION = 1

#: Envelope keys owned by this layer (payloads may not redefine them).
_ENVELOPE_KEYS = ("format_version", "artifact_kind", "crc32")


def canonical_json(obj) -> str:
    """Deterministic serialization used for checksums (not for storage).

    ``default=float`` matches the storage serialization, so a checksum
    computed before writing equals one computed over the parsed
    document after reading.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=float)


def body_crc32(body: Dict) -> int:
    """CRC32 of an artifact body (everything except the ``crc32`` footer)."""
    return zlib.crc32(canonical_json(body).encode("utf-8")) & 0xFFFFFFFF


def fsync_directory(directory: PathLike) -> None:
    """Flush a directory entry so a rename survives power loss."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir-fsync
        pass
    finally:
        os.close(fd)


def write_text_atomic(path: PathLike, text: str) -> None:
    """Write ``text`` to ``path`` via temp file + fsync + rename."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, str(path))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_directory(path.parent)


def write_artifact(
    path: PathLike,
    payload: Dict,
    kind: str,
    version: int = ARTIFACT_VERSION,
    indent: Optional[int] = None,
) -> None:
    """Atomically write ``payload`` as a checksummed ``kind`` artifact.

    The payload's keys land at the top level of the JSON document, after
    the ``format_version``/``artifact_kind`` header; the ``crc32`` footer
    is appended last.  A payload carrying its own ``format_version``
    must agree with ``version`` (the surrogate format predates the
    envelope and keeps its field).
    """
    body = {"format_version": int(version), "artifact_kind": kind}
    for key in _ENVELOPE_KEYS:
        if key in payload and key != "format_version":
            raise PersistenceError(f"payload may not define envelope key {key!r}")
    if "format_version" in payload and payload["format_version"] != version:
        raise PersistenceError(
            f"payload format_version {payload['format_version']!r} disagrees "
            f"with artifact version {version!r}"
        )
    body.update(payload)
    document = dict(body)
    document["crc32"] = body_crc32(body)
    write_text_atomic(path, json.dumps(document, indent=indent, default=float))


def read_artifact(
    path: PathLike,
    kind: Optional[str] = None,
    allow_legacy: bool = False,
    events=None,
) -> Dict:
    """Read and verify an artifact written by :func:`write_artifact`.

    Returns the body (envelope header included, ``crc32`` footer
    stripped).  Raises :class:`PersistenceError` if the file is missing,
    not valid JSON (truncated/torn), fails its checksum (bit-flipped),
    or carries the wrong ``artifact_kind``.  With ``allow_legacy``, a
    well-formed JSON object without a ``crc32`` footer is returned
    unverified (pre-envelope files).  ``events`` (an EventBus) receives
    a ``recovery.corrupt_artifact`` event before any corruption raise.
    """
    path = pathlib.Path(path)

    def corrupt(reason: str) -> PersistenceError:
        if events is not None:
            events.publish(
                "recovery.corrupt_artifact",
                f"corrupt artifact {path}: {reason}",
                path=str(path),
                reason=reason,
            )
        return PersistenceError(f"corrupt artifact {path}: {reason}")

    try:
        text = path.read_text()
    except FileNotFoundError as exc:
        raise PersistenceError(f"artifact not found: {path}") from exc
    except OSError as exc:
        raise PersistenceError(f"cannot read artifact {path}: {exc}") from exc
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise corrupt(f"invalid JSON (truncated write?): {exc}") from exc
    if not isinstance(document, dict):
        raise corrupt("artifact root is not a JSON object")

    if "crc32" not in document:
        if allow_legacy:
            return document
        raise corrupt("missing crc32 footer (not an artifact file?)")
    stored_crc = document.pop("crc32")
    if not isinstance(stored_crc, int):
        raise corrupt("crc32 footer is not an integer")
    actual_crc = body_crc32(document)
    if actual_crc != stored_crc:
        raise corrupt(
            f"checksum mismatch (stored {stored_crc:#010x}, "
            f"computed {actual_crc:#010x})"
        )
    if kind is not None and document.get("artifact_kind") != kind:
        raise corrupt(
            f"artifact kind {document.get('artifact_kind')!r}, expected {kind!r}"
        )
    return document


def verify_artifact(path: PathLike) -> Dict:
    """Checksum-verify an artifact and summarize it (CLI ``verify-artifact``).

    Returns ``{"path", "artifact_kind", "format_version", "keys"}``;
    raises :class:`PersistenceError` exactly as :func:`read_artifact`.
    """
    body = read_artifact(path)
    return {
        "path": str(path),
        "artifact_kind": body.get("artifact_kind"),
        "format_version": body.get("format_version"),
        "keys": sorted(k for k in body if k not in _ENVELOPE_KEYS),
    }
