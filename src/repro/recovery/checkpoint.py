"""Per-member training checkpoints for resumable ensemble fits.

The paper's offline phase trains 20 Bayesian-regularized networks; each
member is minutes of LM iterations, and a kill near the end used to
throw all of it away.  Because members train from pre-derived seeds on
identical standardized data, each one is an independent, reproducible
work unit — so a checkpoint is simply the member's trained weights plus
its :class:`~repro.ml.train.TrainingResult`, keyed by everything that
determines it: the member seed, the topology, and a fingerprint of the
standardized training data and ensemble config.

A restarted ``fit`` loads matching checkpoints (bitwise-identical
weights, since floats round-trip exactly through JSON ``repr``), trains
only the missing members, and lands on the same pruned ensemble as an
uninterrupted run.  A corrupt or stale checkpoint is never trusted: it
is reported (``recovery.corrupt_artifact``) and the member retrains.
"""

from __future__ import annotations

import pathlib
import zlib
from typing import Optional, Tuple, Union

import numpy as np

from repro.errors import PersistenceError, TrainingError
from repro.ml.network import FeedForwardNetwork
from repro.ml.train import TrainingResult
from repro.recovery.atomic import read_artifact, write_artifact

PathLike = Union[str, pathlib.Path]

CHECKPOINT_KIND = "ensemble-member"


def training_fingerprint(x: np.ndarray, y: np.ndarray, config_tag: str) -> int:
    """CRC32 over the standardized training data and ensemble config.

    Ties a checkpoint to the exact fit that produced it: resuming
    against different data (or a different ensemble shape) must retrain
    rather than splice in stale members.
    """
    crc = zlib.crc32(np.ascontiguousarray(x, dtype=float).tobytes())
    crc = zlib.crc32(np.ascontiguousarray(y, dtype=float).tobytes(), crc)
    crc = zlib.crc32(config_tag.encode("utf-8"), crc)
    return crc & 0xFFFFFFFF


def member_checkpoint_path(directory: PathLike, member: int) -> pathlib.Path:
    return pathlib.Path(directory) / f"member-{member:04d}.json"


def save_member_checkpoint(
    directory: PathLike,
    member: int,
    seed: int,
    fingerprint: int,
    net: FeedForwardNetwork,
    result: TrainingResult,
) -> pathlib.Path:
    """Atomically persist one trained member."""
    path = member_checkpoint_path(directory, member)
    write_artifact(
        path,
        {
            "member": member,
            "seed": seed,
            "fingerprint": fingerprint,
            "layer_sizes": list(net.layer_sizes),
            "weights": net.get_weights().tolist(),
            "result": result.to_dict(),
        },
        kind=CHECKPOINT_KIND,
    )
    return path


def load_member_checkpoint(
    directory: PathLike,
    member: int,
    seed: int,
    layer_sizes: Tuple[int, ...],
    fingerprint: int,
    events=None,
) -> Optional[Tuple[FeedForwardNetwork, TrainingResult]]:
    """Load one member if a trustworthy checkpoint exists.

    Returns ``None`` when the checkpoint is absent, corrupt (reported on
    the bus and deleted from consideration — the member retrains), or
    stale (seed/topology/data fingerprint mismatch: a different run's
    leftovers, silently ignored).
    """
    path = member_checkpoint_path(directory, member)
    if not path.exists():
        return None
    try:
        body = read_artifact(path, kind=CHECKPOINT_KIND, events=events)
        stored_seed = body["seed"]
        stored_sizes = tuple(body["layer_sizes"])
        stored_fp = body["fingerprint"]
        weights = np.asarray(body["weights"], dtype=float)
        result = TrainingResult.from_dict(body["result"])
    except PersistenceError:
        return None
    except (KeyError, TypeError, ValueError, TrainingError):
        if events is not None:
            events.publish(
                "recovery.corrupt_artifact",
                f"malformed checkpoint {path}",
                path=str(path),
                reason="malformed payload",
            )
        return None
    if (
        stored_seed != seed
        or stored_sizes != tuple(layer_sizes)
        or stored_fp != fingerprint
    ):
        return None
    net = FeedForwardNetwork(list(layer_sizes), rng=np.random.default_rng(0))
    try:
        net.set_weights(weights)
    except Exception:
        return None
    return net, result
