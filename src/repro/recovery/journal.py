"""Append-only JSONL journals (the campaign write-ahead log).

A journal is one header line followed by one line per durable record::

    {"journal": "collection-campaign", "format_version": 1, "header": {...}, "crc32": N}
    {"data": {...}, "crc32": N}
    {"data": {...}, "crc32": N}

Each line carries a CRC32 of the canonical serialization of its content,
and every append is flushed and fsynced before the caller proceeds — so
after a kill the journal is a valid prefix of the run, except possibly a
torn final line.  :meth:`Journal.open` detects that torn tail, truncates
it away, and resumes appending; a corrupt line anywhere *else* means the
file was damaged at rest and raises
:class:`~repro.errors.PersistenceError` (the records after it cannot be
trusted).

The header is the run's fingerprint (campaign seed, grid shape, fault
plan, ...).  Re-opening a journal with a different fingerprint refuses
to resume rather than silently mixing two campaigns' samples.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import PersistenceError
from repro.recovery.atomic import body_crc32, fsync_directory

PathLike = Union[str, pathlib.Path]

JOURNAL_VERSION = 1


def _encode_line(content: Dict) -> str:
    document = dict(content)
    document["crc32"] = body_crc32(content)
    return json.dumps(document, separators=(",", ":"), default=float) + "\n"


def _decode_line(line: str) -> Dict:
    """Parse + CRC-check one complete line; raises ValueError if bad."""
    document = json.loads(line)
    if not isinstance(document, dict) or "crc32" not in document:
        raise ValueError("journal line missing crc32")
    stored = document.pop("crc32")
    if body_crc32(document) != stored:
        raise ValueError("journal line checksum mismatch")
    return document


class Journal:
    """One append-only, CRC-per-line journal file."""

    def __init__(self, path: PathLike, kind: str, header: Dict):
        self.path = pathlib.Path(path)
        self.kind = kind
        self.header = header
        self._fh = None

    # -- opening -------------------------------------------------------------

    @classmethod
    def open(
        cls, path: PathLike, kind: str, header: Dict, events=None
    ) -> Tuple["Journal", List[Dict]]:
        """Create or resume a journal; returns ``(journal, records)``.

        A fresh path gets the header written (fsynced) immediately.  An
        existing file is validated — kind and fingerprint must match
        ``header`` — its durable records are returned, and a torn final
        line (the crash signature) is truncated away so appends continue
        from the last durable record.
        """
        journal = cls(path, kind, header)
        path = journal.path
        if path.exists() and path.stat().st_size > 0:
            records, keep_bytes, torn = journal._load(events=events)
            mode = "r+"
            with open(path, mode) as fh:
                if torn:
                    fh.truncate(keep_bytes)
            journal._fh = open(path, "a")
            return journal, records
        path.parent.mkdir(parents=True, exist_ok=True)
        journal._fh = open(path, "w")
        journal._fh.write(
            _encode_line(
                {
                    "journal": kind,
                    "format_version": JOURNAL_VERSION,
                    "header": header,
                }
            )
        )
        journal._sync()
        fsync_directory(path.parent)
        return journal, []

    def _load(self, events=None) -> Tuple[List[Dict], int, bool]:
        """Read back ``(records, durable_byte_length, torn_tail)``."""

        def corrupt(reason: str) -> PersistenceError:
            if events is not None:
                events.publish(
                    "recovery.corrupt_artifact",
                    f"corrupt journal {self.path}: {reason}",
                    path=str(self.path),
                    reason=reason,
                )
            return PersistenceError(f"corrupt journal {self.path}: {reason}")

        raw = self.path.read_bytes().decode("utf-8", errors="replace")
        lines = raw.split("\n")
        # A well-formed file ends with "\n", so the final split entry is
        # empty; anything else is a torn tail candidate.
        complete, tail = lines[:-1], lines[-1]
        if not complete:
            raise corrupt("no header line")
        try:
            head = _decode_line(complete[0])
        except ValueError as exc:
            raise corrupt(f"bad header line: {exc}") from exc
        if head.get("journal") != self.kind:
            raise corrupt(
                f"journal kind {head.get('journal')!r}, expected {self.kind!r}"
            )
        if head.get("format_version") != JOURNAL_VERSION:
            raise corrupt(f"unsupported journal version {head.get('format_version')!r}")
        if head.get("header") != _normalize(self.header):
            raise PersistenceError(
                f"journal {self.path} belongs to a different run: stored header "
                f"{head.get('header')!r} != expected {_normalize(self.header)!r}"
            )

        records: List[Dict] = []
        durable_bytes = len(complete[0].encode("utf-8")) + 1
        torn = bool(tail)
        for lineno, line in enumerate(complete[1:], start=2):
            try:
                document = _decode_line(line)
            except ValueError as exc:
                if lineno == len(complete):
                    # Complete-looking but unverifiable final line: treat
                    # as the torn tail of a crashed append.
                    torn = True
                    break
                raise corrupt(f"bad record at line {lineno}: {exc}") from exc
            if "data" not in document:
                raise corrupt(f"record at line {lineno} has no data field")
            records.append(document["data"])
            durable_bytes += len(line.encode("utf-8")) + 1
        return records, durable_bytes, torn

    # -- appending -----------------------------------------------------------

    def append(self, record: Dict) -> None:
        """Durably append one record (flushed + fsynced before return)."""
        if self._fh is None:
            raise PersistenceError(f"journal {self.path} is not open")
        self._fh.write(_encode_line({"data": record}))
        self._sync()

    def _sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_journal(path: PathLike, kind: Optional[str] = None) -> Tuple[Dict, List[Dict]]:
    """Read a journal without resuming it: ``(header, records)``.

    Used by ``repro resume`` (to rebuild the campaign from the stored
    fingerprint) and ``repro verify-artifact``.  Tolerates a torn tail;
    raises :class:`PersistenceError` on anything worse.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise PersistenceError(f"journal not found: {path}")
    probe = Journal(path, kind or "", {})
    raw = path.read_bytes().decode("utf-8", errors="replace")
    lines = raw.split("\n")
    complete = lines[:-1]
    if not complete:
        raise PersistenceError(f"corrupt journal {path}: no header line")
    try:
        head = _decode_line(complete[0])
    except ValueError as exc:
        raise PersistenceError(f"corrupt journal {path}: bad header line: {exc}")
    if kind is not None and head.get("journal") != kind:
        raise PersistenceError(
            f"corrupt journal {path}: kind {head.get('journal')!r}, expected {kind!r}"
        )
    probe.kind = head.get("journal")
    probe.header = head.get("header", {})
    records, _, _ = probe._load()
    return head.get("header", {}), records


def _normalize(obj):
    """Round-trip through JSON so tuples/ints compare like stored values."""
    return json.loads(json.dumps(obj, default=float))
