"""Configuration parameter spaces for the tuned datastores.

Implements the paper's notation (§3.2): a database exposes parameters
``P = {p1..pJ}`` each with constraints and a default; a configuration
``C = {v1..vJ}`` assigns values, with unmentioned parameters at their
defaults.
"""

from repro.config.parameter import (
    CategoricalParameter,
    IntegerParameter,
    FloatParameter,
    ParameterSpec,
)
from repro.config.space import Configuration, ConfigurationSpace
from repro.config.cassandra import (
    cassandra_space,
    CASSANDRA_KEY_PARAMETERS,
)
from repro.config.scylla import scylla_space, SCYLLA_KEY_PARAMETERS

__all__ = [
    "ParameterSpec",
    "CategoricalParameter",
    "IntegerParameter",
    "FloatParameter",
    "Configuration",
    "ConfigurationSpace",
    "cassandra_space",
    "CASSANDRA_KEY_PARAMETERS",
    "scylla_space",
    "SCYLLA_KEY_PARAMETERS",
]
