"""Cassandra 3.7 performance-parameter space.

The paper works from ``cassandra.yaml``: 50+ parameters, "around half of
which are related to performance tuning" (§3.4.1).  We model the 25
performance-related ones.  Five of them — the paper's "key parameters"
(§3.4.1) — have first-order effects in the simulated engine:

* ``compaction_method`` (CM)          — Size-Tiered vs Leveled
* ``concurrent_writes`` (CW)          — write worker threads
* ``file_cache_size_in_mb`` (FCZ)     — SSTable block cache
* ``memtable_cleanup_threshold`` (MT) — flush trigger fraction
* ``concurrent_compactors`` (CC)      — parallel compaction processes

A second tier (flush writers, memtable space, read concurrency, bloom FP
chance, compaction throttle, ...) has weaker but measurable effects so the
ANOVA ranking in Figure 5 has a realistic tail; the rest are plumbing
whose variation is pure noise.
"""

from __future__ import annotations

from repro.config.parameter import (
    CategoricalParameter,
    FloatParameter,
    IntegerParameter,
)
from repro.config.space import ConfigurationSpace

#: Compaction strategy labels (the third vendor option, TimeWindow, is for
#: TTL/time-series data and explicitly out of scope in the paper).
SIZE_TIERED = "SizeTieredCompactionStrategy"
LEVELED = "LeveledCompactionStrategy"

#: The five key parameters Rafiki tunes for Cassandra (paper §3.4.1).
CASSANDRA_KEY_PARAMETERS = (
    "compaction_method",
    "concurrent_writes",
    "file_cache_size_in_mb",
    "memtable_cleanup_threshold",
    "concurrent_compactors",
)


def cassandra_space() -> ConfigurationSpace:
    """Build the Cassandra configuration space with vendor defaults."""
    params = [
        # ---- the five key parameters -------------------------------------------
        CategoricalParameter(
            name="compaction_method",
            default=SIZE_TIERED,
            choices=(SIZE_TIERED, LEVELED),
            description=(
                "Table-level compaction strategy; Size-Tiered favors writes, "
                "Leveled favors reads (paper §2.2.2)."
            ),
        ),
        IntegerParameter(
            name="concurrent_writes",
            default=32,
            low=16,
            high=96,
            description=(
                "Independent write worker threads; vendor recommends "
                "8 x CPU cores."
            ),
        ),
        IntegerParameter(
            name="file_cache_size_in_mb",
            default=512,
            low=32,
            high=2048,
            description=(
                "Buffer holding SSTable blocks read from disk; default is "
                "min(heap/4, 512MB)."
            ),
        ),
        FloatParameter(
            name="memtable_cleanup_threshold",
            default=0.11,
            low=0.10,
            high=0.50,
            description=(
                "Fraction of memtable space that triggers a flush; controls "
                "flush frequency and hence SSTable creation rate."
            ),
        ),
        IntegerParameter(
            name="concurrent_compactors",
            default=2,
            low=1,
            high=8,
            description=(
                "Concurrent compaction processes per server; vendor suggests "
                "min(disks, cores), between 2 and 8."
            ),
        ),
        # ---- second tier: measurable, weaker effects --------------------------------
        IntegerParameter(
            name="memtable_flush_writers",
            default=2,
            low=1,
            high=8,
            description="Threads that write memtable flushes to disk.",
        ),
        IntegerParameter(
            name="memtable_heap_space_in_mb",
            default=2048,
            low=256,
            high=8192,
            description="On-heap space shared by all memtables.",
        ),
        IntegerParameter(
            name="memtable_offheap_space_in_mb",
            default=2048,
            low=256,
            high=8192,
            description="Off-heap space shared by all memtables.",
        ),
        IntegerParameter(
            name="concurrent_reads",
            default=32,
            low=16,
            high=96,
            description="Independent read worker threads; vendor: 16 x disks.",
        ),
        FloatParameter(
            name="bloom_filter_fp_chance",
            default=0.01,
            low=0.001,
            high=0.05,
            description=(
                "Bloom filter false-positive rate; higher saves memory but "
                "adds useless SSTable probes on reads."
            ),
        ),
        IntegerParameter(
            name="compaction_throughput_mb_per_sec",
            default=16,
            low=8,
            high=32,
            description=(
                "Per-compactor disk-bandwidth throttle; the vendor advises "
                "16-32 MB/s on magnetic disks (DBA-supplied range, paper 3.8)."
            ),
        ),
        IntegerParameter(
            name="key_cache_size_in_mb",
            default=100,
            low=0,
            high=1024,
            description="Cache of partition-key index positions.",
        ),
        IntegerParameter(
            name="row_cache_size_in_mb",
            default=0,
            low=0,
            high=2048,
            description=(
                "Whole-row cache; with MG-RAST's huge key-reuse distance it "
                "is nearly useless (paper §1)."
            ),
        ),
        IntegerParameter(
            name="commitlog_sync_period_in_ms",
            default=10000,
            low=100,
            high=60000,
            description="Period between commit-log fsyncs in periodic mode.",
        ),
        IntegerParameter(
            name="commitlog_segment_size_in_mb",
            default=32,
            low=8,
            high=128,
            description="Size of individual commit-log segments.",
        ),
        IntegerParameter(
            name="sstable_size_in_mb",
            default=160,
            low=32,
            high=512,
            description="Target SSTable size for Leveled compaction.",
        ),
        # ---- plumbing: no first-order performance effect -------------------------------
        CategoricalParameter(
            name="memtable_allocation_type",
            default="heap_buffers",
            choices=("heap_buffers", "offheap_buffers", "offheap_objects"),
            description="Memtable memory allocation policy.",
        ),
        CategoricalParameter(
            name="trickle_fsync",
            default="false",
            choices=("false", "true"),
            description="fsync in small increments during sequential writes.",
        ),
        IntegerParameter(
            name="native_transport_max_threads",
            default=128,
            low=16,
            high=1024,
            description="Max CQL transport threads.",
        ),
        IntegerParameter(
            name="column_index_size_in_kb",
            default=64,
            low=4,
            high=512,
            description="Granularity of the row column index.",
        ),
        IntegerParameter(
            name="index_summary_capacity_in_mb",
            default=128,
            low=16,
            high=512,
            description="Memory for SSTable index summaries.",
        ),
        IntegerParameter(
            name="batch_size_warn_threshold_in_kb",
            default=5,
            low=1,
            high=64,
            description="Warn threshold for batch sizes (logging only).",
        ),
        IntegerParameter(
            name="compaction_large_partition_warning_threshold_mb",
            default=100,
            low=10,
            high=1000,
            description="Warn threshold for large partitions (logging only).",
        ),
        IntegerParameter(
            name="dynamic_snitch_update_interval_in_ms",
            default=100,
            low=10,
            high=10000,
            description="Snitch score recalculation period.",
        ),
        IntegerParameter(
            name="range_request_timeout_in_ms",
            default=10000,
            low=1000,
            high=60000,
            description="Server-side range query timeout.",
        ),
    ]
    return ConfigurationSpace("cassandra-3.7", params)
