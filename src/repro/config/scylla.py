"""ScyllaDB configuration space.

ScyllaDB is API- and file-format-compatible with Cassandra but ships an
internal auto-tuner: "user settings for many configuration parameters are
ignored by ScyllaDB, giving preference to its internal auto-tuning"
(paper §4.10).  We expose the same parameter names as Cassandra and record
which ones the auto-tuner overrides; the simulated ScyllaDB engine
consults that set.

The paper's Scylla procedure (§4.10): take the Cassandra ANOVA ranking,
strip parameters ScyllaDB ignores, and add the next-ranked parameters
until five remain.
"""

from __future__ import annotations

from repro.config.cassandra import cassandra_space
from repro.config.space import ConfigurationSpace

#: Parameters whose user-supplied values ScyllaDB's internal tuner
#: overrides with its own runtime decisions.  Scylla sizes I/O and CPU
#: concurrency itself (its "IO scheduler"), and manages its own unified
#: cache rather than a user-sized file cache.
SCYLLA_AUTOTUNED_PARAMETERS = frozenset(
    {
        "concurrent_writes",
        "concurrent_reads",
        "file_cache_size_in_mb",
        "concurrent_compactors",
        "key_cache_size_in_mb",
        "row_cache_size_in_mb",
        "native_transport_max_threads",
    }
)

#: The five key parameters Rafiki ends up tuning for ScyllaDB after
#: stripping auto-tuned ones from the Cassandra ANOVA ranking, applying
#: the §4.5 memtable-family consolidation, and topping up by variance
#: (paper §4.10, Table 4).
SCYLLA_KEY_PARAMETERS = (
    "compaction_method",
    "memtable_cleanup_threshold",
    "compaction_throughput_mb_per_sec",
    "bloom_filter_fp_chance",
    "sstable_size_in_mb",
)


def scylla_space() -> ConfigurationSpace:
    """Build the ScyllaDB configuration space.

    Same parameters and defaults as Cassandra (Scylla reads a
    ``scylla.yaml`` with largely identical keys); the semantic difference
    — which values actually take effect — lives in the engine via
    :data:`SCYLLA_AUTOTUNED_PARAMETERS`.
    """
    base = cassandra_space()
    return ConfigurationSpace("scylladb-1.6", base.parameters)
