"""Typed parameter specifications.

Each parameter knows its domain, default, and how to validate / quantize /
sample values.  Three concrete kinds cover the datastore config files:
categorical (compaction strategy), integer (thread counts, sizes in MB),
and float (thresholds in [0, 1]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ParameterSpec:
    """Base class for one tunable parameter.

    Attributes
    ----------
    name:
        The configuration-file key (e.g. ``"concurrent_writes"``).
    default:
        The value shipped in the vendor's default config.
    description:
        Human-readable explanation, surfaced in reports.
    performance_related:
        Whether the parameter plausibly affects performance at all
        (security/networking params are excluded from tuning per §3.8).
    """

    name: str
    default: Any
    description: str = ""
    performance_related: bool = True

    # -- interface ---------------------------------------------------------

    def validate(self, value: Any) -> None:
        """Raise :class:`ConfigurationError` if ``value`` is out of domain."""
        raise NotImplementedError

    def is_valid(self, value: Any) -> bool:
        try:
            self.validate(value)
            return True
        except ConfigurationError:
            return False

    def sample(self, rng: np.random.Generator) -> Any:
        """Draw a uniform random in-domain value."""
        raise NotImplementedError

    def grid(self, resolution: int) -> Sequence[Any]:
        """Return up to ``resolution`` representative in-domain values."""
        raise NotImplementedError

    def sweep_values(self, count: int = 4) -> Sequence[Any]:
        """Values used by the one-factor-at-a-time ANOVA sweep (§3.4.1).

        Categorical parameters test all levels; numeric ones test
        ``count`` values spanning the domain (always including min, max,
        and the default).
        """
        raise NotImplementedError

    # -- encoding for the GA / surrogate ------------------------------------

    def to_unit(self, value: Any) -> float:
        """Map an in-domain value to [0, 1] for model features / GA genes."""
        raise NotImplementedError

    def from_unit(self, u: float) -> Any:
        """Inverse of :meth:`to_unit` (clipping into the domain)."""
        raise NotImplementedError

    @property
    def cardinality(self) -> float:
        """Number of distinct values n_i (may be inf for floats)."""
        raise NotImplementedError


@dataclass(frozen=True)
class CategoricalParameter(ParameterSpec):
    """A parameter taking one of a fixed set of labels."""

    choices: Tuple[Any, ...] = ()

    def __post_init__(self):
        if not self.choices:
            raise ConfigurationError(f"{self.name}: categorical needs choices")
        if self.default not in self.choices:
            raise ConfigurationError(
                f"{self.name}: default {self.default!r} not among choices"
            )

    def validate(self, value: Any) -> None:
        if value not in self.choices:
            raise ConfigurationError(
                f"{self.name}: {value!r} not in {list(self.choices)}"
            )

    def sample(self, rng: np.random.Generator) -> Any:
        return self.choices[int(rng.integers(len(self.choices)))]

    def grid(self, resolution: int) -> Sequence[Any]:
        return list(self.choices)

    def sweep_values(self, count: int = 4) -> Sequence[Any]:
        return list(self.choices)

    def to_unit(self, value: Any) -> float:
        self.validate(value)
        if len(self.choices) == 1:
            return 0.0
        return self.choices.index(value) / (len(self.choices) - 1)

    def from_unit(self, u: float) -> Any:
        u = min(max(float(u), 0.0), 1.0)
        idx = int(round(u * (len(self.choices) - 1)))
        return self.choices[idx]

    @property
    def cardinality(self) -> float:
        return float(len(self.choices))


@dataclass(frozen=True)
class IntegerParameter(ParameterSpec):
    """An integer parameter on a closed range [low, high]."""

    low: int = 0
    high: int = 0

    def __post_init__(self):
        if self.low > self.high:
            raise ConfigurationError(f"{self.name}: low > high")
        if not (self.low <= self.default <= self.high):
            raise ConfigurationError(
                f"{self.name}: default {self.default} outside [{self.low}, {self.high}]"
            )

    def validate(self, value: Any) -> None:
        if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
            raise ConfigurationError(f"{self.name}: {value!r} is not an integer")
        if not (self.low <= value <= self.high):
            raise ConfigurationError(
                f"{self.name}: {value} outside [{self.low}, {self.high}]"
            )

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def grid(self, resolution: int) -> Sequence[int]:
        span = self.high - self.low
        if span + 1 <= resolution:
            return list(range(self.low, self.high + 1))
        values = np.unique(
            np.round(np.linspace(self.low, self.high, resolution)).astype(int)
        )
        return [int(v) for v in values]

    def sweep_values(self, count: int = 4) -> Sequence[int]:
        values = set(self.grid(count))
        values.update((self.low, self.high, int(self.default)))
        return sorted(values)

    def to_unit(self, value: Any) -> float:
        self.validate(value)
        if self.high == self.low:
            return 0.0
        return (value - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> int:
        u = min(max(float(u), 0.0), 1.0)
        return int(round(self.low + u * (self.high - self.low)))

    @property
    def cardinality(self) -> float:
        return float(self.high - self.low + 1)


@dataclass(frozen=True)
class FloatParameter(ParameterSpec):
    """A continuous parameter on [low, high], quantized for grids."""

    low: float = 0.0
    high: float = 1.0

    def __post_init__(self):
        if self.low > self.high:
            raise ConfigurationError(f"{self.name}: low > high")
        if not (self.low <= self.default <= self.high):
            raise ConfigurationError(
                f"{self.name}: default {self.default} outside [{self.low}, {self.high}]"
            )

    def validate(self, value: Any) -> None:
        if not isinstance(value, (int, float, np.floating, np.integer)) or isinstance(
            value, bool
        ):
            raise ConfigurationError(f"{self.name}: {value!r} is not numeric")
        if not (self.low <= value <= self.high):
            raise ConfigurationError(
                f"{self.name}: {value} outside [{self.low}, {self.high}]"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def grid(self, resolution: int) -> Sequence[float]:
        return [float(v) for v in np.linspace(self.low, self.high, resolution)]

    def sweep_values(self, count: int = 4) -> Sequence[float]:
        values = list(np.linspace(self.low, self.high, count))
        values.append(float(self.default))
        return sorted(set(round(v, 10) for v in values))

    def to_unit(self, value: Any) -> float:
        self.validate(value)
        if self.high == self.low:
            return 0.0
        return (float(value) - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> float:
        u = min(max(float(u), 0.0), 1.0)
        return float(self.low + u * (self.high - self.low))

    @property
    def cardinality(self) -> float:
        return float("inf")
