"""Configuration spaces and configurations.

A :class:`ConfigurationSpace` is an ordered collection of
:class:`~repro.config.parameter.ParameterSpec`; a :class:`Configuration`
is an immutable assignment of values, defaulting unset parameters — the
paper's shorthand ``C = {v1=5, v3=9}`` (§3.2).
"""

from __future__ import annotations

import hashlib
import itertools
import math
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from repro.config.parameter import ParameterSpec
from repro.errors import ConfigurationError


class Configuration(Mapping[str, Any]):
    """Immutable parameter assignment within a space.

    Behaves as a mapping from parameter name to value; every parameter of
    the owning space has a value (explicit or default).
    """

    __slots__ = ("_space", "_values", "_hash")

    def __init__(self, space: "ConfigurationSpace", overrides: Optional[Mapping[str, Any]] = None):
        overrides = dict(overrides or {})
        values: Dict[str, Any] = {}
        for spec in space.parameters:
            value = overrides.pop(spec.name, spec.default)
            spec.validate(value)
            values[spec.name] = value
        if overrides:
            unknown = ", ".join(sorted(overrides))
            raise ConfigurationError(f"unknown parameters: {unknown}")
        self._space = space
        self._values = values
        self._hash: Optional[int] = None

    @property
    def space(self) -> "ConfigurationSpace":
        return self._space

    def __getitem__(self, name: str) -> Any:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(tuple(sorted(self._values.items())))
        return self._hash

    def with_updates(self, **updates: Any) -> "Configuration":
        """Return a copy with some values replaced."""
        merged = dict(self._values)
        merged.update(updates)
        return Configuration(self._space, merged)

    def non_default_items(self) -> Dict[str, Any]:
        """The paper's shorthand: only values differing from defaults."""
        return {
            name: value
            for name, value in self._values.items()
            if value != self._space[name].default
        }

    def to_vector(self, names: Optional[Sequence[str]] = None) -> np.ndarray:
        """Encode (a subset of) the configuration as unit-interval floats."""
        names = list(names) if names is not None else self._space.names
        return np.array(
            [self._space[n].to_unit(self._values[n]) for n in names], dtype=float
        )

    def fingerprint(self) -> str:
        """Stable 8-hex-digit digest of the full parameter assignment.

        Two configurations fingerprint equal iff they are ``==``; the
        digest is stable across processes and platforms (no ``hash()``
        randomization), which is what lets the actuation layer compare
        intended-vs-applied configs per node and report drift compactly.
        """
        digest = hashlib.sha1(
            repr(sorted(self._values.items())).encode("utf-8")
        ).hexdigest()
        return digest[:8]

    def __repr__(self) -> str:
        nd = self.non_default_items()
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(nd.items())) or "defaults"
        return f"Configuration({inner})"


class ConfigurationSpace:
    """Ordered, named collection of parameters with helpers for sampling.

    Provides the operations the Rafiki pipeline needs: default config,
    uniform random configs, grids over a subset of "key parameters",
    vector encoding/decoding for the surrogate and the GA, and the total
    cardinality from §3.2 (``prod n_i``).
    """

    def __init__(self, name: str, parameters: Iterable[ParameterSpec]):
        self.name = name
        self._params: List[ParameterSpec] = list(parameters)
        self._by_name: Dict[str, ParameterSpec] = {}
        for p in self._params:
            if p.name in self._by_name:
                raise ConfigurationError(f"duplicate parameter {p.name!r}")
            self._by_name[p.name] = p
        if not self._params:
            raise ConfigurationError("a configuration space needs parameters")

    # -- container protocol ---------------------------------------------------

    @property
    def parameters(self) -> Sequence[ParameterSpec]:
        return tuple(self._params)

    @property
    def names(self) -> List[str]:
        return [p.name for p in self._params]

    def __getitem__(self, name: str) -> ParameterSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown parameter {name!r} in space {self.name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._params)

    # -- subsetting ---------------------------------------------------------------

    def subspace(self, names: Sequence[str]) -> "ConfigurationSpace":
        """Restrict to the named parameters (the ANOVA 'key parameters')."""
        return ConfigurationSpace(
            f"{self.name}[{','.join(names)}]", [self[n] for n in names]
        )

    def performance_parameters(self) -> List[ParameterSpec]:
        """Parameters eligible for tuning (§3.8 excludes the rest)."""
        return [p for p in self._params if p.performance_related]

    # -- construction -----------------------------------------------------------

    def default_configuration(self) -> Configuration:
        return Configuration(self, {})

    def configuration(self, **overrides: Any) -> Configuration:
        return Configuration(self, overrides)

    def sample_configuration(
        self,
        rng: np.random.Generator,
        names: Optional[Sequence[str]] = None,
    ) -> Configuration:
        """Uniform random configuration; only ``names`` vary if given."""
        names = list(names) if names is not None else self.names
        overrides = {n: self[n].sample(rng) for n in names}
        return Configuration(self, overrides)

    def grid(
        self, names: Sequence[str], resolution: int = 4
    ) -> Iterator[Configuration]:
        """Cartesian grid over ``names`` (others at default)."""
        axes = [[(n, v) for v in self[n].grid(resolution)] for n in names]
        for combo in itertools.product(*axes):
            yield Configuration(self, dict(combo))

    def coverage_sample(
        self,
        rng: np.random.Generator,
        names: Sequence[str],
        count: int,
    ) -> List[Configuration]:
        """Sampling plan from §3.5: for each key parameter, its min, max,
        and default each occur at least once; remaining configs random.

        May return fewer than ``count`` configurations when the subspace
        is too small to hold that many distinct points.
        """
        configs: List[Configuration] = [self.default_configuration()]
        seen = set(configs)
        for n in names:
            spec = self[n]
            sweep = spec.sweep_values(4)
            for value in (sweep[0], sweep[-1]):
                cand = Configuration(self, {n: value})
                if cand not in seen:
                    seen.add(cand)
                    configs.append(cand)
        attempts_left = 1000 + 100 * count
        while len(configs) < count and attempts_left > 0:
            attempts_left -= 1
            cand = self.sample_configuration(rng, names)
            if cand not in seen:
                seen.add(cand)
                configs.append(cand)
        return configs[:count]

    # -- vector encoding -----------------------------------------------------------

    def vector_to_configuration(
        self, vector: Sequence[float], names: Optional[Sequence[str]] = None
    ) -> Configuration:
        names = list(names) if names is not None else self.names
        if len(vector) != len(names):
            raise ConfigurationError(
                f"vector length {len(vector)} != parameter count {len(names)}"
            )
        overrides = {n: self[n].from_unit(u) for n, u in zip(names, vector)}
        return Configuration(self, overrides)

    # -- size -------------------------------------------------------------------

    def cardinality(self, names: Optional[Sequence[str]] = None, float_resolution: int = 10) -> float:
        """Total configuration count ``prod n_i`` (§3.2).

        Continuous parameters are counted at ``float_resolution`` levels,
        matching the paper's quantization argument.
        """
        names = list(names) if names is not None else self.names
        total = 1.0
        for n in names:
            card = self[n].cardinality
            total *= float_resolution if math.isinf(card) else card
        return total

    def __repr__(self) -> str:
        return f"ConfigurationSpace({self.name!r}, {len(self)} params)"
