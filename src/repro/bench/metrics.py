"""Benchmark metrics.

The paper's metric of interest is mean throughput — "the average number
of operations the system can perform per second" (§2.3); MG-RAST is
throughput- rather than latency-sensitive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.config.space import Configuration
from repro.workload.spec import WorkloadSpec


@dataclass(frozen=True)
class ThroughputSample:
    """One throughput observation (ops/s at simulated time ``t``)."""

    t: float
    ops_per_second: float


@dataclass
class BenchmarkResult:
    """Outcome of one benchmark run: a (workload, config) -> AOPS sample."""

    workload: WorkloadSpec
    configuration: Configuration
    mean_throughput: float
    duration_seconds: float
    series: List[ThroughputSample] = field(default_factory=list)
    faulty: bool = False           # client fault injected (dropped in §4.2)
    metadata: Dict[str, float] = field(default_factory=dict)

    @property
    def aops(self) -> float:
        """The paper's AOPS: average operations per second."""
        return self.mean_throughput

    def __repr__(self) -> str:
        flag = " FAULTY" if self.faulty else ""
        return (
            f"BenchmarkResult({self.workload.label}, "
            f"aops={self.mean_throughput:,.0f}{flag})"
        )


def summarize_throughput(series: Sequence[ThroughputSample]) -> Dict[str, float]:
    """Summary statistics over a throughput time series."""
    if not series:
        raise ValueError("empty throughput series")
    values = np.array([s.ops_per_second for s in series])
    return {
        "mean": float(values.mean()),
        "std": float(values.std()),
        "min": float(values.min()),
        "max": float(values.max()),
        "p50": float(np.percentile(values, 50)),
        "p95": float(np.percentile(values, 95)),
        "cov": float(values.std() / values.mean()) if values.mean() else 0.0,
    }
