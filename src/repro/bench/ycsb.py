"""YCSB-style benchmark runner.

The paper uses a modified Yahoo Cloud Serving Benchmark "only as a
harness to drive the experiments and collect metrics, while all the
workload-specific details ... are derived from actual MG-RAST queries"
(§4.1).  This module plays that role for the simulated servers:

* :meth:`YCSBBenchmark.run` — the fast path: fresh analytic instance,
  load phase (~2 simulated minutes in the paper), settle, then a
  5-simulated-minute run phase measured in 10-second intervals.
* :meth:`YCSBBenchmark.run_engine` — the per-operation path against the
  materialized LSM engine at reduced scale, for validation.
"""

from __future__ import annotations


import numpy as np

from repro.bench.metrics import BenchmarkResult, ThroughputSample
from repro.config.space import Configuration
from repro.datastore.adapter import SimulatedDatastoreAdapter
from repro.datastore.base import Datastore
from repro.sim.rng import SeedLike, derive_rng
from repro.workload.generator import OperationGenerator
from repro.workload.spec import DELETE, READ, WorkloadSpec

#: The paper's benchmark window: 5 minutes of stable metrics (§3.5).
DEFAULT_RUN_SECONDS = 300.0
#: Figure 10 samples throughput every 10 seconds.
REPORT_INTERVAL_SECONDS = 10.0
#: Settling time after the load phase before measurements start.  Short
#: on purpose: the paper loads for ~2 minutes and then measures, so the
#: run phase inherits whatever compaction backlog the load left — which
#: is precisely what makes the compaction strategy matter for reads.
SETTLE_SECONDS = 60.0


class YCSBBenchmark:
    """Drives one simulated server with one workload and measures AOPS."""

    def __init__(
        self,
        datastore: Datastore,
        run_seconds: float = DEFAULT_RUN_SECONDS,
        step_seconds: float = 1.0,
        settle_seconds: float = SETTLE_SECONDS,
        report_interval: float = REPORT_INTERVAL_SECONDS,
    ):
        if run_seconds <= 0 or step_seconds <= 0:
            raise ValueError("durations must be positive")
        self.datastore = datastore
        self.run_seconds = run_seconds
        self.step_seconds = step_seconds
        self.settle_seconds = settle_seconds
        self.report_interval = report_interval

    # ------------------------------------------------------------------ fast path

    def run(
        self,
        config: Configuration,
        workload: WorkloadSpec,
        seed: SeedLike = 0,
        load: bool = True,
    ) -> BenchmarkResult:
        """Benchmark (config, workload) on a fresh analytic instance.

        Mirrors §4.2: a fresh server per data point (the Docker reset —
        here an adapter provision/teardown cycle), a load phase, then the
        measured run.  Throughput is reported as the mean over the run,
        with a 10-second-interval series attached.
        """
        adapter = SimulatedDatastoreAdapter(
            self.datastore, config, profile=workload.to_profile(), seed=seed
        )
        adapter.provision(
            load_keys=workload.n_keys if load else None,
            settle_seconds=self.settle_seconds,
        )
        steps = adapter.run(workload.read_ratio, self.run_seconds, self.step_seconds)
        series = self._bucket_series(steps)
        mean_tp = float(np.mean([s.throughput for s in steps]))
        adapter.teardown()
        return BenchmarkResult(
            workload=workload,
            configuration=config,
            mean_throughput=mean_tp,
            duration_seconds=self.run_seconds,
            series=series,
            metadata={
                "sstable_count": float(steps[-1].sstable_count),
                "cache_hit_ratio": float(steps[-1].cache_hit_ratio),
                "compaction_backlog_bytes": float(steps[-1].compaction_backlog_bytes),
            },
        )

    def _bucket_series(self, steps) -> list:
        """Aggregate per-step throughput into report-interval buckets."""
        series = []
        bucket: list = []
        bucket_start = steps[0].t - steps[0].dt
        for s in steps:
            bucket.append(s.throughput)
            if s.t - bucket_start >= self.report_interval:
                series.append(
                    ThroughputSample(t=s.t, ops_per_second=float(np.mean(bucket)))
                )
                bucket = []
                bucket_start = s.t
        if bucket:
            series.append(
                ThroughputSample(t=steps[-1].t, ops_per_second=float(np.mean(bucket)))
            )
        return series

    # ------------------------------------------------------------------ engine path

    def run_engine(
        self,
        config: Configuration,
        workload: WorkloadSpec,
        n_ops: int = 20_000,
        load_keys: int = 5_000,
        seed: SeedLike = 0,
        batched: bool = False,
        batch_ops: int = 4096,
    ) -> BenchmarkResult:
        """Benchmark against the materialized engine, per operation.

        Runs at reduced scale (tens of thousands of real operations) and
        measures ops / elapsed simulated seconds.  Used to validate that
        the analytic path preserves ordering and trends.

        With ``batched=True`` the op stream is generated and executed in
        vectorized blocks of ``batch_ops`` through
        :meth:`~repro.lsm.engine.LSMEngine.execute_batch` — same
        engine-side accounting, far less per-op Python overhead.  The
        report series is reconstructed from the block's per-op end times
        with the same crossing rule as the scalar loop.
        """
        rng = derive_rng(seed)
        engine = self.datastore.new_engine_instance(config)
        gen = OperationGenerator(workload, rng)

        if batched:
            load = gen.load_batch(load_keys)
            engine.execute_batch(load.kinds, load.key_names(), load.value_sizes)
        else:
            for op in gen.load_operations(load_keys):
                engine.put(op.key, op.payload(rng))
        engine.idle_until_compact(max_seconds=600.0)

        t0 = engine.clock.now
        series = []
        last_report_t, last_report_ops = t0, 0
        if batched:
            done = 0
            while done < n_ops:
                block = gen.operation_batch(min(batch_ops, n_ops - done))
                result = engine.execute_batch(
                    block.kinds, block.key_names(), block.value_sizes
                )
                # Same crossing rule as the scalar loop, applied to the
                # recorded per-op end times.
                for j in range(result.n_ops):
                    t = float(result.end_times[j])
                    if t - last_report_t >= self.report_interval:
                        series.append(
                            ThroughputSample(
                                t=t,
                                ops_per_second=(done + j + 1 - last_report_ops)
                                / (t - last_report_t),
                            )
                        )
                        last_report_t, last_report_ops = t, done + j + 1
                done += result.n_ops
        else:
            for i, op in enumerate(gen.operations(n_ops)):
                if op.kind == READ:
                    engine.get(op.key)
                elif op.kind == DELETE:
                    engine.delete(op.key)
                else:
                    engine.put(op.key, op.payload(rng))
                if engine.clock.now - last_report_t >= self.report_interval:
                    done = i + 1
                    series.append(
                        ThroughputSample(
                            t=engine.clock.now,
                            ops_per_second=(done - last_report_ops)
                            / (engine.clock.now - last_report_t),
                        )
                    )
                    last_report_t, last_report_ops = engine.clock.now, done
        # Flush the final partial interval: without this the tail of the
        # run (everything after the last full report interval) silently
        # vanishes from the series, unlike the analytic path's
        # _bucket_series which always emits its last partial bucket.
        if n_ops > last_report_ops and engine.clock.now > last_report_t:
            series.append(
                ThroughputSample(
                    t=engine.clock.now,
                    ops_per_second=(n_ops - last_report_ops)
                    / (engine.clock.now - last_report_t),
                )
            )
        elapsed = engine.clock.now - t0
        if elapsed <= 0:
            raise RuntimeError("benchmark did not advance simulated time")
        return BenchmarkResult(
            workload=workload,
            configuration=config,
            mean_throughput=n_ops / elapsed,
            duration_seconds=elapsed,
            series=series,
            metadata={
                "sstable_count": float(engine.sstable_count),
                "cache_hit_ratio": float(engine.cache.hit_ratio),
            },
        )
