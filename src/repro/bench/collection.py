"""The §4.2 data-collection campaign.

"We use 11 different workloads spanning 10% increments between 0% and
100% reads.  The number of configurations |C| = 20, resulting in 220
total data points. ... 20 noisy/faulted samples were removed in our
dataset, due to faults in the load-generating clients, thus leaving 200
total samples."

The campaign samples configurations with the §3.5 coverage rule (every
key parameter's min, max, and default occur at least once), benchmarks
every (workload, configuration) pair on a fresh server, optionally
injects client faults into a deterministic subset of samples, and drops
the faulted points — reproducing the 220 -> 200 pipeline.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.bench.dataset import PerformanceDataset, PerformanceSample
from repro.bench.metrics import BenchmarkResult
from repro.bench.ycsb import YCSBBenchmark
from repro.config.space import Configuration
from repro.datastore.base import Datastore
from repro.sim.rng import SeedSequence
from repro.workload.spec import WorkloadSpec

#: §4.2 defaults.
DEFAULT_WORKLOAD_COUNT = 11
DEFAULT_CONFIG_COUNT = 20
DEFAULT_FAULT_COUNT = 20


class DataCollectionCampaign:
    """Orchestrates the paper's offline benchmarking campaign."""

    def __init__(
        self,
        datastore: Datastore,
        base_workload: WorkloadSpec,
        key_parameters: Optional[Sequence[str]] = None,
        n_workloads: int = DEFAULT_WORKLOAD_COUNT,
        n_configurations: int = DEFAULT_CONFIG_COUNT,
        n_faulty: int = DEFAULT_FAULT_COUNT,
        benchmark: Optional[YCSBBenchmark] = None,
        seed: int = 0,
        progress: Optional[Callable[[int, int], None]] = None,
    ):
        if n_workloads < 2:
            raise ValueError("need at least two workloads")
        if n_configurations < 1:
            raise ValueError("need at least one configuration")
        self.datastore = datastore
        self.base_workload = base_workload
        self.key_parameters = tuple(key_parameters or datastore.key_parameters)
        self.n_workloads = n_workloads
        self.n_configurations = n_configurations
        self.n_faulty = n_faulty
        self.benchmark = benchmark or YCSBBenchmark(datastore)
        self.seeds = SeedSequence(seed)
        self.progress = progress

    # -- plan ------------------------------------------------------------------

    def workloads(self) -> List[WorkloadSpec]:
        """Evenly spaced read ratios: 0%, 10%, ..., 100% for the default
        11 (§4.2)."""
        ratios = np.linspace(0.0, 1.0, self.n_workloads)
        return [self.base_workload.with_read_ratio(float(r)) for r in ratios]

    def configurations(self) -> List[Configuration]:
        """Coverage-sampled configurations over the key parameters."""
        rng = self.seeds.stream("config-sampling")
        return self.datastore.space.coverage_sample(
            rng, self.key_parameters, self.n_configurations
        )

    # -- execution ----------------------------------------------------------------

    def run(self) -> PerformanceDataset:
        """Benchmark the full grid, drop faulted samples, return the rest."""
        results = self.run_raw()
        kept = [PerformanceSample.from_result(r) for r in results if not r.faulty]
        return PerformanceDataset(kept, self.key_parameters)

    def run_raw(self) -> List[BenchmarkResult]:
        """All 220 results, with ``faulty`` marking injected client faults."""
        workloads = self.workloads()
        configs = self.configurations()
        total = len(workloads) * len(configs)
        fault_rng = self.seeds.stream("fault-injection")
        faulty_indices = (
            set(
                fault_rng.choice(total, size=min(self.n_faulty, total), replace=False).tolist()
            )
            if self.n_faulty
            else set()
        )

        results: List[BenchmarkResult] = []
        index = 0
        for config in configs:
            for workload in workloads:
                seed = self.seeds.stream(f"bench-{index}")
                result = self.benchmark.run(config, workload, seed=seed)
                if index in faulty_indices:
                    # A fault in the load-generating client: the recorded
                    # throughput is garbage (partially idle shooter).
                    degradation = 0.2 + 0.5 * fault_rng.random()
                    result.mean_throughput *= degradation
                    result.faulty = True
                results.append(result)
                index += 1
                if self.progress is not None:
                    self.progress(index, total)
        return results
