"""The §4.2 data-collection campaign.

"We use 11 different workloads spanning 10% increments between 0% and
100% reads.  The number of configurations |C| = 20, resulting in 220
total data points. ... 20 noisy/faulted samples were removed in our
dataset, due to faults in the load-generating clients, thus leaving 200
total samples."

The campaign samples configurations with the §3.5 coverage rule (every
key parameter's min, max, and default occur at least once), benchmarks
every (workload, configuration) pair on a fresh server, optionally
injects client faults into a deterministic subset of samples, and drops
the faulted points — reproducing the 220 -> 200 pipeline.

Faulted samples can also be *retried* instead of dropped
(``retry_faulty > 0``): a transient client fault re-runs clean on a
fresh derived stream, while persistent faults (scheduled through a
:class:`~repro.faults.plan.FaultPlan`'s ``bench_faults``) re-fault on
every retry and are dropped once the budget is spent.  With the default
``retry_faulty=0`` the campaign is bit-identical to the historical
drop-only behaviour.

Every (workload, configuration) pair is an independent work unit with a
pre-derived random stream, so the grid is submitted through an
:class:`~repro.runtime.backend.ExecutionBackend` and parallelizes across
cores with bitwise-identical results to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.bench.dataset import PerformanceDataset, PerformanceSample
from repro.bench.metrics import BenchmarkResult
from repro.bench.ycsb import YCSBBenchmark
from repro.config.space import Configuration
from repro.datastore.base import Datastore
from repro.faults.plan import FaultPlan
from repro.runtime.backend import ExecutionBackend, resolve_backend
from repro.runtime.deprecation import warn_deprecated
from repro.runtime.events import EventBus
from repro.sim.rng import SeedSequence
from repro.workload.spec import WorkloadSpec

#: §4.2 defaults.
DEFAULT_WORKLOAD_COUNT = 11
DEFAULT_CONFIG_COUNT = 20
DEFAULT_FAULT_COUNT = 20


@dataclass(frozen=True)
class BenchmarkTask:
    """One independent grid point: everything a worker needs, including
    its own random stream and (for faulted points) the pre-drawn client
    degradation factor."""

    index: int
    configuration: Configuration
    workload: WorkloadSpec
    rng: np.random.Generator
    benchmark: YCSBBenchmark
    degradation: Optional[float] = None


def execute_benchmark_task(task: BenchmarkTask) -> BenchmarkResult:
    """Run one grid point (module-level so process pools can pickle it)."""
    result = task.benchmark.run(task.configuration, task.workload, seed=task.rng)
    if task.degradation is not None:
        # A fault in the load-generating client: the recorded
        # throughput is garbage (partially idle shooter).
        result.mean_throughput *= task.degradation
        result.faulty = True
    return result


class DataCollectionCampaign:
    """Orchestrates the paper's offline benchmarking campaign."""

    def __init__(
        self,
        datastore: Datastore,
        base_workload: WorkloadSpec,
        key_parameters: Optional[Sequence[str]] = None,
        n_workloads: int = DEFAULT_WORKLOAD_COUNT,
        n_configurations: int = DEFAULT_CONFIG_COUNT,
        n_faulty: int = DEFAULT_FAULT_COUNT,
        benchmark: Optional[YCSBBenchmark] = None,
        seed: int = 0,
        progress: Optional[Callable[[int, int], None]] = None,
        backend: Optional[ExecutionBackend] = None,
        events: Optional[EventBus] = None,
        retry_faulty: int = 0,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if n_workloads < 2:
            raise ValueError("need at least two workloads")
        if n_configurations < 1:
            raise ValueError("need at least one configuration")
        if retry_faulty < 0:
            raise ValueError("retry_faulty must be >= 0")
        if progress is not None:
            warn_deprecated(
                "collection.progress",
                "DataCollectionCampaign(progress=...) is deprecated; subscribe "
                "to 'collect.sample' events on the EventBus instead",
            )
        self.datastore = datastore
        self.base_workload = base_workload
        self.key_parameters = tuple(key_parameters or datastore.key_parameters)
        self.n_workloads = n_workloads
        self.n_configurations = n_configurations
        self.n_faulty = n_faulty
        self.benchmark = benchmark or YCSBBenchmark(datastore)
        self.seeds = SeedSequence(seed)
        self.progress = progress
        self.backend = backend
        self.events = events or EventBus()
        self.retry_faulty = retry_faulty
        self.fault_plan = fault_plan
        if fault_plan is not None:
            fault_plan.validate()

    # -- plan ------------------------------------------------------------------

    def workloads(self) -> List[WorkloadSpec]:
        """Evenly spaced read ratios: 0%, 10%, ..., 100% for the default
        11 (§4.2)."""
        ratios = np.linspace(0.0, 1.0, self.n_workloads)
        return [self.base_workload.with_read_ratio(float(r)) for r in ratios]

    def configurations(self) -> List[Configuration]:
        """Coverage-sampled configurations over the key parameters."""
        rng = self.seeds.stream("config-sampling")
        return self.datastore.space.coverage_sample(
            rng, self.key_parameters, self.n_configurations
        )

    def plan_tasks(self) -> List[BenchmarkTask]:
        """The full grid as independent, seeded work units.

        Stream names and fault-RNG draw order match the historical
        serial loop, so campaigns reproduce bit-for-bit across backends
        and versions.
        """
        workloads = self.workloads()
        configs = self.configurations()
        total = len(workloads) * len(configs)
        fault_rng = self.seeds.stream("fault-injection")
        faulty_indices = (
            set(
                fault_rng.choice(total, size=min(self.n_faulty, total), replace=False).tolist()
            )
            if self.n_faulty
            else set()
        )
        # Degradations are drawn up front, in index order — the same
        # sequence the old inline loop consumed lazily.
        degradations: Dict[int, float] = {
            index: 0.2 + 0.5 * fault_rng.random()
            for index in range(total)
            if index in faulty_indices
        }
        # Externally scheduled client faults ride on top of the campaign's
        # own §4.2 noise model (out-of-grid indices are ignored).
        if self.fault_plan is not None:
            for bf in self.fault_plan.bench_faults:
                if bf.index < total:
                    degradations[bf.index] = bf.degradation

        tasks: List[BenchmarkTask] = []
        index = 0
        for config in configs:
            for workload in workloads:
                tasks.append(
                    BenchmarkTask(
                        index=index,
                        configuration=config,
                        workload=workload,
                        rng=self.seeds.stream(f"bench-{index}"),
                        benchmark=self.benchmark,
                        degradation=degradations.get(index),
                    )
                )
                index += 1
        return tasks

    # -- execution ----------------------------------------------------------------

    def run(self) -> PerformanceDataset:
        """Benchmark the full grid, drop faulted samples, return the rest."""
        results = self.run_raw()
        kept = [PerformanceSample.from_result(r) for r in results if not r.faulty]
        return PerformanceDataset(kept, self.key_parameters)

    def run_raw(self) -> List[BenchmarkResult]:
        """All 220 results, with ``faulty`` marking injected client faults.

        With ``retry_faulty > 0`` each faulted sample is re-run (fresh
        derived stream per attempt) up to that many times; transient
        client faults come back clean, persistent ones re-fault and stay
        marked for the drop in :meth:`run`.
        """
        tasks = self.plan_tasks()
        total = len(tasks)
        backend = resolve_backend(self.backend)
        done = 0

        def on_result(index: int, result: BenchmarkResult) -> None:
            nonlocal done
            done += 1
            if self.progress is not None:
                self.progress(done, total)
            if result.faulty:
                self.events.publish(
                    "fault.injected",
                    f"client fault on sample {index}",
                    kind="bench-client",
                    index=index,
                )
            self.events.publish(
                "collect.sample",
                f"sample {done}/{total}",
                index=index,
                done=done,
                total=total,
                faulty=result.faulty,
            )

        results = backend.map_tasks(
            execute_benchmark_task, tasks, on_result=on_result
        )
        if self.retry_faulty > 0:
            self._retry_faulted(tasks, results, backend)
        return results

    def _retry_faulted(
        self,
        tasks: List[BenchmarkTask],
        results: List[BenchmarkResult],
        backend: ExecutionBackend,
    ) -> None:
        """Re-run faulted grid points in place, bounded by the budget."""
        persistent = (
            {bf.index for bf in self.fault_plan.bench_faults if not bf.transient}
            if self.fault_plan is not None
            else set()
        )
        for attempt in range(1, self.retry_faulty + 1):
            faulted = [t for t in tasks if results[t.index].faulty]
            if not faulted:
                return
            retry_tasks = []
            for task in faulted:
                self.events.publish(
                    "collect.retry",
                    f"retrying faulted sample {task.index} (attempt {attempt})",
                    index=task.index,
                    attempt=attempt,
                )
                retry_tasks.append(
                    replace(
                        task,
                        rng=self.seeds.stream(f"bench-{task.index}-retry{attempt}"),
                        degradation=(
                            task.degradation if task.index in persistent else None
                        ),
                    )
                )
            retried = backend.map_tasks(execute_benchmark_task, retry_tasks)
            for task, result in zip(retry_tasks, retried):
                results[task.index] = result
