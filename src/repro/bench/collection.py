"""The §4.2 data-collection campaign.

"We use 11 different workloads spanning 10% increments between 0% and
100% reads.  The number of configurations |C| = 20, resulting in 220
total data points. ... 20 noisy/faulted samples were removed in our
dataset, due to faults in the load-generating clients, thus leaving 200
total samples."

The campaign samples configurations with the §3.5 coverage rule (every
key parameter's min, max, and default occur at least once), benchmarks
every (workload, configuration) pair on a fresh server, optionally
injects client faults into a deterministic subset of samples, and drops
the faulted points — reproducing the 220 -> 200 pipeline.

Faulted samples can also be *retried* instead of dropped
(``retry_faulty > 0``): a transient client fault re-runs clean on a
fresh derived stream, while persistent faults (scheduled through a
:class:`~repro.faults.plan.FaultPlan`'s ``bench_faults``) re-fault on
every retry and are dropped once the budget is spent.  With the default
``retry_faulty=0`` the campaign is bit-identical to the historical
drop-only behaviour.

Every (workload, configuration) pair is an independent work unit with a
pre-derived random stream, so the grid is submitted through an
:class:`~repro.runtime.backend.ExecutionBackend` and parallelizes across
cores with bitwise-identical results to a serial run.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.bench.dataset import PerformanceDataset, PerformanceSample
from repro.bench.metrics import BenchmarkResult
from repro.bench.ycsb import YCSBBenchmark
from repro.config.space import Configuration
from repro.datastore.base import Datastore
from repro.faults.plan import FaultPlan
from repro.recovery.journal import Journal
from repro.runtime.backend import ExecutionBackend, resolve_backend
from repro.runtime.deprecation import warn_deprecated
from repro.runtime.events import EventBus
from repro.sim.rng import SeedSequence
from repro.workload.spec import WorkloadSpec

#: §4.2 defaults.
DEFAULT_WORKLOAD_COUNT = 11
DEFAULT_CONFIG_COUNT = 20
DEFAULT_FAULT_COUNT = 20

#: Journal kind tag for campaign WALs (see :mod:`repro.recovery.journal`).
CAMPAIGN_JOURNAL_KIND = "collection-campaign"


@dataclass(frozen=True)
class BenchmarkTask:
    """One independent grid point: everything a worker needs, including
    its own random stream and (for faulted points) the pre-drawn client
    degradation factor."""

    index: int
    configuration: Configuration
    workload: WorkloadSpec
    rng: np.random.Generator
    benchmark: YCSBBenchmark
    degradation: Optional[float] = None


def execute_benchmark_task(task: BenchmarkTask) -> BenchmarkResult:
    """Run one grid point (module-level so process pools can pickle it)."""
    result = task.benchmark.run(task.configuration, task.workload, seed=task.rng)
    if task.degradation is not None:
        # A fault in the load-generating client: the recorded
        # throughput is garbage (partially idle shooter).
        result.mean_throughput *= task.degradation
        result.faulty = True
    return result


class DataCollectionCampaign:
    """Orchestrates the paper's offline benchmarking campaign."""

    def __init__(
        self,
        datastore: Datastore,
        base_workload: WorkloadSpec,
        key_parameters: Optional[Sequence[str]] = None,
        n_workloads: int = DEFAULT_WORKLOAD_COUNT,
        n_configurations: int = DEFAULT_CONFIG_COUNT,
        n_faulty: int = DEFAULT_FAULT_COUNT,
        benchmark: Optional[YCSBBenchmark] = None,
        seed: int = 0,
        progress: Optional[Callable[[int, int], None]] = None,
        backend: Optional[ExecutionBackend] = None,
        events: Optional[EventBus] = None,
        retry_faulty: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        journal: Optional[Union[str, pathlib.Path]] = None,
    ):
        if n_workloads < 2:
            raise ValueError("need at least two workloads")
        if n_configurations < 1:
            raise ValueError("need at least one configuration")
        if retry_faulty < 0:
            raise ValueError("retry_faulty must be >= 0")
        if progress is not None:
            warn_deprecated(
                "collection.progress",
                "DataCollectionCampaign(progress=...) is deprecated; subscribe "
                "to 'collect.sample' events on the EventBus instead",
            )
        self.datastore = datastore
        self.base_workload = base_workload
        self.key_parameters = tuple(key_parameters or datastore.key_parameters)
        self.n_workloads = n_workloads
        self.n_configurations = n_configurations
        self.n_faulty = n_faulty
        self.benchmark = benchmark or YCSBBenchmark(datastore)
        self.seeds = SeedSequence(seed)
        self.progress = progress
        self.backend = backend
        self.events = events or EventBus()
        self.retry_faulty = retry_faulty
        self.fault_plan = fault_plan
        self.journal_path = pathlib.Path(journal) if journal is not None else None
        if fault_plan is not None:
            fault_plan.validate()

    # -- plan ------------------------------------------------------------------

    def workloads(self) -> List[WorkloadSpec]:
        """Evenly spaced read ratios: 0%, 10%, ..., 100% for the default
        11 (§4.2)."""
        ratios = np.linspace(0.0, 1.0, self.n_workloads)
        return [self.base_workload.with_read_ratio(float(r)) for r in ratios]

    def configurations(self) -> List[Configuration]:
        """Coverage-sampled configurations over the key parameters."""
        rng = self.seeds.stream("config-sampling")
        return self.datastore.space.coverage_sample(
            rng, self.key_parameters, self.n_configurations
        )

    def plan_tasks(self) -> List[BenchmarkTask]:
        """The full grid as independent, seeded work units.

        Stream names and fault-RNG draw order match the historical
        serial loop, so campaigns reproduce bit-for-bit across backends
        and versions.
        """
        workloads = self.workloads()
        configs = self.configurations()
        total = len(workloads) * len(configs)
        fault_rng = self.seeds.stream("fault-injection")
        faulty_indices = (
            set(
                fault_rng.choice(total, size=min(self.n_faulty, total), replace=False).tolist()
            )
            if self.n_faulty
            else set()
        )
        # Degradations are drawn up front, in index order — the same
        # sequence the old inline loop consumed lazily.
        degradations: Dict[int, float] = {
            index: 0.2 + 0.5 * fault_rng.random()
            for index in range(total)
            if index in faulty_indices
        }
        # Externally scheduled client faults ride on top of the campaign's
        # own §4.2 noise model (out-of-grid indices are ignored).
        if self.fault_plan is not None:
            for bf in self.fault_plan.bench_faults:
                if bf.index < total:
                    degradations[bf.index] = bf.degradation

        tasks: List[BenchmarkTask] = []
        index = 0
        for config in configs:
            for workload in workloads:
                tasks.append(
                    BenchmarkTask(
                        index=index,
                        configuration=config,
                        workload=workload,
                        rng=self.seeds.stream(f"bench-{index}"),
                        benchmark=self.benchmark,
                        degradation=degradations.get(index),
                    )
                )
                index += 1
        return tasks

    # -- journal --------------------------------------------------------------

    def _journal_header(self) -> Dict:
        """The campaign fingerprint stored in the journal header.

        Everything that shapes the deterministic grid is captured, so a
        resume with different settings is refused rather than producing
        a silently mixed dataset — and ``repro resume`` can rebuild the
        campaign from the header alone.
        """
        return {
            "space": self.datastore.space.name,
            "key_parameters": list(self.key_parameters),
            "n_workloads": self.n_workloads,
            "n_configurations": self.n_configurations,
            "n_faulty": self.n_faulty,
            "seed": self.seeds.root_seed,
            "retry_faulty": self.retry_faulty,
            "base_read_ratio": self.base_workload.read_ratio,
            "base_n_keys": self.base_workload.n_keys,
            "run_seconds": self.benchmark.run_seconds,
            "fault_plan": (
                self.fault_plan.to_dict() if self.fault_plan is not None else None
            ),
        }

    @staticmethod
    def _record_from_result(
        index: int, attempt: int, result: BenchmarkResult
    ) -> Dict:
        """The journaled scalars for one sample.

        Only what :meth:`run`'s dataset needs plus the fault/metadata
        flags; workload and configuration are *not* stored — they are
        regenerated bit-identically by :meth:`plan_tasks` on resume.
        """
        return {
            "index": index,
            "attempt": attempt,
            "throughput": result.mean_throughput,
            "duration": result.duration_seconds,
            "faulty": result.faulty,
            "metadata": dict(result.metadata),
        }

    @staticmethod
    def _result_from_record(task: BenchmarkTask, record: Dict) -> BenchmarkResult:
        """Rebuild a result from its journaled scalars + regenerated task.

        The throughput series is not journaled (the dataset never reads
        it), so resumed results carry an empty ``series``.
        """
        return BenchmarkResult(
            workload=task.workload,
            configuration=task.configuration,
            mean_throughput=float(record["throughput"]),
            duration_seconds=float(record["duration"]),
            series=[],
            faulty=bool(record["faulty"]),
            metadata=dict(record["metadata"]),
        )

    # -- execution ----------------------------------------------------------------

    def run(self) -> PerformanceDataset:
        """Benchmark the full grid, drop faulted samples, return the rest."""
        results = self.run_raw()
        kept = [PerformanceSample.from_result(r) for r in results if not r.faulty]
        return PerformanceDataset(kept, self.key_parameters)

    def run_raw(self) -> List[BenchmarkResult]:
        """All 220 results, with ``faulty`` marking injected client faults.

        With ``retry_faulty > 0`` each faulted sample is re-run (fresh
        derived stream per attempt) up to that many times; transient
        client faults come back clean, persistent ones re-fault and stay
        marked for the drop in :meth:`run`.

        With a ``journal`` path the campaign is crash-safe: every result
        is appended (fsynced) to an append-only WAL keyed by
        ``(index, attempt)``, and a re-run against the same journal
        skips the journaled work — per-task random streams are derived
        by name, so the partial re-run is bit-identical to an
        uninterrupted campaign.
        """
        tasks = self.plan_tasks()
        total = len(tasks)
        backend = resolve_backend(self.backend)

        journal: Optional[Journal] = None
        journaled: Dict[Tuple[int, int], Dict] = {}
        if self.journal_path is not None:
            journal, records = Journal.open(
                self.journal_path,
                CAMPAIGN_JOURNAL_KIND,
                self._journal_header(),
                events=self.events,
            )
            for rec in records:
                journaled[(int(rec["index"]), int(rec["attempt"]))] = rec

        try:
            results: List[Optional[BenchmarkResult]] = [None] * total
            resumed = 0
            for task in tasks:
                rec = journaled.get((task.index, 0))
                if rec is not None:
                    results[task.index] = self._result_from_record(task, rec)
                    resumed += 1
            pending = [t for t in tasks if results[t.index] is None]
            if resumed:
                self.events.publish(
                    "recovery.resumed",
                    f"resumed {resumed}/{total} samples from journal",
                    resumed=resumed,
                    total=total,
                    path=str(self.journal_path),
                )
            done = resumed

            def on_result(position: int, result: BenchmarkResult) -> None:
                nonlocal done
                index = pending[position].index
                done += 1
                if journal is not None:
                    journal.append(self._record_from_result(index, 0, result))
                if self.progress is not None:
                    self.progress(done, total)
                if result.faulty:
                    self.events.publish(
                        "fault.injected",
                        f"client fault on sample {index}",
                        kind="bench-client",
                        index=index,
                    )
                self.events.publish(
                    "collect.sample",
                    f"sample {done}/{total}",
                    index=index,
                    done=done,
                    total=total,
                    faulty=result.faulty,
                )

            fresh = backend.map_tasks(
                execute_benchmark_task, pending, on_result=on_result
            )
            for task, result in zip(pending, fresh):
                results[task.index] = result
            if self.retry_faulty > 0:
                self._retry_faulted(tasks, results, backend, journal, journaled)
            return results
        finally:
            if journal is not None:
                journal.close()

    def _retry_faulted(
        self,
        tasks: List[BenchmarkTask],
        results: List[BenchmarkResult],
        backend: ExecutionBackend,
        journal: Optional[Journal] = None,
        journaled: Optional[Dict[Tuple[int, int], Dict]] = None,
    ) -> None:
        """Re-run faulted grid points in place, bounded by the budget."""
        journaled = journaled or {}
        persistent = (
            {bf.index for bf in self.fault_plan.bench_faults if not bf.transient}
            if self.fault_plan is not None
            else set()
        )
        for attempt in range(1, self.retry_faulty + 1):
            faulted = [t for t in tasks if results[t.index].faulty]
            if not faulted:
                return
            retry_tasks = []
            resumed = 0
            for task in faulted:
                rec = journaled.get((task.index, attempt))
                if rec is not None:
                    # This retry already ran before the crash; its stream
                    # is never re-derived (streams are independent by
                    # name, so skipping it perturbs nothing else).
                    results[task.index] = self._result_from_record(task, rec)
                    resumed += 1
                    continue
                self.events.publish(
                    "collect.retry",
                    f"retrying faulted sample {task.index} (attempt {attempt})",
                    index=task.index,
                    attempt=attempt,
                )
                retry_tasks.append(
                    replace(
                        task,
                        rng=self.seeds.stream(f"bench-{task.index}-retry{attempt}"),
                        degradation=(
                            task.degradation if task.index in persistent else None
                        ),
                    )
                )
            if resumed:
                self.events.publish(
                    "recovery.resumed",
                    f"resumed {resumed} retry results (attempt {attempt}) from journal",
                    resumed=resumed,
                    attempt=attempt,
                )

            def on_retry_result(position: int, result: BenchmarkResult) -> None:
                if journal is not None:
                    journal.append(
                        self._record_from_result(
                            retry_tasks[position].index, attempt, result
                        )
                    )

            retried = backend.map_tasks(
                execute_benchmark_task, retry_tasks, on_result=on_retry_result
            )
            for task, result in zip(retry_tasks, retried):
                results[task.index] = result
