"""Performance datasets: the training data for the surrogate model.

A sample is the paper's ``S_i = {W_i, C_i, P_i}`` (§3.5): a workload, a
configuration, and the measured performance.  The dataset knows how to
encode itself into the surrogate's feature space — read ratio plus the
unit-scaled key parameters (Equation 2) — and how to split along the
configuration or workload dimension for the §4.7.2 holdout validations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.metrics import BenchmarkResult
from repro.config.space import Configuration, ConfigurationSpace
from repro.errors import TrainingError
from repro.workload.spec import WorkloadSpec


@dataclass(frozen=True)
class PerformanceSample:
    """One (workload, configuration, AOPS) training point."""

    workload: WorkloadSpec
    configuration: Configuration
    throughput: float

    @classmethod
    def from_result(cls, result: BenchmarkResult) -> "PerformanceSample":
        return cls(
            workload=result.workload,
            configuration=result.configuration,
            throughput=result.mean_throughput,
        )


class PerformanceDataset:
    """An ordered collection of performance samples with ML encodings."""

    def __init__(
        self,
        samples: Sequence[PerformanceSample],
        feature_parameters: Sequence[str],
    ):
        self.samples: List[PerformanceSample] = list(samples)
        self.feature_parameters: Tuple[str, ...] = tuple(feature_parameters)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def __getitem__(self, i):
        return self.samples[i]

    # -- encoding ---------------------------------------------------------------

    @property
    def feature_names(self) -> List[str]:
        return ["read_ratio", *self.feature_parameters]

    def features(self) -> np.ndarray:
        """(n, 1 + J) matrix: RR plus unit-encoded key parameters."""
        if not self.samples:
            raise TrainingError("dataset is empty")
        rows = []
        for s in self.samples:
            rows.append(
                [s.workload.read_ratio, *s.configuration.to_vector(self.feature_parameters)]
            )
        return np.asarray(rows, dtype=float)

    def targets(self) -> np.ndarray:
        """(n,) vector of AOPS values."""
        return np.asarray([s.throughput for s in self.samples], dtype=float)

    # -- grouping and splitting ------------------------------------------------------

    def distinct_configurations(self) -> List[Configuration]:
        seen: Dict[Configuration, None] = {}
        for s in self.samples:
            seen.setdefault(s.configuration, None)
        return list(seen)

    def distinct_read_ratios(self) -> List[float]:
        return sorted({round(s.workload.read_ratio, 6) for s in self.samples})

    def split_by_configuration(
        self, holdout_fraction: float, rng: np.random.Generator
    ) -> Tuple["PerformanceDataset", "PerformanceDataset"]:
        """Hold out whole configurations: "unseen configuration means that
        no entries for Ci seen in the test set exists in the training
        set" (§4.3)."""
        configs = self.distinct_configurations()
        return self._split_by_group(
            holdout_fraction,
            rng,
            groups=configs,
            group_of=lambda s: s.configuration,
        )

    def split_by_workload(
        self, holdout_fraction: float, rng: np.random.Generator
    ) -> Tuple["PerformanceDataset", "PerformanceDataset"]:
        """Hold out whole workloads (read ratios)."""
        ratios = self.distinct_read_ratios()
        return self._split_by_group(
            holdout_fraction,
            rng,
            groups=ratios,
            group_of=lambda s: round(s.workload.read_ratio, 6),
        )

    def _split_by_group(self, holdout_fraction, rng, groups, group_of):
        if not (0.0 < holdout_fraction < 1.0):
            raise TrainingError("holdout_fraction must be in (0, 1)")
        if len(groups) < 2:
            raise TrainingError("need at least two groups to split")
        n_holdout = max(1, int(round(holdout_fraction * len(groups))))
        n_holdout = min(n_holdout, len(groups) - 1)
        chosen = set(
            rng.choice(len(groups), size=n_holdout, replace=False).tolist()
        )
        held = {g for i, g in enumerate(groups) if i in chosen}
        train = [s for s in self.samples if group_of(s) not in held]
        test = [s for s in self.samples if group_of(s) in held]
        return (
            PerformanceDataset(train, self.feature_parameters),
            PerformanceDataset(test, self.feature_parameters),
        )

    def subset(self, indices: Sequence[int]) -> "PerformanceDataset":
        return PerformanceDataset(
            [self.samples[i] for i in indices], self.feature_parameters
        )

    def take(self, n: int, rng: Optional[np.random.Generator] = None) -> "PerformanceDataset":
        """First ``n`` samples, or a random ``n`` if an rng is given
        (Figure 7's learning-curve subsets)."""
        if n > len(self.samples):
            raise TrainingError(f"cannot take {n} from {len(self.samples)} samples")
        if rng is None:
            return self.subset(range(n))
        idx = rng.choice(len(self.samples), size=n, replace=False)
        return self.subset(sorted(int(i) for i in idx))

    # -- persistence ----------------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-ready payload: (workload RR/name, non-default config, AOPS) rows."""
        rows = [
            {
                "read_ratio": s.workload.read_ratio,
                "workload": s.workload.label,
                "config": {k: v for k, v in s.configuration.non_default_items().items()},
                "throughput": s.throughput,
            }
            for s in self.samples
        ]
        return {"feature_parameters": list(self.feature_parameters), "samples": rows}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(
        cls, blob: Dict, space: ConfigurationSpace, n_keys: int = 30_000_000
    ) -> "PerformanceDataset":
        samples = [
            PerformanceSample(
                workload=WorkloadSpec(
                    read_ratio=row["read_ratio"], n_keys=n_keys, name=row["workload"]
                ),
                configuration=Configuration(space, row["config"]),
                throughput=row["throughput"],
            )
            for row in blob["samples"]
        ]
        return cls(samples, blob["feature_parameters"])

    @classmethod
    def from_json(
        cls, text: str, space: ConfigurationSpace, n_keys: int = 30_000_000
    ) -> "PerformanceDataset":
        return cls.from_dict(json.loads(text), space, n_keys=n_keys)


DATASET_KIND = "performance-dataset"


def save_dataset(dataset: PerformanceDataset, path) -> None:
    """Atomically write a dataset as a checksummed artifact.

    The payload keys match :meth:`PerformanceDataset.to_json` — the file
    is still a plain JSON document with top-level ``samples`` /
    ``feature_parameters`` — plus the envelope header and CRC32 footer
    from :mod:`repro.recovery.atomic`, so a kill mid-write can no longer
    leave a truncated dataset.
    """
    from repro.recovery.atomic import write_artifact

    write_artifact(path, dataset.to_dict(), kind=DATASET_KIND, indent=2)


def load_dataset(
    path, space: ConfigurationSpace, n_keys: int = 30_000_000, events=None
) -> PerformanceDataset:
    """Read a dataset artifact, rejecting corruption with PersistenceError.

    Accepts legacy plain-JSON datasets (no checksum footer) written by
    older builds or by hand; those still fail with
    :class:`~repro.errors.PersistenceError` when truncated or
    structurally damaged, but a bit-flip inside them is undetectable.
    """
    from repro.errors import PersistenceError
    from repro.recovery.atomic import read_artifact

    blob = read_artifact(path, kind=DATASET_KIND, allow_legacy=True, events=events)
    try:
        return PerformanceDataset.from_dict(blob, space, n_keys=n_keys)
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"corrupt dataset artifact {path}: {exc!r}") from exc
