"""Benchmarking harness (the paper's modified-YCSB layer, §4.1–4.2).

Provides the YCSB-style benchmark runner over simulated servers, the
fresh-instance harness (the per-sample Docker reset), the performance
dataset container the surrogate model trains on, and the §4.2 data
collection campaign: 11 workloads x 20 configurations, noisy samples
dropped.
"""

from repro.bench.metrics import BenchmarkResult, ThroughputSample, summarize_throughput
from repro.bench.ycsb import YCSBBenchmark
from repro.bench.dataset import PerformanceDataset, PerformanceSample
from repro.bench.collection import DataCollectionCampaign

__all__ = [
    "BenchmarkResult",
    "ThroughputSample",
    "summarize_throughput",
    "YCSBBenchmark",
    "PerformanceDataset",
    "PerformanceSample",
    "DataCollectionCampaign",
]
