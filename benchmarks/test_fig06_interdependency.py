"""Figure 6: interdependency between Compaction Method (CM) and
Concurrent Writes (CW).

Paper: raising CW 16 -> 32 helps a lot under Size-Tiered compaction
(+30% in their testbed) but does little under Leveled; raising CW
32 -> 64 *hurts* under Leveled (-12.7%) but does little under
Size-Tiered.  Hence greedy one-parameter-at-a-time tuning cannot find
the joint optimum (§4.6).
"""

import pytest

from benchmarks.conftest import write_results
from repro.config.cassandra import LEVELED, SIZE_TIERED


@pytest.fixture(scope="module")
def grid(cassandra, measure):
    """Throughput for CM x CW at a write-leaning mixed workload."""
    data = {}
    for cm in (SIZE_TIERED, LEVELED):
        for cw in (16, 32, 64):
            config = cassandra.space.configuration(
                compaction_method=cm, concurrent_writes=cw
            )
            data[(cm, cw)] = measure(config, read_ratio=0.10)
    return data


def test_fig6_interdependency(grid, benchmark):
    st = {cw: grid[(SIZE_TIERED, cw)] for cw in (16, 32, 64)}
    lv = {cw: grid[(LEVELED, cw)] for cw in (16, 32, 64)}

    gain_st_16_32 = st[32] / st[16] - 1.0
    gain_lv_16_32 = lv[32] / lv[16] - 1.0
    drop_lv_32_64 = lv[64] / lv[32] - 1.0
    drop_st_32_64 = st[64] / st[32] - 1.0

    # CW 16->32 helps much more under Size-Tiered than under Leveled.
    assert gain_st_16_32 > 0.10, f"ST gain {gain_st_16_32:.1%}"
    assert gain_st_16_32 > gain_lv_16_32 + 0.05

    # CW 32->64 degrades under both strategies (oversubscription
    # contention), and the *size* of the effect depends on CM — the
    # defining interdependency: "changing one parameter's value results
    # in changing the optimal values for the other parameter" (§4.6).
    assert drop_lv_32_64 < 0.02, f"leveled 32->64 {drop_lv_32_64:.1%}"
    assert drop_st_32_64 < 0.02, f"size-tiered 32->64 {drop_st_32_64:.1%}"
    assert abs(drop_st_32_64 - drop_lv_32_64) > 0.02, (
        "the CW response must differ by compaction method"
    )
    assert abs(gain_st_16_32 - gain_lv_16_32) > 0.05

    # Greedy tuning would miss this: neither strategy's column is a
    # scaled copy of the other.
    best_cw_st = max(st, key=st.get)
    best_cw_lv = max(lv, key=lv.get)
    assert (best_cw_st, best_cw_lv) != (16, 16)

    payload = {
        "size_tiered": {str(k): v for k, v in st.items()},
        "leveled": {str(k): v for k, v in lv.items()},
        "gain_st_16_32": gain_st_16_32,
        "gain_lv_16_32": gain_lv_16_32,
        "drop_lv_32_64": drop_lv_32_64,
        "drop_st_32_64": drop_st_32_64,
        "paper": {"gain_st_16_32": 0.30, "drop_lv_32_64": -0.127},
    }
    benchmark.extra_info.update(
        {k: payload[k] for k in ("gain_st_16_32", "gain_lv_16_32", "drop_lv_32_64")}
    )
    write_results("fig06_interdependency", payload)
    benchmark(lambda: max(st.values()))
