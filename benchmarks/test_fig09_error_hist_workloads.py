"""Figure 9: distribution of prediction errors for unseen workloads.

Paper: average absolute error 5.6%, better than the unseen-configuration
case — "the single feature that represents the workload's
Read-proportion can capture the system dynamics well".
"""

import numpy as np
import pytest

from benchmarks.conftest import write_results
from repro.config import CASSANDRA_KEY_PARAMETERS
from repro.core.surrogate import SurrogateModel
from repro.ml.ensemble import EnsembleConfig
from repro.ml.metrics import percentage_errors

TRIALS = 6


@pytest.fixture(scope="module")
def workload_holdout_errors(cassandra, cassandra_dataset):
    errors = []
    for trial in range(TRIALS):
        rng = np.random.default_rng(100 + trial)
        train, test = cassandra_dataset.split_by_workload(0.25, rng)
        model = SurrogateModel(
            cassandra.space, CASSANDRA_KEY_PARAMETERS, EnsembleConfig(n_networks=8)
        ).fit(train, seed=trial)
        errors.extend(percentage_errors(test.targets(), model.predict_dataset(test)))
    return np.array(errors)


def test_fig9_unseen_workload_histogram(
    workload_holdout_errors, config_errors_for_comparison, benchmark
):
    errors = workload_holdout_errors
    mean_abs = float(np.mean(np.abs(errors)))
    bias = float(np.mean(errors))
    within5 = float((np.abs(errors) <= 5.0).mean())

    # Paper: ~5.6% average absolute error for unseen workloads.
    assert mean_abs < 12.0, f"unseen-workload error {mean_abs:.1f}% too high"
    assert abs(bias) < 0.5 * np.std(errors) + 1.0
    assert within5 > 0.5, "most projections lie in the |5|% range"

    # Workload prediction is easier than configuration prediction.
    assert mean_abs < config_errors_for_comparison + 2.0

    hist, edges = np.histogram(errors, bins=np.arange(-30, 31, 2.5))
    payload = {
        "mean_abs_error_pct": mean_abs,
        "bias_pct": bias,
        "fraction_within_5pct": within5,
        "histogram_counts": hist.tolist(),
        "histogram_edges": edges.tolist(),
        "paper": {"mean_abs_error_pct": 5.6},
    }
    benchmark.extra_info.update(
        {k: payload[k] for k in ("mean_abs_error_pct", "bias_pct", "fraction_within_5pct")}
    )
    write_results("fig09_error_hist_workloads", payload)
    benchmark(lambda: float(np.mean(np.abs(errors))))


@pytest.fixture(scope="module")
def config_errors_for_comparison(cassandra, cassandra_dataset):
    """A small unseen-config error estimate for the Fig 8 vs 9 contrast."""
    errs = []
    for trial in range(2):
        rng = np.random.default_rng(trial)
        train, test = cassandra_dataset.split_by_configuration(0.25, rng)
        model = SurrogateModel(
            cassandra.space, CASSANDRA_KEY_PARAMETERS, EnsembleConfig(n_networks=8)
        ).fit(train, seed=trial)
        errs.append(
            float(np.mean(np.abs(percentage_errors(test.targets(), model.predict_dataset(test)))))
        )
    return float(np.mean(errs))
