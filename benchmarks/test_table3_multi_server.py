"""Table 3: Rafiki improvement over defaults, single- vs two-server.

Paper:
    workload          RR=10%    RR=50%    RR=100%
    single server     15.2%     41.3%     48.4%
    two servers        3.2%     67.4%     51.4%

Shape claims: improvements exist in both setups, grow with the read
ratio, and the write-heavy improvement *shrinks* in the replicated
two-server setup (RF+1 doubles every write, so the second server buys
little at RR=10%).
"""

import numpy as np
import pytest

from benchmarks.conftest import SEED, write_results
from repro.datastore import Cluster

RATIOS = (0.1, 0.5, 1.0)


def cluster_throughput(cassandra, config, rr, n_nodes, workload, seed):
    cluster = Cluster(
        cassandra,
        config,
        n_nodes=n_nodes,
        replication_factor=n_nodes,  # paper: RF raised with the node count
        n_shooters=n_nodes,          # paper: one more shooter for 2 servers
        profile=workload.to_profile(),
        seed=seed,
    )
    cluster.load(workload.n_keys)
    cluster.settle()
    steps = cluster.run(rr, duration=300)
    return float(np.mean([s.throughput for s in steps]))


@pytest.fixture(scope="module")
def table3(cassandra, cassandra_rafiki, base_workload):
    rows = {}
    default_cfg = cassandra.default_configuration()
    for n_nodes in (1, 2):
        for rr in RATIOS:
            tuned_cfg = cassandra_rafiki.recommend(rr).configuration
            base = cluster_throughput(
                cassandra, default_cfg, rr, n_nodes, base_workload, seed=SEED + 7
            )
            tuned = cluster_throughput(
                cassandra, tuned_cfg, rr, n_nodes, base_workload, seed=SEED + 7
            )
            rows[(n_nodes, rr)] = {
                "default": base,
                "rafiki": tuned,
                "improvement": tuned / base - 1.0,
            }
    return rows


def test_table3_multi_server(table3, benchmark):
    single = {rr: table3[(1, rr)]["improvement"] for rr in RATIOS}
    double = {rr: table3[(2, rr)]["improvement"] for rr in RATIOS}

    # Rafiki helps in both setups at read-leaning workloads.
    assert single[1.0] > 0.10
    assert double[1.0] > 0.10

    # Gains grow with the read ratio in the single-server setup.
    assert single[1.0] > single[0.1]

    # The write-heavy two-server gain collapses relative to single
    # (replication doubles writes; paper: 15.2% -> 3.2%).
    assert double[0.1] < single[0.1] + 0.05

    payload = {
        "measured": {
            f"{n}node_rr{int(rr*100)}": table3[(n, rr)]
            for n in (1, 2)
            for rr in RATIOS
        },
        "paper": {
            "1node": {"rr10": 0.152, "rr50": 0.4134, "rr100": 0.4835},
            "2node": {"rr10": 0.032, "rr50": 0.6737, "rr100": 0.514},
        },
    }
    benchmark.extra_info.update(
        {
            "single_rr100": single[1.0],
            "double_rr100": double[1.0],
            "single_rr10": single[0.1],
            "double_rr10": double[0.1],
        }
    )
    write_results("table3_multi_server", payload)
    benchmark(lambda: single[1.0])
