"""Figure 3: MG-RAST read/write ratio over 4 days, 15-minute windows.

Paper: "there are periods of read heavy, write heavy, and a few mixed
during the observed period.  More importantly, the transition between
these periods is not smooth and often occurs abruptly and lasts for 15
minutes or less."
"""

import numpy as np

from benchmarks.conftest import SEED, write_results
from repro.workload.characterize import characterize_trace
from repro.workload.mgrast import FOUR_DAYS_SECONDS, MGRastTraceGenerator


def test_fig3_workload_dynamism(benchmark):
    # Assertions use a fixed-seed realization; the benchmark times fresh
    # generators so the stateful RNG never leaks across timing rounds.
    series = MGRastTraceGenerator(seed=SEED, queries_per_window=800).read_ratio_series(
        FOUR_DAYS_SECONDS
    )
    benchmark(
        lambda: MGRastTraceGenerator(
            seed=SEED, queries_per_window=800
        ).read_ratio_series(FOUR_DAYS_SECONDS)
    )

    # 4 days of 15-minute windows.
    assert len(series) == 384

    read_heavy = float((series > 0.7).mean())
    write_heavy = float((series < 0.3).mean())
    mixed = float(((series >= 0.3) & (series <= 0.7)).mean())
    jumps = np.abs(np.diff(series))

    # Shape claims from §2.4.1.
    assert read_heavy > 0.3, "extended read-heavy periods"
    assert write_heavy > 0.05, "bursty write periods"
    assert mixed > 0.1, "mixed periods"
    assert jumps.max() > 0.5, "abrupt regime switches within one window"
    assert (jumps > 0.3).sum() >= 5, "switches recur across the trace"

    # Cross-check: a full query trace characterizes back to the series.
    short_gen = MGRastTraceGenerator(seed=SEED, queries_per_window=800)
    trace = short_gen.generate(duration_seconds=12 * 3600)
    ch = characterize_trace(trace)
    assert ch.n_windows == 48
    assert ch.krd_mean_ops > 0

    payload = {
        "windows": len(series),
        "read_heavy_fraction": read_heavy,
        "write_heavy_fraction": write_heavy,
        "mixed_fraction": mixed,
        "max_window_jump": float(jumps.max()),
        "rr_series_first_day": series[:96].tolist(),
        "fitted_krd_ops": ch.krd_mean_ops,
    }
    benchmark.extra_info.update(
        {k: v for k, v in payload.items() if k != "rr_series_first_day"}
    )
    write_results("fig03_workload_dynamism", payload)
