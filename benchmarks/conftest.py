"""Shared fixtures for the experiment benches.

Every table and figure of the paper gets one bench module; expensive
artifacts (the 200-sample dataset, trained surrogates) are built once
per session here.  Benches assert the paper's *shape* claims (who wins,
rough factors, where crossovers fall) and attach the reproduced rows to
``benchmark.extra_info`` so the pytest-benchmark report carries the
paper-vs-measured numbers.  Each bench also writes its rows to
``benchmarks/results/<name>.json`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.bench.collection import DataCollectionCampaign
from repro.bench.ycsb import YCSBBenchmark
from repro.config import CASSANDRA_KEY_PARAMETERS, SCYLLA_KEY_PARAMETERS
from repro.core.rafiki import Rafiki
from repro.core.surrogate import SurrogateModel
from repro.datastore import CassandraLike, ScyllaLike
from repro.ml.ensemble import EnsembleConfig
from repro.workload.spec import mgrast_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: One shared experiment seed; every artifact derives from it.
SEED = 2017


def write_results(name: str, payload: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{name}.json", "w") as fh:
        json.dump(payload, fh, indent=2, default=float)


@pytest.fixture(scope="session")
def cassandra():
    return CassandraLike()


@pytest.fixture(scope="session")
def scylla():
    return ScyllaLike()


@pytest.fixture(scope="session")
def base_workload():
    return mgrast_workload(0.5, name="mgrast-base")


@pytest.fixture(scope="session")
def cassandra_dataset(cassandra, base_workload):
    """The §4.2 campaign: 11 workloads x 20 configs, 20 faulted dropped."""
    campaign = DataCollectionCampaign(
        cassandra,
        base_workload,
        key_parameters=CASSANDRA_KEY_PARAMETERS,
        seed=SEED,
    )
    dataset = campaign.run()
    assert len(dataset) == 200
    return dataset


@pytest.fixture(scope="session")
def cassandra_surrogate(cassandra, cassandra_dataset):
    """Paper-sized ensemble (20 nets, pruned to 14) on all 200 samples."""
    model = SurrogateModel(
        cassandra.space,
        CASSANDRA_KEY_PARAMETERS,
        EnsembleConfig(n_networks=20),
    )
    return model.fit(cassandra_dataset, seed=SEED)


@pytest.fixture(scope="session")
def cassandra_rafiki(cassandra, cassandra_surrogate):
    return Rafiki(cassandra, cassandra_surrogate, CASSANDRA_KEY_PARAMETERS, seed=SEED)


@pytest.fixture(scope="session")
def scylla_dataset(scylla):
    campaign = DataCollectionCampaign(
        scylla,
        mgrast_workload(0.7, name="mgrast-scylla"),
        key_parameters=SCYLLA_KEY_PARAMETERS,
        seed=SEED + 1,
    )
    dataset = campaign.run()
    assert len(dataset) == 200
    return dataset


@pytest.fixture(scope="session")
def scylla_surrogate(scylla, scylla_dataset):
    model = SurrogateModel(
        scylla.space,
        SCYLLA_KEY_PARAMETERS,
        EnsembleConfig(n_networks=20),
    )
    return model.fit(scylla_dataset, seed=SEED + 1)


@pytest.fixture(scope="session")
def scylla_rafiki(scylla, scylla_surrogate):
    return Rafiki(scylla, scylla_surrogate, SCYLLA_KEY_PARAMETERS, seed=SEED + 1)


@pytest.fixture(scope="session")
def measure(cassandra, base_workload):
    """Measured (simulated-server) throughput of a config at a read ratio."""
    bench = YCSBBenchmark(cassandra)

    def _measure(config, read_ratio, seed=SEED + 99):
        wl = base_workload.with_read_ratio(read_ratio)
        return bench.run(config, wl, seed=seed).mean_throughput

    return _measure
