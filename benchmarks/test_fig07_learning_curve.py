"""Figure 7: prediction error vs number of training samples.

Paper: error falls as training grows and "begins to level off at 180
collected training samples"; ~5% of the search space suffices.  Unseen-
configuration error stays above unseen-workload error throughout.
"""

import numpy as np
import pytest

from benchmarks.conftest import write_results
from repro.config import CASSANDRA_KEY_PARAMETERS
from repro.core.surrogate import SurrogateModel
from repro.ml.ensemble import EnsembleConfig
from repro.ml.metrics import mean_absolute_percentage_error

SIZES = (36, 72, 108, 144, 180)
TRIALS = 3


def holdout_error(space, dataset, split_kind, n_train, trial):
    rng = np.random.default_rng(1000 * trial + n_train)
    split = (
        dataset.split_by_configuration
        if split_kind == "config"
        else dataset.split_by_workload
    )
    train, test = split(0.25, rng)
    if n_train < len(train):
        train = train.take(n_train, rng)
    model = SurrogateModel(
        space, CASSANDRA_KEY_PARAMETERS, EnsembleConfig(n_networks=6)
    ).fit(train, seed=trial)
    preds = model.predict_dataset(test)
    return mean_absolute_percentage_error(test.targets(), preds)


@pytest.fixture(scope="module")
def learning_curves(cassandra, cassandra_dataset):
    curves = {"config": [], "workload": []}
    for kind in curves:
        for n in SIZES:
            errs = [
                holdout_error(cassandra.space, cassandra_dataset, kind, n, t)
                for t in range(TRIALS)
            ]
            curves[kind].append(float(np.mean(errs)))
    return curves


def test_fig7_learning_curve(learning_curves, benchmark, cassandra, cassandra_dataset):
    config_curve = learning_curves["config"]
    workload_curve = learning_curves["workload"]

    # Errors shrink substantially with more data...
    assert config_curve[-1] < config_curve[0]
    assert workload_curve[-1] < workload_curve[0]
    # ...and level off: the second half of the curve improves less than
    # the first half (trial noise makes single steps unreliable).
    mid = len(config_curve) // 2
    first_half_drop = config_curve[0] - config_curve[mid]
    second_half_drop = config_curve[mid] - config_curve[-1]
    assert second_half_drop < first_half_drop + 1.5

    # Unseen configurations are the harder task (paper: 7.5% vs 5.6%).
    assert config_curve[-1] > workload_curve[-1] * 0.9

    # At full data both errors are in a usable range.
    assert workload_curve[-1] < 12.0
    assert config_curve[-1] < 20.0

    payload = {
        "sizes": list(SIZES),
        "unseen_config_error_pct": config_curve,
        "unseen_workload_error_pct": workload_curve,
        "paper": {"unseen_config_at_180": 7.5, "unseen_workload_at_180": 5.6},
    }
    benchmark.extra_info.update(
        {
            "config_err_at_180": config_curve[-1],
            "workload_err_at_180": workload_curve[-1],
        }
    )
    write_results("fig07_learning_curve", payload)

    # Benchmark one training run at the smallest size (the unit cost).
    benchmark(
        lambda: holdout_error(cassandra.space, cassandra_dataset, "workload", 36, 9)
    )
