"""Online adaptation to the dynamic MG-RAST workload (the paper's
motivating scenario, §1 + §2.4.1 + §4.8's "agile enough" claim).

Rafiki's cached, seconds-fast searches let the controller re-configure
at every abrupt 15-minute regime switch; a static default configuration
(what a slow online tuner degenerates to at these time scales) leaves
throughput on the table.
"""

import numpy as np

from benchmarks.conftest import SEED, write_results
from repro.core.controller import OnlineController
from repro.workload.mgrast import MGRastTraceGenerator


def test_online_adaptation(cassandra, cassandra_rafiki, base_workload, benchmark):
    rr_series = MGRastTraceGenerator(seed=SEED).read_ratio_series(
        duration_seconds=24 * 3600
    )

    static = OnlineController(
        cassandra, None, base_workload, seed=SEED
    ).run(rr_series)
    adaptive = OnlineController(
        cassandra, cassandra_rafiki, base_workload, seed=SEED
    ).run(rr_series)

    gain = adaptive.mean_throughput / static.mean_throughput - 1.0

    # Dynamic tuning must beat the static default over a dynamic day.
    assert gain > 0.05, f"adaptive gain {gain:.1%}"
    # The controller actually reacts to the regime switches.
    assert adaptive.reconfiguration_count >= 3
    # But not to every tiny wobble: reconfigurations stay far below the
    # window count.
    assert adaptive.reconfiguration_count < len(rr_series) * 0.7

    # Per-regime wins: read-heavy windows gain the most.
    read_heavy_gain = np.mean(
        [
            a.mean_throughput / s.mean_throughput - 1.0
            for a, s in zip(adaptive.events, static.events)
            if a.read_ratio >= 0.7
        ]
    )
    assert read_heavy_gain > 0.10

    payload = {
        "windows": len(rr_series),
        "static_mean_throughput": static.mean_throughput,
        "adaptive_mean_throughput": adaptive.mean_throughput,
        "overall_gain": gain,
        "read_heavy_window_gain": float(read_heavy_gain),
        "reconfigurations": adaptive.reconfiguration_count,
    }
    benchmark.extra_info.update(
        {k: payload[k] for k in ("overall_gain", "reconfigurations")}
    )
    write_results("online_adaptation", payload)

    # Benchmark a cached recommendation — the controller's hot path.
    benchmark(lambda: cassandra_rafiki.recommend(0.88))
