"""Figure 5: ANOVA ranking of Cassandra configuration parameters.

Paper: the top ~5 parameters dominate, compaction strategy is the most
significant (its std is 11x that of concurrent_writes in their testbed,
so large it is dropped from the plot), and the key set after the §4.5
memtable consolidation is {CM, CW, FCZ, MT, CC}.

Our measured ranking reproduces the structure — compaction-, cache-, and
flush-related parameters on top, plumbing parameters at the measurement-
noise floor — though the exact order within the top group differs from
the paper's testbed (see EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import SEED, write_results
from repro.core.anova import (
    consolidate_memtable_parameters,
    rank_parameters,
    select_key_parameters,
)


@pytest.fixture(scope="module")
def representative_workload():
    """The OFAT sweeps run against a representative MG-RAST workload,
    which is read-leaning ("read-heavy most of the time", §4.8)."""
    from repro.workload.spec import mgrast_workload

    return mgrast_workload(0.75, name="mgrast-representative")


@pytest.fixture(scope="module")
def ranking(cassandra, representative_workload):
    return rank_parameters(cassandra, representative_workload, repeats=2, seed=SEED)


def test_fig5_anova_ranking(ranking, benchmark, cassandra, representative_workload):
    stds = {e.name: e.throughput_std for e in ranking}

    # The mechanism parameters dominate the plumbing ones.
    mechanism = [
        "compaction_method",
        "file_cache_size_in_mb",
        "memtable_cleanup_threshold",
        "concurrent_writes",
        "concurrent_compactors",
        "compaction_throughput_mb_per_sec",
    ]
    plumbing = [
        "batch_size_warn_threshold_in_kb",
        "dynamic_snitch_update_interval_in_ms",
        "range_request_timeout_in_ms",
        "column_index_size_in_kb",
    ]
    top8 = ranking.names()[:8]
    assert sum(1 for m in mechanism if m in top8) >= 4
    assert all(p not in top8 for p in plumbing)

    # Compaction method is among the most significant parameters and
    # dwarfs concurrent_writes' noise floor relative to plumbing.
    assert "compaction_method" in ranking.names()[:6]
    noise_floor = max(stds[p] for p in plumbing)
    assert stds["compaction_method"] > 3 * noise_floor

    # The selection pipeline lands on five key parameters including the
    # compaction strategy, the flush threshold, and the file cache.
    selected = consolidate_memtable_parameters(select_key_parameters(ranking))[:5]
    assert len(selected) == 5
    assert "compaction_method" in selected
    assert "memtable_cleanup_threshold" in selected
    assert "file_cache_size_in_mb" in selected

    payload = {
        "ranking": [
            {
                "name": e.name,
                "throughput_std": e.throughput_std,
                "f_statistic": e.f_statistic,
                "p_value": e.p_value,
            }
            for e in ranking
        ],
        "selected_key_parameters": selected,
        "paper_key_parameters": [
            "compaction_method",
            "concurrent_writes",
            "file_cache_size_in_mb",
            "memtable_cleanup_threshold",
            "concurrent_compactors",
        ],
    }
    benchmark.extra_info["top5"] = ranking.names()[:5]
    write_results("fig05_anova_ranking", payload)

    # Benchmark one OFAT sweep (the unit of ANOVA cost).
    benchmark(
        lambda: rank_parameters(
            cassandra,
            representative_workload,
            parameters=["concurrent_compactors"],
            repeats=1,
            seed=SEED,
        )
    )
