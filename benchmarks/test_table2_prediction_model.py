"""Table 2: prediction-model performance for Cassandra.

Paper:
                      20 Nets              1 Net
                 Config   Workload    Config   Workload
    Pred. error   7.5%      5.6%      10.1%     5.95%
    R2 value      0.74      0.75       0.51      0.73
    Avg RMSE    6,859 op/s 6,157     9,338      6,378

Shape claims: the pruned 20-net ensemble beats the single net on unseen
configurations (the hard case), errors are single/low-double-digit
percent, and R2 is clearly positive for the ensemble.
"""

import numpy as np
import pytest

from benchmarks.conftest import write_results
from repro.config import CASSANDRA_KEY_PARAMETERS
from repro.core.surrogate import SurrogateModel
from repro.ml.ensemble import EnsembleConfig
from repro.ml.metrics import mean_absolute_percentage_error, r2_score, rmse

TRIALS = 4


def evaluate(space, dataset, n_networks, split_kind, trials=TRIALS):
    errs, r2s, rmses = [], [], []
    for trial in range(trials):
        rng = np.random.default_rng(500 + trial)
        split = (
            dataset.split_by_configuration
            if split_kind == "config"
            else dataset.split_by_workload
        )
        train, test = split(0.25, rng)
        model = SurrogateModel(
            space, CASSANDRA_KEY_PARAMETERS, EnsembleConfig(n_networks=n_networks)
        ).fit(train, seed=trial)
        preds = model.predict_dataset(test)
        errs.append(mean_absolute_percentage_error(test.targets(), preds))
        r2s.append(r2_score(test.targets(), preds))
        rmses.append(rmse(test.targets(), preds))
    return {
        "error_pct": float(np.mean(errs)),
        "r2": float(np.mean(r2s)),
        "rmse": float(np.mean(rmses)),
    }


@pytest.fixture(scope="module")
def table2(cassandra, cassandra_dataset):
    return {
        "ensemble20_config": evaluate(cassandra.space, cassandra_dataset, 20, "config"),
        "ensemble20_workload": evaluate(cassandra.space, cassandra_dataset, 20, "workload"),
        "single_config": evaluate(cassandra.space, cassandra_dataset, 1, "config"),
        "single_workload": evaluate(cassandra.space, cassandra_dataset, 1, "workload"),
    }


def test_table2_prediction_model(table2, benchmark):
    ens_cfg = table2["ensemble20_config"]
    ens_wl = table2["ensemble20_workload"]
    one_cfg = table2["single_config"]

    # Ensemble beats the single net on the hard (unseen-config) case.
    assert ens_cfg["error_pct"] < one_cfg["error_pct"]
    assert ens_cfg["r2"] > one_cfg["r2"]

    # Workload prediction is the easier task for both model sizes.
    assert ens_wl["error_pct"] < ens_cfg["error_pct"]

    # Absolute quality in a usable band (paper: 7.5% / 5.6%).
    assert ens_cfg["error_pct"] < 18.0
    assert ens_wl["error_pct"] < 10.0
    assert ens_cfg["r2"] > 0.2
    assert ens_wl["r2"] > 0.6

    payload = {
        "measured": table2,
        "paper": {
            "ensemble20_config": {"error_pct": 7.5, "r2": 0.74, "rmse": 6859},
            "ensemble20_workload": {"error_pct": 5.6, "r2": 0.75, "rmse": 6157},
            "single_config": {"error_pct": 10.1, "r2": 0.51, "rmse": 9338},
            "single_workload": {"error_pct": 5.95, "r2": 0.73, "rmse": 6378},
        },
    }
    benchmark.extra_info.update(
        {
            "ens20_config_err": ens_cfg["error_pct"],
            "ens20_workload_err": ens_wl["error_pct"],
            "single_config_err": one_cfg["error_pct"],
        }
    )
    write_results("table2_prediction_model", payload)
    benchmark(lambda: ens_cfg["error_pct"])
