"""Figure 8: distribution of prediction errors for unseen configurations.

Paper: 10 randomized 25%-holdout trials; the average absolute error is
7.5% with most projections within |5|% and little bias (mean near zero).
"""

import numpy as np
import pytest

from benchmarks.conftest import write_results
from repro.config import CASSANDRA_KEY_PARAMETERS
from repro.core.surrogate import SurrogateModel
from repro.ml.ensemble import EnsembleConfig
from repro.ml.metrics import percentage_errors

TRIALS = 6


@pytest.fixture(scope="module")
def config_holdout_errors(cassandra, cassandra_dataset):
    errors = []
    for trial in range(TRIALS):
        rng = np.random.default_rng(trial)
        train, test = cassandra_dataset.split_by_configuration(0.25, rng)
        model = SurrogateModel(
            cassandra.space, CASSANDRA_KEY_PARAMETERS, EnsembleConfig(n_networks=8)
        ).fit(train, seed=trial)
        errors.extend(percentage_errors(test.targets(), model.predict_dataset(test)))
    return np.array(errors)


def test_fig8_unseen_config_histogram(config_holdout_errors, benchmark):
    errors = config_holdout_errors
    mean_abs = float(np.mean(np.abs(errors)))
    bias = float(np.mean(errors))
    within5 = float((np.abs(errors) <= 5.0).mean())

    # Paper: ~7.5% average absolute error for unseen configurations.
    assert mean_abs < 18.0, f"unseen-config error {mean_abs:.1f}% too high"
    # Little bias: the mean sits near zero relative to the spread.
    assert abs(bias) < 0.5 * np.std(errors) + 1.0
    # A substantial mass of predictions lands within |5|%.
    assert within5 > 0.30

    hist, edges = np.histogram(errors, bins=np.arange(-30, 31, 2.5))
    payload = {
        "mean_abs_error_pct": mean_abs,
        "bias_pct": bias,
        "fraction_within_5pct": within5,
        "histogram_counts": hist.tolist(),
        "histogram_edges": edges.tolist(),
        "paper": {"mean_abs_error_pct": 7.5},
    }
    benchmark.extra_info.update(
        {k: payload[k] for k in ("mean_abs_error_pct", "bias_pct", "fraction_within_5pct")}
    )
    write_results("fig08_error_hist_configs", payload)
    benchmark(lambda: float(np.mean(np.abs(errors))))
