"""Ablations on the surrogate-model design choices.

* Ensemble size / pruning: the paper picked 20 nets pruned to 14
  ("going beyond 20 neural nets again gives diminishing improvements").
* Interpretable models: §3.7.2 tried a single-variable decision tree
  ("woefully inadequate") and a linear-combination tree (better, less
  interpretable) before settling on the DNN.
"""

import numpy as np

from benchmarks.conftest import write_results
from repro.config import CASSANDRA_KEY_PARAMETERS
from repro.core.surrogate import SurrogateModel
from repro.ml.decision_tree import DecisionTreeRegressor, ModelTreeRegressor
from repro.ml.ensemble import EnsembleConfig
from repro.ml.metrics import mean_absolute_percentage_error

TRIALS = 3


def ensemble_error(space, dataset, n_networks, prune, trials=TRIALS):
    errs = []
    for trial in range(trials):
        rng = np.random.default_rng(900 + trial)
        train, test = dataset.split_by_configuration(0.25, rng)
        model = SurrogateModel(
            space,
            CASSANDRA_KEY_PARAMETERS,
            EnsembleConfig(n_networks=n_networks, prune_fraction=prune),
        ).fit(train, seed=trial)
        errs.append(
            mean_absolute_percentage_error(test.targets(), model.predict_dataset(test))
        )
    return float(np.mean(errs))


def tree_error(dataset, model_factory, trials=TRIALS):
    """(holdout MAPE, training MAPE) averaged over trials."""
    errs, fit_errs = [], []
    for trial in range(trials):
        rng = np.random.default_rng(900 + trial)
        train, test = dataset.split_by_configuration(0.25, rng)
        tree = model_factory().fit(train.features(), train.targets())
        errs.append(
            mean_absolute_percentage_error(test.targets(), tree.predict(test.features()))
        )
        fit_errs.append(
            mean_absolute_percentage_error(
                train.targets(), tree.predict(train.features())
            )
        )
    return float(np.mean(errs)), float(np.mean(fit_errs))


def test_ablation_ensemble_size(cassandra, cassandra_dataset, benchmark):
    sizes = {n: ensemble_error(cassandra.space, cassandra_dataset, n, 0.30)
             for n in (1, 5, 20)}

    # More nets help; the big jump is from 1 to a handful.
    assert sizes[20] < sizes[1]
    assert sizes[5] < sizes[1]
    # Diminishing returns: 5 -> 20 improves less than 1 -> 5.
    assert (sizes[5] - sizes[20]) < (sizes[1] - sizes[5]) + 1.0

    payload = {"error_by_ensemble_size": {str(k): v for k, v in sizes.items()}}
    benchmark.extra_info.update(payload["error_by_ensemble_size"])
    write_results("ablation_ensemble_size", payload)
    benchmark(lambda: sizes[20])


def test_ablation_pruning(cassandra, cassandra_dataset, benchmark):
    pruned = ensemble_error(cassandra.space, cassandra_dataset, 10, 0.30)
    unpruned = ensemble_error(cassandra.space, cassandra_dataset, 10, 0.0)

    # Pruning the worst 30% should not hurt, and typically helps by
    # dropping badly initialized members.
    assert pruned < unpruned + 1.5

    payload = {"pruned_error": pruned, "unpruned_error": unpruned}
    benchmark.extra_info.update(payload)
    write_results("ablation_pruning", payload)
    benchmark(lambda: pruned)


def test_ablation_decision_tree(cassandra, cassandra_dataset, benchmark):
    dnn = ensemble_error(cassandra.space, cassandra_dataset, 8, 0.30)
    plain_holdout, plain_fit = tree_error(
        cassandra_dataset, lambda: DecisionTreeRegressor(max_depth=6)
    )
    model_holdout, model_fit = tree_error(
        cassandra_dataset, lambda: ModelTreeRegressor(max_depth=4)
    )

    # §3.7.2's within-tree progression is about *expressivity* — "when
    # each node was allowed to have a linear combination of the
    # parameters, the performance improved": the model tree fits the
    # response surface better than single-variable splits.
    assert model_fit < plain_fit
    # All three are usable surrogates on this substrate.  Divergence
    # note: the paper found the plain tree "woefully inadequate" on its
    # testbed; our resource-ceiling response surface is friendlier to
    # axis-aligned splits, so the plain tree generalizes near the DNN
    # here (recorded, see EXPERIMENTS.md).
    assert dnn < 2.0 * plain_holdout
    assert max(dnn, model_holdout, plain_holdout) < 25.0

    payload = {
        "dnn_ensemble_error": dnn,
        "single_variable_tree_holdout_error": plain_holdout,
        "single_variable_tree_fit_error": plain_fit,
        "linear_combination_tree_holdout_error": model_holdout,
        "linear_combination_tree_fit_error": model_fit,
    }
    benchmark.extra_info.update(payload)
    write_results("ablation_decision_tree", payload)
    benchmark(lambda: dnn)
