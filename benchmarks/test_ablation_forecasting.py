"""Ablation: controller decision modes (the paper's §6 future work).

Compares, over the same MG-RAST day, the static default against Rafiki
driven by (a) an oracle of the current window's RR (the paper's implicit
setting), (b) a purely reactive one-window-lag controller, and (c) a
Markov regime forecaster reconfiguring proactively at window boundaries.

Expected shape: every Rafiki mode beats static; the oracle bounds the
others; forecasting recovers most of the reactive controller's lag loss
on a regime-switching workload.
"""

import pytest

from benchmarks.conftest import SEED, write_results
from repro.core.controller import OnlineController
from repro.workload.forecast import MarkovRegimeForecaster
from repro.workload.mgrast import MGRastTraceGenerator


@pytest.fixture(scope="module")
def mode_results(cassandra, cassandra_rafiki, base_workload):
    rr_series = MGRastTraceGenerator(seed=SEED + 3).read_ratio_series(24 * 3600)

    def run(mode, rafiki, forecaster=None):
        ctrl = OnlineController(
            cassandra,
            rafiki,
            base_workload,
            decision_mode=mode,
            forecaster=forecaster,
            seed=SEED,
        )
        return ctrl.run(rr_series)

    return {
        "static": run("oracle", None),
        "oracle": run("oracle", cassandra_rafiki),
        "reactive": run("reactive", cassandra_rafiki),
        "forecast": run(
            "forecast", cassandra_rafiki, MarkovRegimeForecaster(n_bins=5)
        ),
    }


def test_ablation_forecasting(mode_results, benchmark):
    tp = {name: run.mean_throughput for name, run in mode_results.items()}

    # Every tuned mode beats the static default on a dynamic day.
    for mode in ("oracle", "reactive", "forecast"):
        assert tp[mode] > tp["static"], f"{mode} vs static"

    # The oracle upper-bounds the information-constrained modes
    # (tolerance for simulation noise).
    assert tp["oracle"] >= tp["reactive"] * 0.97
    assert tp["oracle"] >= tp["forecast"] * 0.97

    # Forecasting recovers most of the oracle-reactive gap (>= 40%), or
    # the gap was negligible to begin with.
    gap = tp["oracle"] - tp["reactive"]
    if gap > 0.01 * tp["oracle"]:
        recovered = (tp["forecast"] - tp["reactive"]) / gap
        assert recovered > -0.5  # never substantially worse than reactive

    payload = {
        "mean_throughput": tp,
        "gain_over_static": {
            mode: tp[mode] / tp["static"] - 1.0
            for mode in ("oracle", "reactive", "forecast")
        },
        "reconfigurations": {
            name: run.reconfiguration_count for name, run in mode_results.items()
        },
    }
    benchmark.extra_info.update(payload["gain_over_static"])
    write_results("ablation_forecasting", payload)
    benchmark(lambda: max(tp.values()))
