"""Figure 10: throughput over time for Cassandra vs ScyllaDB at a 70%
read workload, sampled every 10 seconds.

Paper: "even in an otherwise stationary system, without any change to
the workload or to the configuration parameters, the throughput of
ScyllaDB varies significantly" — up to ~60% for ~40 seconds — while
Cassandra stays stable, which is why Cassandra predictions are more
accurate.
"""

import numpy as np
import pytest

from benchmarks.conftest import SEED, write_results
from repro.bench.ycsb import YCSBBenchmark
from repro.workload.spec import mgrast_workload


@pytest.fixture(scope="module")
def throughput_series(cassandra, scylla):
    wl = mgrast_workload(0.7)
    series = {}
    for store, label in ((cassandra, "cassandra"), (scylla, "scylladb")):
        bench = YCSBBenchmark(store, run_seconds=600)
        result = bench.run(store.default_configuration(), wl, seed=SEED + 5)
        series[label] = [s.ops_per_second for s in result.series]
    return series


def test_fig10_scylla_oscillates_cassandra_stable(throughput_series, benchmark):
    # Skip the warm-up ramp: Figure 10 shows steady-state behaviour.
    cass = np.array(throughput_series["cassandra"][12:])
    scyl = np.array(throughput_series["scylladb"][12:])

    cass_cov = float(np.std(cass) / np.mean(cass))
    scyl_cov = float(np.std(scyl) / np.mean(scyl))
    scyl_swing = float((scyl.max() - scyl.min()) / np.mean(scyl))

    assert scyl_cov > 1.5 * cass_cov, (
        f"ScyllaDB (cov {scyl_cov:.3f}) should fluctuate far more than "
        f"Cassandra (cov {cass_cov:.3f})"
    )
    assert cass_cov < 0.08, "Cassandra holds a stable throughput"
    assert scyl_swing > 0.3, "ScyllaDB shows large swings (paper: ~60%)"

    payload = {
        "cassandra_series": throughput_series["cassandra"],
        "scylladb_series": throughput_series["scylladb"],
        "cassandra_cov": cass_cov,
        "scylladb_cov": scyl_cov,
        "scylladb_peak_swing": scyl_swing,
        "paper": {"scylla_swing": 0.60, "swing_duration_s": 40},
    }
    benchmark.extra_info.update(
        {k: payload[k] for k in ("cassandra_cov", "scylladb_cov", "scylladb_peak_swing")}
    )
    write_results("fig10_scylla_variance", payload)
    benchmark(lambda: float(np.std(scyl)))
