"""Table 1: Cassandra maximum, minimum, and default throughput as the
key configuration parameters vary.

Paper (ops/s):
    RR=90%:  max 78,556   default 53,461   min 38,785  (max +102.5% over min)
    RR=50%:  max 89,981   default 63,662   min 53,372  (max +68.5%)
    RR=10%:  max 102,259  default 88,771   min 78,221  (max +30.7%)

Shape claims: max > default > min at every workload, and the spread
*widens* as the workload becomes more read-heavy (the default file is
write-leaning, so read-heavy workloads leave the most on the table).
"""

import collections

import pytest

from benchmarks.conftest import write_results

PAPER = {
    0.9: {"max": 78_556, "default": 53_461, "min": 38_785},
    0.5: {"max": 89_981, "default": 63_662, "min": 53_372},
    0.1: {"max": 102_259, "default": 88_771, "min": 78_221},
}


@pytest.fixture(scope="module")
def extremes(cassandra, cassandra_dataset, measure):
    by_rr = collections.defaultdict(list)
    for sample in cassandra_dataset:
        by_rr[round(sample.workload.read_ratio, 2)].append(sample.throughput)
    rows = {}
    for rr in (0.9, 0.5, 0.1):
        values = by_rr[rr]
        rows[rr] = {
            "max": float(max(values)),
            "min": float(min(values)),
            "default": measure(cassandra.default_configuration(), rr),
        }
    return rows


def test_table1_throughput_extremes(extremes, benchmark):
    for rr, row in extremes.items():
        assert row["min"] < row["default"] < row["max"], f"ordering at RR={rr}"

    spread = {rr: row["max"] / row["min"] - 1.0 for rr, row in extremes.items()}
    # The headline: >= ~2x best-to-worst at read-heavy (paper 102.5%)...
    assert spread[0.9] > 0.5
    # ...narrowing toward write-heavy workloads (paper 30.7%).
    assert spread[0.9] > spread[0.1]

    # Default sits much closer to min at read-heavy than at write-heavy
    # (the default file is tuned for writes).
    default_margin = {
        rr: (row["default"] - row["min"]) / (row["max"] - row["min"])
        for rr, row in extremes.items()
    }
    assert default_margin[0.1] > default_margin[0.9]

    payload = {
        "measured": {str(rr): row for rr, row in extremes.items()},
        "measured_spread_over_min": {str(rr): spread[rr] for rr in spread},
        "paper": {str(rr): row for rr, row in PAPER.items()},
        "paper_spread_over_min": {"0.9": 1.025, "0.5": 0.685, "0.1": 0.307},
    }
    benchmark.extra_info["spread_rr90"] = spread[0.9]
    benchmark.extra_info["spread_rr10"] = spread[0.1]
    write_results("table1_throughput_extremes", payload)
    benchmark(lambda: max(extremes[0.9].values()))
