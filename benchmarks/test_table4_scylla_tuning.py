"""Table 4: ScyllaDB — Rafiki-selected configurations vs grid search.

Paper:
                         WL1 (R=70%)          WL2 (R=100%)
    technique         Rafiki    Grid       Rafiki    Grid
    avg throughput    69,411   75,351      66,503   63,595
    gain over default  12.3%    21.8%        9.0%     4.6%

Shape claims: Rafiki improves over ScyllaDB's default despite the
internal auto-tuner, the gains are *much smaller* than Cassandra's
(~9-12% vs ~41%), and Rafiki lands in the same band as a grid search.
"""

import numpy as np
import pytest

from benchmarks.conftest import SEED, write_results
from repro.bench.ycsb import YCSBBenchmark
from repro.config import SCYLLA_KEY_PARAMETERS
from repro.core.search import ExhaustiveSearch
from repro.workload.spec import mgrast_workload

RATIOS = (0.7, 1.0)
#: Averaged over several runs: ScyllaDB's tuner-induced variance makes a
#: single 5-minute window unreliable (Figure 10).
REPEATS = 3


def scylla_measure(scylla, config, rr, seed_base):
    bench = YCSBBenchmark(scylla)
    wl = mgrast_workload(rr)
    return float(
        np.mean(
            [
                bench.run(config, wl, seed=seed_base + i).mean_throughput
                for i in range(REPEATS)
            ]
        )
    )


@pytest.fixture(scope="module")
def table4(scylla, scylla_rafiki):
    rows = {}
    default_cfg = scylla.default_configuration()
    for rr in RATIOS:
        tuned = scylla_rafiki.recommend(rr).configuration
        grid = ExhaustiveSearch(
            scylla,
            SCYLLA_KEY_PARAMETERS,
            resolution=3,
            benchmark=YCSBBenchmark(scylla),
            max_configs=40,
        ).optimize(mgrast_workload(rr), seed=SEED)
        rows[rr] = {
            "default": scylla_measure(scylla, default_cfg, rr, SEED + 11),
            "rafiki": scylla_measure(scylla, tuned, rr, SEED + 11),
            "grid": scylla_measure(scylla, grid.configuration, rr, SEED + 11),
        }
    return rows


def test_table4_scylla_tuning(table4, cassandra_results_for_contrast, benchmark):
    gains = {
        rr: {
            "rafiki": row["rafiki"] / row["default"] - 1.0,
            "grid": row["grid"] / row["default"] - 1.0,
        }
        for rr, row in table4.items()
    }

    # Rafiki improves over the default despite the auto-tuner; the
    # tuner's own oscillation (Figure 10) leaves a few percent of noise
    # on any single workload's comparison.
    assert gains[0.7]["rafiki"] > 0.0
    assert gains[1.0]["rafiki"] > -0.05
    assert (gains[0.7]["rafiki"] + gains[1.0]["rafiki"]) / 2 > 0.0

    # Gains are modest (auto-tuner already near-optimal): well under the
    # Cassandra read-heavy gains.
    assert gains[0.7]["rafiki"] < cassandra_results_for_contrast
    # Rafiki is in the same band as the grid search (paper: both modest).
    assert abs(gains[0.7]["rafiki"] - gains[0.7]["grid"]) < 0.25

    payload = {
        "measured": {str(rr): row for rr, row in table4.items()},
        "measured_gains": {str(rr): g for rr, g in gains.items()},
        "paper": {
            "0.7": {"rafiki_gain": 0.1229, "grid_gain": 0.218},
            "1.0": {"rafiki_gain": 0.09, "grid_gain": 0.0457},
        },
    }
    benchmark.extra_info.update(
        {
            "scylla_rafiki_gain_rr70": gains[0.7]["rafiki"],
            "scylla_rafiki_gain_rr100": gains[1.0]["rafiki"],
        }
    )
    write_results("table4_scylla_tuning", payload)
    benchmark(lambda: gains[0.7]["rafiki"])


@pytest.fixture(scope="module")
def cassandra_results_for_contrast(cassandra, cassandra_rafiki, measure):
    """Cassandra read-heavy gain, for the Scylla-is-harder contrast."""
    tuned = cassandra_rafiki.recommend(0.9).configuration
    default = cassandra.default_configuration()
    return measure(tuned, 0.9) / measure(default, 0.9) - 1.0
