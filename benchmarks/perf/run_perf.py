"""Search-stack microbenchmarks: the §4.8 speed claim as a perf gate.

Measures the three hot paths the batched evaluation stack optimizes —
ensemble queries (rows/sec by batch size), a full GA search
(:class:`ConfigurationOptimizer`, batched vs the scalar reference), and
the end-to-end ``Rafiki.recommend`` latency — and writes a
``BENCH_search.json`` the next PR can diff against.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py                # full budget
    PYTHONPATH=src python benchmarks/perf/run_perf.py --budget tiny  # CI smoke
    PYTHONPATH=src python benchmarks/perf/run_perf.py --budget tiny \
        --out /tmp/fresh.json --check benchmarks/perf/BENCH_search.json

``--check`` compares the *dimensionless* metrics (the batched/scalar
speedup ratios) of a fresh run against a baseline file and exits
non-zero only on a gross regression (default tolerance 5x), so the CI
job stays flake-free across heterogeneous runners; wall-clock numbers
are recorded for trend-watching but never gated on.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.bench.dataset import PerformanceDataset, PerformanceSample
from repro.config import CASSANDRA_KEY_PARAMETERS, cassandra_space
from repro.core.rafiki import Rafiki
from repro.core.search import ConfigurationOptimizer
from repro.core.surrogate import SurrogateModel
from repro.datastore import CassandraLike
from repro.ml.ensemble import EnsembleConfig
from repro.workload.spec import WorkloadSpec

PARAMS = list(CASSANDRA_KEY_PARAMETERS)

#: Budget knobs: (n_configs, ensemble_config, population, generations, repeats).
BUDGETS = {
    # Paper-scale: 20-net ensemble pruned to 14, default GA budget
    # (~3,400 evaluations) — the configuration the §4.8 claim is about.
    "default": dict(
        n_configs=25,
        ensemble=EnsembleConfig(),
        population=48,
        generations=70,
        repeats=3,
        batch_sizes=(1, 48, 512, 3400),
    ),
    # CI smoke: small ensemble, short search; ratios stay meaningful,
    # wall time stays in seconds.
    "tiny": dict(
        n_configs=12,
        ensemble=EnsembleConfig(n_networks=6, max_epochs=40),
        population=16,
        generations=10,
        repeats=2,
        batch_sizes=(1, 16, 256),
    ),
}


def build_surrogate(budget: dict) -> SurrogateModel:
    """Train on a synthetic surface — benchmark the search, not the sim."""
    space = cassandra_space()
    rng = np.random.default_rng(2017)
    samples = []
    for _ in range(budget["n_configs"]):
        config = space.sample_configuration(rng, PARAMS)
        vec = config.to_vector(PARAMS)
        for rr in np.linspace(0.0, 1.0, 5):
            target = (
                60_000
                + 30_000 * vec[2]
                - 20_000 * (vec[1] - 0.5) ** 2
                + 5_000 * rr
            )
            samples.append(
                PerformanceSample(
                    workload=WorkloadSpec(read_ratio=float(rr)),
                    configuration=config,
                    throughput=float(target),
                )
            )
    model = SurrogateModel(space, PARAMS, budget["ensemble"])
    return model.fit(PerformanceDataset(samples, PARAMS), seed=7)


def timed(fn, repeats: int) -> float:
    """Best-of-N wall seconds (min is the stablest location estimate)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_ensemble_rows(surrogate: SurrogateModel, budget: dict) -> dict:
    rng = np.random.default_rng(0)
    out = {}
    for n in budget["batch_sizes"]:
        rows = rng.uniform(0.0, 1.0, size=(n, len(PARAMS) + 1))
        reps = max(3, 2000 // n)
        dt = timed(lambda: surrogate.predict_mean_std(rows), reps)
        out[str(n)] = {
            "rows_per_sec": n / dt,
            "us_per_row": 1e6 * dt / n,
        }
    return out


def bench_ga_search(surrogate: SurrogateModel, budget: dict) -> dict:
    common = dict(
        population_size=budget["population"],
        generations=budget["generations"],
        uncertainty_penalty=0.5,
    )
    fast = ConfigurationOptimizer(surrogate, batched=True, **common)
    ref = ConfigurationOptimizer(surrogate, batched=False, **common)
    t_fast = timed(lambda: fast.optimize(0.6, seed=11), budget["repeats"])
    t_ref = timed(lambda: ref.optimize(0.6, seed=11), budget["repeats"])
    result = fast.optimize(0.6, seed=11)
    return {
        "population": budget["population"],
        "generations": budget["generations"],
        "uncertainty_penalty": 0.5,
        "evaluations": result.evaluations,
        "batched_seconds": t_fast,
        "scalar_seconds": t_ref,
        "speedup_batched_vs_scalar": t_ref / t_fast,
        "batched_us_per_evaluation": 1e6 * t_fast / result.evaluations,
    }


def bench_recommend(surrogate: SurrogateModel, budget: dict) -> dict:
    rafiki = Rafiki(CassandraLike(), surrogate, PARAMS, seed=0)
    rafiki.optimizer.population_size = budget["population"]
    rafiki.optimizer.generations = budget["generations"]

    def run():
        rafiki.cache.clear()
        rafiki.recommend(0.72)

    cold = timed(run, budget["repeats"])
    rafiki.recommend(0.72)
    warm = timed(lambda: rafiki.recommend(0.72), 10)
    return {
        "cold_seconds": cold,
        "cached_seconds": warm,
    }


def run_suite(budget_name: str) -> dict:
    budget = BUDGETS[budget_name]
    surrogate = build_surrogate(budget)
    return {
        "meta": {
            "budget": budget_name,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "unix_time": time.time(),
        },
        "ensemble_query": bench_ensemble_rows(surrogate, budget),
        "ga_search": bench_ga_search(surrogate, budget),
        "recommend": bench_recommend(surrogate, budget),
    }


#: Dimensionless metrics gated by --check: (path into the payload, floor).
#: A fresh value may be up to `tolerance` times worse than baseline; the
#: absolute floor catches a batched path that stopped being faster at all.
GATED_METRICS = [
    (("ga_search", "speedup_batched_vs_scalar"), 1.0),
]


def check_against(fresh: dict, baseline_path: Path, tolerance: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for path, floor in GATED_METRICS:
        f, b = fresh, baseline
        for key in path:
            f = f[key]
            b = b[key]
        name = ".".join(path)
        if f < floor:
            failures.append(f"{name}: {f:.2f} below hard floor {floor:.2f}")
        elif f * tolerance < b:
            failures.append(
                f"{name}: {f:.2f} is >{tolerance:.0f}x worse than baseline {b:.2f}"
            )
        else:
            print(f"ok: {name} = {f:.2f} (baseline {b:.2f})")
    for msg in failures:
        print(f"PERF REGRESSION: {msg}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", choices=sorted(BUDGETS), default="default")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "BENCH_search.json",
        help="where to write the JSON payload",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help="baseline BENCH_search.json to gate dimensionless metrics against",
    )
    parser.add_argument("--tolerance", type=float, default=5.0)
    args = parser.parse_args(argv)

    payload = run_suite(args.budget)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2, default=float) + "\n")

    ga = payload["ga_search"]
    print(
        f"GA search ({ga['evaluations']} evals): "
        f"batched {ga['batched_seconds']:.3f}s vs scalar {ga['scalar_seconds']:.3f}s "
        f"-> {ga['speedup_batched_vs_scalar']:.1f}x, "
        f"{ga['batched_us_per_evaluation']:.1f} us/eval"
    )
    print(f"wrote {args.out}")

    if args.check is not None:
        return check_against(payload, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
