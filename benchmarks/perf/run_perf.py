"""Search-stack and serve-stack microbenchmarks as perf gates.

Two scenarios:

* ``--scenario search`` (default) — the §4.8 speed claim: ensemble
  queries (rows/sec by batch size), a full GA search
  (:class:`ConfigurationOptimizer`, batched vs the scalar reference),
  and the end-to-end ``Rafiki.recommend`` latency.  Writes
  ``BENCH_search.json`` next to this script.
* ``--scenario serve-scale`` — the vectorized op-stream hot path
  (:meth:`YCSBBenchmark.run_engine` batched vs scalar against the
  materialized LSM engine), the sharded multi-tenant serve loop
  (:class:`MiddlewareScheduler` with a *persistent* process-pool
  backend vs the serial reference, including a bitwise
  result-equivalence check and the pool-reuse counters), and the
  content-addressed state-shipping protocol (a steady-state campaign
  whose per-round payload must collapse to O(1) fingerprint bytes once
  the blob has been broadcast — see
  :mod:`repro.runtime.stateship`).  Writes ``BENCH_serve.json`` at the
  repo root.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py                # full budget
    PYTHONPATH=src python benchmarks/perf/run_perf.py --budget tiny  # CI smoke
    PYTHONPATH=src python benchmarks/perf/run_perf.py --budget tiny \
        --out /tmp/fresh.json --check benchmarks/perf/BENCH_search.json
    PYTHONPATH=src python benchmarks/perf/run_perf.py \
        --scenario serve-scale --budget tiny \
        --out /tmp/serve.json --check BENCH_serve.json

``--check`` compares the *dimensionless* metrics (the batched/scalar
and sharded/serial speedup ratios, plus the serve result-equivalence
bit) of a fresh run against a baseline file and exits non-zero only on
a gross regression (default tolerance 5x), so the CI job stays
flake-free across heterogeneous runners; wall-clock numbers are
recorded for trend-watching but never gated on.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import sys
import time
from pathlib import Path

import numpy as np

from repro.bench.dataset import PerformanceDataset, PerformanceSample
from repro.bench.ycsb import YCSBBenchmark
from repro.config import CASSANDRA_KEY_PARAMETERS, cassandra_space
from repro.core.policies import OraclePolicy
from repro.core.rafiki import Rafiki
from repro.core.search import ConfigurationOptimizer
from repro.core.surrogate import SurrogateModel
from repro.datastore import CassandraLike
from repro.middleware import MiddlewareScheduler, TenantSpec
from repro.ml.ensemble import EnsembleConfig
from repro.runtime import EventBus
from repro.runtime.backend import ProcessPoolBackend
from repro.workload.spec import WorkloadSpec

PARAMS = list(CASSANDRA_KEY_PARAMETERS)

#: Budget knobs: (n_configs, ensemble_config, population, generations, repeats).
BUDGETS = {
    # Paper-scale: 20-net ensemble pruned to 14, default GA budget
    # (~3,400 evaluations) — the configuration the §4.8 claim is about.
    "default": dict(
        n_configs=25,
        ensemble=EnsembleConfig(),
        population=48,
        generations=70,
        repeats=3,
        batch_sizes=(1, 48, 512, 3400),
        # serve-scale: op-stream scale + tenant fan-out.  The op-stream
        # shape is the locked MG-RAST-like scenario the >=5x claim is
        # pinned on; the serve shape is 8 tenants over 4 workers.  The
        # serve searches carry their own GA budget: every window hits a
        # fresh regime, so per-window search cost is what the sharding
        # amortizes.
        op_stream=dict(n_keys=100_000, load_keys=100_000, n_ops=30_000),
        serve=dict(tenants=8, windows=6, workers=4, population=48, generations=70),
        # state-ship: constant per-tenant regimes, so every round after
        # the cache warms is pure steady state — the payload column the
        # >=10x reduction claim is pinned on.
        state_ship=dict(
            tenants=6, windows=8, workers=4, population=48, generations=70
        ),
    ),
    # CI smoke: small ensemble, short search; ratios stay meaningful,
    # wall time stays in seconds.
    "tiny": dict(
        n_configs=12,
        ensemble=EnsembleConfig(n_networks=6, max_epochs=40),
        population=16,
        generations=10,
        repeats=2,
        batch_sizes=(1, 16, 256),
        op_stream=dict(n_keys=20_000, load_keys=8_000, n_ops=4_000),
        # Deliberately meatier searches than the GA smoke above: a
        # too-cheap search would measure process-pool overhead, not the
        # serve fan-out.
        serve=dict(tenants=4, windows=3, workers=2, population=64, generations=300),
        state_ship=dict(
            tenants=4, windows=6, workers=2, population=16, generations=10
        ),
    ),
}


def build_surrogate(budget: dict) -> SurrogateModel:
    """Train on a synthetic surface — benchmark the search, not the sim."""
    space = cassandra_space()
    rng = np.random.default_rng(2017)
    samples = []
    for _ in range(budget["n_configs"]):
        config = space.sample_configuration(rng, PARAMS)
        vec = config.to_vector(PARAMS)
        for rr in np.linspace(0.0, 1.0, 5):
            target = (
                60_000
                + 30_000 * vec[2]
                - 20_000 * (vec[1] - 0.5) ** 2
                + 5_000 * rr
            )
            samples.append(
                PerformanceSample(
                    workload=WorkloadSpec(read_ratio=float(rr)),
                    configuration=config,
                    throughput=float(target),
                )
            )
    model = SurrogateModel(space, PARAMS, budget["ensemble"])
    return model.fit(PerformanceDataset(samples, PARAMS), seed=7)


def timed(fn, repeats: int) -> float:
    """Best-of-N wall seconds (min is the stablest location estimate)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_ensemble_rows(surrogate: SurrogateModel, budget: dict) -> dict:
    rng = np.random.default_rng(0)
    out = {}
    for n in budget["batch_sizes"]:
        rows = rng.uniform(0.0, 1.0, size=(n, len(PARAMS) + 1))
        reps = max(3, 2000 // n)
        dt = timed(lambda: surrogate.predict_mean_std(rows), reps)
        out[str(n)] = {
            "rows_per_sec": n / dt,
            "us_per_row": 1e6 * dt / n,
        }
    return out


def bench_ga_search(surrogate: SurrogateModel, budget: dict) -> dict:
    common = dict(
        population_size=budget["population"],
        generations=budget["generations"],
        uncertainty_penalty=0.5,
    )
    fast = ConfigurationOptimizer(surrogate, batched=True, **common)
    ref = ConfigurationOptimizer(surrogate, batched=False, **common)
    t_fast = timed(lambda: fast.optimize(0.6, seed=11), budget["repeats"])
    t_ref = timed(lambda: ref.optimize(0.6, seed=11), budget["repeats"])
    result = fast.optimize(0.6, seed=11)
    return {
        "population": budget["population"],
        "generations": budget["generations"],
        "uncertainty_penalty": 0.5,
        "evaluations": result.evaluations,
        "batched_seconds": t_fast,
        "scalar_seconds": t_ref,
        "speedup_batched_vs_scalar": t_ref / t_fast,
        "batched_us_per_evaluation": 1e6 * t_fast / result.evaluations,
    }


def bench_recommend(surrogate: SurrogateModel, budget: dict) -> dict:
    rafiki = Rafiki(CassandraLike(), surrogate, PARAMS, seed=0)
    rafiki.optimizer.population_size = budget["population"]
    rafiki.optimizer.generations = budget["generations"]

    def run():
        rafiki.cache.clear()
        rafiki.recommend(0.72)

    cold = timed(run, budget["repeats"])
    rafiki.recommend(0.72)
    warm = timed(lambda: rafiki.recommend(0.72), 10)
    return {
        "cold_seconds": cold,
        "cached_seconds": warm,
    }


def bench_op_stream(budget: dict) -> dict:
    """Batched vs scalar op-stream execution on the materialized engine.

    The locked scenario: a read-heavy MG-RAST-like workload against the
    default Cassandra configuration, same seed both ways — the engine
    paths are bit-identical, so only wall time differs.
    """
    shape = budget["op_stream"]
    workload = WorkloadSpec(
        name="mgrast",
        n_keys=shape["n_keys"],
        read_ratio=0.95,
        value_bytes=1000,
        update_fraction=0.5,
        delete_fraction=0.0,
        krd_mean_ops=5000,
    )
    datastore = CassandraLike()
    config = datastore.default_configuration()
    bench = YCSBBenchmark(datastore)

    def run(batched):
        return bench.run_engine(
            config,
            workload,
            n_ops=shape["n_ops"],
            load_keys=shape["load_keys"],
            seed=7,
            batched=batched,
        )

    t_scalar = timed(lambda: run(False), budget["repeats"])
    t_batched = timed(lambda: run(True), budget["repeats"])
    return {
        **shape,
        "scalar_seconds": t_scalar,
        "batched_seconds": t_batched,
        "speedup_batched_vs_scalar": t_scalar / t_batched,
        "batched_ops_per_wall_second": shape["n_ops"] / t_batched,
    }


def _serve_rr_series(tenants: int, windows: int) -> list:
    """Distinct read-ratio per (tenant, window): every window searches.

    Values are spread over [0.05, 0.95] with spacing wider than the
    0.01 cache resolution, so no two windows share a quantized regime
    and the serial/sharded comparison measures search fan-out, not
    cache luck.
    """
    total = tenants * windows
    grid = [0.05 + 0.90 * i / (total - 1) for i in range(total)]
    return [grid[t * windows : (t + 1) * windows] for t in range(tenants)]


def _run_serve_campaign(surrogate: SurrogateModel, budget: dict, backend) -> tuple:
    """One full multi-tenant campaign; returns (results summary, events)."""
    shape = budget["serve"]
    rafiki = Rafiki(
        CassandraLike(), surrogate, PARAMS, seed=0, rr_cache_resolution=0.01
    )
    rafiki.optimizer.population_size = shape["population"]
    rafiki.optimizer.generations = shape["generations"]
    events = EventBus()
    log = []
    events.subscribe(log.append)
    scheduler = MiddlewareScheduler(
        CassandraLike(), rafiki, events=events, backend=backend
    )
    series = _serve_rr_series(shape["tenants"], shape["windows"])
    workload = WorkloadSpec(read_ratio=0.5, n_keys=100_000)
    for t in range(shape["tenants"]):
        scheduler.add_tenant(
            TenantSpec(
                tenant_id=f"t{t}",
                rr_series=series[t],
                base_workload=workload,
                seed=t,
                window_seconds=30,
                load=False,
                policy=OraclePolicy(),
            )
        )
    results = scheduler.run()
    summary = {
        tid: [
            (
                e.window_index,
                e.read_ratio,
                e.reconfigured,
                e.mean_throughput,
                e.rolled_back,
                e.degraded,
                str(e.configuration),
            )
            for e in r.events
        ]
        for tid, r in results.items()
    }
    # backend.state_* topics are exempt from the serial == sharded
    # event-sequence contract (blob placement depends on OS worker
    # scheduling), exactly as in tests/test_sharded_scheduler.py.
    log_view = [
        (e.topic, e.message)
        for e in log
        if not e.topic.startswith("backend.state")
    ]
    return summary, log_view, scheduler


def _children_cpu_seconds() -> float:
    """CPU seconds burned by *reaped* child processes so far."""
    ru = resource.getrusage(resource.RUSAGE_CHILDREN)
    return ru.ru_utime + ru.ru_stime


def bench_serve_scale(surrogate: SurrogateModel, budget: dict) -> dict:
    """Sharded serve loop vs the serial reference, plus equivalence.

    Two speedup figures are recorded.  ``speedup_sharded_vs_serial``
    compares wall clocks directly — on a host with at least as many
    cores as workers it is the real speedup, but on a starved host the
    workers time-slice one another and the ratio degenerates below 1
    regardless of how good the sharding is.  To keep the trajectory
    meaningful everywhere, ``speedup_sharded_vs_serial_projected``
    applies the critical-path law to *CPU-time* measurements, which
    contention cannot inflate: serial parent CPU seconds over (total
    worker CPU seconds / workers + sharded parent CPU seconds).  The
    two converge on an idle multi-core host.
    """
    shape = budget["serve"]

    t0, c0 = time.perf_counter(), time.process_time()
    serial_summary, serial_log, _ = _run_serve_campaign(surrogate, budget, None)
    t_serial = time.perf_counter() - t0
    cpu_serial = time.process_time() - c0

    # getrusage(RUSAGE_CHILDREN) only sees *terminated* children, so the
    # worker-CPU window must bracket the pool's whole life.
    children_cpu0 = _children_cpu_seconds()
    backend = ProcessPoolBackend(workers=shape["workers"])
    # Spawn the worker processes before the clock starts: a long-lived
    # serve deployment pays that cost once, not per campaign.
    backend.warm()
    t0, c0 = time.perf_counter(), time.process_time()
    sharded_summary, sharded_log, scheduler = _run_serve_campaign(
        surrogate, budget, backend
    )
    t_sharded = time.perf_counter() - t0
    cpu_parent_sharded = time.process_time() - c0
    backend.close()
    cpu_workers = _children_cpu_seconds() - children_cpu0

    projected_wall = cpu_workers / shape["workers"] + cpu_parent_sharded
    return {
        **shape,
        "cpu_count": os.cpu_count(),
        "serial_seconds": t_serial,
        "sharded_seconds": t_sharded,
        "speedup_sharded_vs_serial": t_serial / t_sharded,
        "serial_cpu_seconds": cpu_serial,
        "sharded_worker_cpu_seconds": cpu_workers,
        "sharded_parent_cpu_seconds": cpu_parent_sharded,
        "speedup_sharded_vs_serial_projected": cpu_serial / projected_wall,
        # Pool lifecycle: one persistent pool must serve every round.
        "pool_reuse": {
            "persistent": backend.persistent,
            "pools_created": backend.pools_created,
            "map_calls": backend.map_calls,
        },
        # Worst case for the shipper — every window is a fresh regime,
        # so the cache (and therefore the fingerprint) changes every
        # round; the steady-state win is measured by
        # :func:`bench_state_shipping` below.
        "state_shipping": scheduler.state_report(),
        # Bitwise serve equivalence: per-tenant window records and the
        # full event log must match the serial reference exactly.
        "identical_results": bool(
            serial_summary == sharded_summary and serial_log == sharded_log
        ),
    }


def _run_state_campaign(
    surrogate: SurrogateModel, shape: dict, backend, round_payloads=None
) -> tuple:
    """A steady-state serve: each tenant re-enters one fixed regime.

    After round 0 (searches fill the cache) and round 1 (the grown
    cache re-fingerprints once), every round's payload is fingerprints
    only.  ``round_payloads``, when given, receives the *measured*
    shipped bytes per window round, sampled off the shipper counters at
    every ``scheduler.window`` event.
    """
    rafiki = Rafiki(
        CassandraLike(), surrogate, PARAMS, seed=0, rr_cache_resolution=0.01
    )
    rafiki.optimizer.population_size = shape["population"]
    rafiki.optimizer.generations = shape["generations"]
    events = EventBus()
    log = []
    events.subscribe(log.append)
    scheduler = MiddlewareScheduler(
        CassandraLike(), rafiki, events=events, backend=backend
    )
    if round_payloads is not None:
        def sample_round(_event):
            total = scheduler.state_report()["payload_bytes"]
            round_payloads.append(total - sum(round_payloads))

        events.subscribe(sample_round, topic="scheduler.window")
    workload = WorkloadSpec(read_ratio=0.5, n_keys=100_000)
    for t in range(shape["tenants"]):
        rr = 0.05 + 0.90 * t / max(shape["tenants"] - 1, 1)
        scheduler.add_tenant(
            TenantSpec(
                tenant_id=f"t{t}",
                rr_series=[rr] * shape["windows"],
                base_workload=workload,
                seed=t,
                window_seconds=30,
                load=False,
                policy=OraclePolicy(),
            )
        )
    results = scheduler.run()
    summary = {
        tid: [
            (e.window_index, e.read_ratio, e.mean_throughput, str(e.configuration))
            for e in r.events
        ]
        for tid, r in results.items()
    }
    log_view = [
        (e.topic, e.message)
        for e in log
        if not e.topic.startswith("backend.state")
    ]
    return summary, log_view, scheduler


def bench_state_shipping(surrogate: SurrogateModel, budget: dict) -> dict:
    """Steady-state payload bytes per round, vs full-blob shipping.

    ``payload_bytes_per_round.steady_state`` is the cheapest measured
    round strictly after the warm-up rounds — tenants x 16 fingerprint
    bytes when the protocol works, independent of blob size — and
    ``reduction_vs_full_blob`` is the per-round byte reduction against
    shipping the blob in every task (what the loop did before
    content-addressed shipping).  ``steady_state_hit_fraction`` is the
    share of fingerprint-only tasks a worker served from its blob cache
    (misses are one-shot refetches after a worker restart or an unlucky
    first-round task placement).
    """
    shape = budget["state_ship"]
    serial_summary, serial_log, _ = _run_state_campaign(surrogate, shape, None)
    backend = ProcessPoolBackend(workers=shape["workers"])
    backend.warm()
    round_payloads: list = []
    sharded_summary, sharded_log, scheduler = _run_state_campaign(
        surrogate, shape, backend, round_payloads=round_payloads
    )
    backend.close()
    report = scheduler.state_report()
    # Rounds 0-1 broadcast blobs (initial state, then the grown cache);
    # the steady-state claim is about every round after that.
    steady_state = float(min(round_payloads[2:]))
    full_blob = float(round_payloads[0])
    return {
        **shape,
        "round_payload_bytes": [float(b) for b in round_payloads],
        "payload_bytes_per_round": {
            "first_round": full_blob,
            "steady_state": steady_state,
            "full_blob_equivalent": full_blob,
            "reduction_vs_full_blob": full_blob / steady_state,
        },
        "steady_state_hit_fraction": report["state_hits"]
        / max(report["fingerprint_tasks"], 1),
        "shipper": report,
        "identical_results": bool(
            serial_summary == sharded_summary and serial_log == sharded_log
        ),
    }


def _meta(budget_name: str) -> dict:
    return {
        "budget": budget_name,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "unix_time": time.time(),
    }


def run_suite(budget_name: str) -> dict:
    budget = BUDGETS[budget_name]
    surrogate = build_surrogate(budget)
    return {
        "meta": _meta(budget_name),
        "ensemble_query": bench_ensemble_rows(surrogate, budget),
        "ga_search": bench_ga_search(surrogate, budget),
        "recommend": bench_recommend(surrogate, budget),
    }


def run_serve_suite(budget_name: str) -> dict:
    budget = BUDGETS[budget_name]
    surrogate = build_surrogate(budget)
    return {
        "meta": _meta(budget_name),
        "op_stream": bench_op_stream(budget),
        "serve_scale": bench_serve_scale(surrogate, budget),
        "state_shipping": bench_state_shipping(surrogate, budget),
    }


#: Dimensionless metrics gated by --check, per scenario: (path into the
#: payload, floor).  A fresh value may be up to `tolerance` times worse
#: than baseline; the absolute floor catches a batched/sharded path that
#: stopped being faster at all.  ``identical_results`` is a bool, so its
#: floor of 1.0 makes any serve-equivalence break a hard failure.
GATED_METRICS = {
    "search": [
        (("ga_search", "speedup_batched_vs_scalar"), 1.0),
    ],
    "serve-scale": [
        (("op_stream", "speedup_batched_vs_scalar"), 1.0),
        (("serve_scale", "speedup_sharded_vs_serial"), 1.0),
        (("serve_scale", "speedup_sharded_vs_serial_projected"), 1.0),
        (("serve_scale", "identical_results"), 1.0),
        # Steady-state rounds must ship O(1) bytes between retrains
        # (the >=10x per-round reduction floor) and workers must serve
        # fingerprint-only tasks from their blob caches.
        (
            ("state_shipping", "payload_bytes_per_round", "reduction_vs_full_blob"),
            10.0,
        ),
        (("state_shipping", "steady_state_hit_fraction"), 0.5),
        (("state_shipping", "identical_results"), 1.0),
    ],
}


def check_against(
    fresh: dict, baseline_path: Path, tolerance: float, scenario: str
) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for path, floor in GATED_METRICS[scenario]:
        f, b = fresh, baseline
        for key in path:
            f = f[key]
            b = b[key]
        name = ".".join(path)
        if path[-1] == "speedup_sharded_vs_serial" and (
            fresh["meta"].get("cpu_count") or 1
        ) < 2:
            # Wall-clock parallel speedup is unmeasurable when the
            # workers time-slice a single core; the projected (CPU-time)
            # ratio above still gates the sharding itself.
            print(f"skip: {name} (single-core host; recorded {f:.2f})")
            continue
        if f < floor:
            failures.append(f"{name}: {f:.2f} below hard floor {floor:.2f}")
        elif f * tolerance < b:
            failures.append(
                f"{name}: {f:.2f} is >{tolerance:.0f}x worse than baseline {b:.2f}"
            )
        else:
            print(f"ok: {name} = {f:.2f} (baseline {b:.2f})")
    for msg in failures:
        print(f"PERF REGRESSION: {msg}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario", choices=sorted(GATED_METRICS), default="search"
    )
    parser.add_argument("--budget", choices=sorted(BUDGETS), default="default")
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="where to write the JSON payload (default: the scenario's "
        "checked-in baseline location)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help="baseline JSON to gate dimensionless metrics against",
    )
    parser.add_argument("--tolerance", type=float, default=5.0)
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = (
            Path(__file__).parent / "BENCH_search.json"
            if args.scenario == "search"
            # The serve baseline lives at the repo root: it pins the
            # headline op-stream and serve-loop speedups of the PR.
            else Path(__file__).parents[2] / "BENCH_serve.json"
        )

    if args.scenario == "search":
        payload = run_suite(args.budget)
    else:
        payload = run_serve_suite(args.budget)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2, default=float) + "\n")

    if args.scenario == "search":
        ga = payload["ga_search"]
        print(
            f"GA search ({ga['evaluations']} evals): "
            f"batched {ga['batched_seconds']:.3f}s vs scalar {ga['scalar_seconds']:.3f}s "
            f"-> {ga['speedup_batched_vs_scalar']:.1f}x, "
            f"{ga['batched_us_per_evaluation']:.1f} us/eval"
        )
    else:
        ops = payload["op_stream"]
        sv = payload["serve_scale"]
        print(
            f"op stream ({ops['n_ops']} ops): "
            f"batched {ops['batched_seconds']:.3f}s vs scalar {ops['scalar_seconds']:.3f}s "
            f"-> {ops['speedup_batched_vs_scalar']:.1f}x"
        )
        print(
            f"serve scale ({sv['tenants']} tenants x {sv['windows']} windows, "
            f"{sv['workers']} workers): "
            f"sharded {sv['sharded_seconds']:.3f}s vs serial {sv['serial_seconds']:.3f}s "
            f"-> {sv['speedup_sharded_vs_serial']:.1f}x wall "
            f"({sv['speedup_sharded_vs_serial_projected']:.1f}x projected on "
            f"{sv['workers']} cores), "
            f"identical_results={sv['identical_results']}"
        )
        ship = payload["state_shipping"]
        per_round = ship["payload_bytes_per_round"]
        print(
            f"state shipping ({ship['tenants']} tenants x {ship['windows']} "
            f"windows): {per_round['first_round']:,.0f} bytes round 0 -> "
            f"{per_round['steady_state']:,.0f} bytes steady state "
            f"({per_round['reduction_vs_full_blob']:.0f}x reduction), "
            f"hit fraction {ship['steady_state_hit_fraction']:.2f}, "
            f"identical_results={ship['identical_results']}"
        )
    print(f"wrote {args.out}")

    if args.check is not None:
        return check_against(payload, args.check, args.tolerance, args.scenario)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
