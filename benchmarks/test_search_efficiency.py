"""§4.8 headline: search speed and proximity to the theoretical best.

Paper claims reproduced here:

* the surrogate answers a sample in ~45 us, so the GA evaluates ~3,000
  samples in a fraction of a second — "four orders of magnitude faster
  than exhaustive grid search" (each grid sample costs ~7 minutes of
  benchmarking: 2 min load + 5 min measurement);
* a full GA search uses ~3,350 surrogate evaluations and completes in
  seconds;
* the resulting configuration reaches within ~15% of the exhaustive
  search's best measured throughput for Cassandra.
"""

import time


from benchmarks.conftest import SEED, write_results
from repro.bench.ycsb import YCSBBenchmark
from repro.config import CASSANDRA_KEY_PARAMETERS
from repro.core.search import SAMPLE_WALL_SECONDS, ExhaustiveSearch


def test_search_efficiency(
    cassandra, cassandra_rafiki, cassandra_surrogate, base_workload, measure, benchmark
):
    rr = 0.9
    # -- Rafiki's search -----------------------------------------------------------
    t0 = time.perf_counter()
    result = cassandra_rafiki.recommend(rr, use_cache=False)
    ga_wall = time.perf_counter() - t0

    # ~3,350 evaluations per search (paper §4.8); ours is budgeted alike
    # (early stagnation stopping can land below the full budget).
    assert 500 < result.evaluations < 10_000
    # The search completes in seconds, not months.
    assert ga_wall < 120.0

    # -- the exhaustive upper bound ------------------------------------------------
    search = ExhaustiveSearch(
        cassandra,
        CASSANDRA_KEY_PARAMETERS,
        resolution=3,
        benchmark=YCSBBenchmark(cassandra),
        max_configs=80,
    )
    exhaustive = search.optimize(base_workload.with_read_ratio(rr), seed=SEED)

    rafiki_tp = measure(result.configuration, rr)
    gap = 1.0 - rafiki_tp / exhaustive.predicted_throughput
    assert gap < 0.25, f"Rafiki within 25% of exhaustive best (paper: 15%), got {gap:.0%}"

    # -- the speedup accounting ------------------------------------------------------
    # What the paper compares: simulated benchmarking time saved.  The
    # exhaustive search paid `evaluations x 7 min`; Rafiki paid
    # `evaluations x t_surrogate`.
    per_query = max(cassandra_surrogate.stats.seconds_per_query, 1e-7)
    rafiki_cost = result.evaluations * per_query
    exhaustive_cost = exhaustive.evaluations * SAMPLE_WALL_SECONDS
    speedup = exhaustive_cost / rafiki_cost
    assert speedup > 1e3, f"speedup {speedup:.0f}x should be >= 4 orders of magnitude"

    payload = {
        "ga_evaluations": result.evaluations,
        "ga_wall_seconds": ga_wall,
        "surrogate_seconds_per_query": per_query,
        "exhaustive_configs": exhaustive.evaluations,
        "exhaustive_equivalent_seconds": exhaustive_cost,
        "rafiki_equivalent_seconds": rafiki_cost,
        "speedup": speedup,
        "gap_to_exhaustive": gap,
        "paper": {
            "evaluations": 3350,
            "surrogate_seconds_per_query": 45e-6,
            "gap_to_exhaustive": 0.15,
            "speedup": 1e4,
        },
    }
    benchmark.extra_info.update(
        {k: payload[k] for k in ("ga_evaluations", "speedup", "gap_to_exhaustive")}
    )
    write_results("search_efficiency", payload)

    # Benchmark the surrogate query itself — the paper's 45 us claim.
    row = cassandra_surrogate.encode(rr, cassandra.default_configuration())[None, :]
    benchmark(lambda: cassandra_surrogate.predict_features(row))
