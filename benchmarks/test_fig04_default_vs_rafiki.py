"""Figure 4: Cassandra throughput — default vs Rafiki-optimized vs
exhaustive search — across the workload read proportion.

Paper shape: the default configuration *decreases* with read proportion
(>40% swing); Rafiki beats the default everywhere, with the largest
gains on read-heavy workloads (~41% average for RR >= 70%, paper §4.8),
~14% on write-heavy, ~30% on average; exhaustive search bounds Rafiki
from above with Rafiki within ~15%.
"""

import numpy as np
import pytest

from benchmarks.conftest import SEED, write_results
from repro.bench.ycsb import YCSBBenchmark
from repro.config import CASSANDRA_KEY_PARAMETERS
from repro.core.search import ExhaustiveSearch


@pytest.fixture(scope="module")
def figure4_data(cassandra, cassandra_rafiki, base_workload, measure):
    ratios = np.linspace(0.0, 1.0, 11)
    default_cfg = cassandra.default_configuration()
    rows = []
    for rr in ratios:
        tuned = cassandra_rafiki.recommend(float(rr))
        rows.append(
            {
                "read_ratio": float(rr),
                "default": measure(default_cfg, float(rr)),
                "rafiki": measure(tuned.configuration, float(rr)),
                "rafiki_config": dict(tuned.configuration.non_default_items()),
            }
        )

    # The exhaustive upper bound at three anchor workloads (80 configs
    # each, as §4.8).
    bench = YCSBBenchmark(cassandra)
    exhaustive = {}
    for rr in (0.1, 0.5, 0.9):
        search = ExhaustiveSearch(
            cassandra, CASSANDRA_KEY_PARAMETERS, resolution=3,
            benchmark=bench, max_configs=80,
        )
        result = search.optimize(base_workload.with_read_ratio(rr), seed=SEED)
        exhaustive[rr] = result.predicted_throughput
    return rows, exhaustive


def test_fig4_default_declines_with_reads(figure4_data, benchmark):
    rows, _ = figure4_data
    default = [r["default"] for r in rows]
    swing = (default[0] - default[-1]) / default[0]
    assert swing > 0.40, f"default swing {swing:.0%} should exceed 40% (§4.4)"
    # Monotone-ish decline: no big upward jumps.
    assert default[0] == max(default)
    benchmark.extra_info["default_swing"] = swing
    benchmark(lambda: max(default))


def test_fig4_rafiki_beats_default(figure4_data, cassandra_rafiki, benchmark):
    rows, exhaustive = figure4_data
    gains = [(r["rafiki"] / r["default"] - 1.0) for r in rows]
    read_heavy = [g for r, g in zip(rows, gains) if r["read_ratio"] >= 0.7]
    write_heavy = [g for r, g in zip(rows, gains) if r["read_ratio"] <= 0.3]

    assert np.mean(gains) > 0.10, "average gain should be significant (~30% paper)"
    assert np.mean(read_heavy) > 0.20, "read-heavy gains are the headline (~41%)"
    assert np.mean(read_heavy) > np.mean(write_heavy), (
        "gains concentrate on read-heavy: the default file is write-leaning"
    )
    assert min(gains) > -0.10, "Rafiki should not substantially hurt any workload"

    # Rafiki lands within ~15-25% of the exhaustive upper bound (§4.8).
    for rr, best in exhaustive.items():
        rafiki_tp = next(r["rafiki"] for r in rows if abs(r["read_ratio"] - rr) < 1e-9)
        assert rafiki_tp > 0.75 * best

    payload = {
        "rows": [
            {k: v for k, v in r.items()} for r in rows
        ],
        "exhaustive": {str(k): v for k, v in exhaustive.items()},
        "average_gain": float(np.mean(gains)),
        "read_heavy_gain": float(np.mean(read_heavy)),
        "write_heavy_gain": float(np.mean(write_heavy)),
        "paper": {
            "average_gain": 0.30,
            "read_heavy_gain": 0.41,
            "write_heavy_gain": 0.14,
            "within_exhaustive": 0.15,
        },
    }
    benchmark.extra_info.update(
        {k: payload[k] for k in ("average_gain", "read_heavy_gain", "write_heavy_gain")}
    )
    write_results("fig04_default_vs_rafiki", payload)
    # Benchmark the online search itself (the thing that must be fast).
    benchmark(lambda: cassandra_rafiki.recommend(0.42, use_cache=False))
