"""Ablations on the search strategy: GA vs greedy vs random.

§4.6 argues greedy one-parameter-at-a-time tuning "cannot find the
optimal solution" because the key parameters interact (Figure 6); the
GA's population search handles the interdependencies, and a
random-sampling baseline at the same evaluation budget shows the GA's
structure buys real quality.
"""

import pytest

from benchmarks.conftest import SEED, write_results
from repro.core.search import ConfigurationOptimizer, GreedySearch, RandomSearch


@pytest.fixture(scope="module")
def strategies(cassandra_surrogate):
    # The GA runs with the ensemble-spread penalty on: an unpenalized
    # search tends to converge on points the surrogate *over*-predicts
    # (sparsely sampled corners), which costs a few percent of measured
    # throughput.  The one-pass mean+std query makes the penalty free.
    return {
        "ga": ConfigurationOptimizer(cassandra_surrogate, uncertainty_penalty=0.5),
        "greedy": GreedySearch(cassandra_surrogate),
        "random": RandomSearch(cassandra_surrogate, budget=3400),
    }


def run_all(strategies, rr, measure):
    out = {}
    for name, strategy in strategies.items():
        if name == "greedy":
            result = strategy.optimize(rr)
        else:
            result = strategy.optimize(rr, seed=SEED)
        out[name] = {
            "predicted": result.predicted_throughput,
            "measured": measure(result.configuration, rr),
            "evaluations": result.evaluations,
            "config": dict(result.configuration.non_default_items()),
        }
    return out


def test_ablation_search_strategies(strategies, measure, benchmark):
    rows = {rr: run_all(strategies, rr, measure) for rr in (0.1, 0.9)}

    for rr, row in rows.items():
        # The GA should never lose badly to either baseline on the real
        # (simulated) server.
        assert row["ga"]["measured"] > 0.92 * row["greedy"]["measured"]
        assert row["ga"]["measured"] > 0.92 * row["random"]["measured"]

    # On the read-heavy workload, where interactions matter most
    # (compaction strategy x cache x compactors), the GA is at least
    # competitive with greedy.
    ga_vs_greedy = rows[0.9]["ga"]["measured"] / rows[0.9]["greedy"]["measured"]
    assert ga_vs_greedy > 0.95

    payload = {
        "rows": {str(rr): row for rr, row in rows.items()},
        "ga_vs_greedy_rr90": ga_vs_greedy,
    }
    benchmark.extra_info["ga_vs_greedy_rr90"] = ga_vs_greedy
    write_results("ablation_search", payload)
    benchmark(lambda: strategies["greedy"].optimize(0.5))
