
from repro.config.cassandra import LEVELED
from repro.lsm.engine import LSMEngine
from repro.sim.clock import SimClock

from tests.conftest import make_knobs


def fill(engine, n, size=60, prefix="key"):
    for i in range(n):
        engine.put(f"{prefix}{i:05d}", b"v" * size)


class TestBasicOperations:
    def test_put_get(self, small_knobs):
        engine = LSMEngine(small_knobs)
        engine.put("a", b"hello")
        assert engine.get("a") == b"hello"

    def test_get_missing_returns_none(self, small_knobs):
        assert LSMEngine(small_knobs).get("nope") is None

    def test_overwrite(self, small_knobs):
        engine = LSMEngine(small_knobs)
        engine.put("a", b"one")
        engine.put("a", b"two")
        assert engine.get("a") == b"two"

    def test_delete(self, small_knobs):
        engine = LSMEngine(small_knobs)
        engine.put("a", b"x")
        engine.delete("a")
        assert engine.get("a") is None
        assert not engine.exists("a")

    def test_delete_nonexistent_is_fine(self, small_knobs):
        engine = LSMEngine(small_knobs)
        engine.delete("ghost")
        assert engine.get("ghost") is None

    def test_operations_advance_clock(self, small_knobs):
        engine = LSMEngine(small_knobs)
        t0 = engine.clock.now
        engine.put("a", b"x")
        assert engine.clock.now > t0
        t1 = engine.clock.now
        engine.get("a")
        assert engine.clock.now > t1

    def test_stats_counting(self, small_knobs):
        engine = LSMEngine(small_knobs)
        engine.put("a", b"x")
        engine.get("a")
        engine.delete("a")
        assert engine.stats.writes == 1
        assert engine.stats.reads == 1
        assert engine.stats.deletes == 1


class TestFlushing:
    def test_flush_triggered_by_threshold(self, small_knobs):
        engine = LSMEngine(small_knobs)
        fill(engine, 500)
        assert engine.stats.flushes >= 1
        assert engine.sstable_count >= 1

    def test_values_survive_flush(self, small_knobs):
        engine = LSMEngine(small_knobs)
        fill(engine, 500)
        engine.flush()
        assert engine.get("key00000") == b"v" * 60
        assert engine.get("key00499") == b"v" * 60

    def test_manual_flush_empties_memtable(self, small_knobs):
        engine = LSMEngine(small_knobs)
        engine.put("a", b"x")
        table = engine.flush()
        assert table is not None
        assert len(engine.memtable) == 0

    def test_flush_empty_memtable_noop(self, small_knobs):
        assert LSMEngine(small_knobs).flush() is None

    def test_newest_version_wins_across_tables(self, small_knobs):
        engine = LSMEngine(small_knobs)
        engine.put("a", b"old")
        engine.flush()
        engine.put("a", b"new")
        engine.flush()
        assert engine.get("a") == b"new"

    def test_memtable_version_beats_flushed(self, small_knobs):
        engine = LSMEngine(small_knobs)
        engine.put("a", b"flushed")
        engine.flush()
        engine.put("a", b"fresh")
        assert engine.get("a") == b"fresh"

    def test_delete_shadows_flushed_value(self, small_knobs):
        engine = LSMEngine(small_knobs)
        engine.put("a", b"x")
        engine.flush()
        engine.delete("a")
        engine.flush()
        assert engine.get("a") is None


class TestCompaction:
    def test_size_tiered_compaction_runs(self, small_knobs):
        engine = LSMEngine(small_knobs)
        fill(engine, 3000)
        engine.idle_until_compact()
        assert engine.stats.compactions_completed >= 1

    def test_compaction_reduces_table_count(self, small_knobs):
        engine = LSMEngine(small_knobs)
        fill(engine, 3000)
        before = engine.sstable_count
        engine.idle_until_compact()
        assert engine.sstable_count < before

    def test_data_intact_after_compaction(self, small_knobs):
        engine = LSMEngine(small_knobs)
        fill(engine, 2000)
        engine.idle_until_compact()
        for i in [0, 999, 1999]:
            assert engine.get(f"key{i:05d}") == b"v" * 60

    def test_deleted_stay_deleted_after_compaction(self, small_knobs):
        engine = LSMEngine(small_knobs)
        fill(engine, 1000)
        for i in range(0, 1000, 100):
            engine.delete(f"key{i:05d}")
        fill(engine, 1000, prefix="other")
        engine.idle_until_compact()
        for i in range(0, 1000, 100):
            assert engine.get(f"key{i:05d}") is None

    def test_leveled_maintains_invariant(self, leveled_knobs):
        engine = LSMEngine(leveled_knobs)
        fill(engine, 4000)
        engine.idle_until_compact()
        engine.layout.check_leveled_invariant()

    def test_leveled_data_intact(self, leveled_knobs):
        engine = LSMEngine(leveled_knobs)
        fill(engine, 4000)
        engine.idle_until_compact()
        for i in [0, 1234, 3999]:
            assert engine.get(f"key{i:05d}") == b"v" * 60

    def test_leveled_builds_levels(self, leveled_knobs):
        engine = LSMEngine(leveled_knobs)
        fill(engine, 4000)
        engine.idle_until_compact()
        assert len(engine.layout.levels) >= 2
        assert engine.layout.level_bytes(1) > 0


class TestReconfigure:
    def test_cache_resize(self, small_knobs):
        engine = LSMEngine(small_knobs)
        engine.reconfigure(make_knobs(file_cache_bytes=1024))
        assert engine.cache.capacity_bytes == 1024

    def test_strategy_switch_st_to_leveled(self, small_knobs):
        engine = LSMEngine(small_knobs)
        fill(engine, 1500)
        engine.reconfigure(make_knobs(compaction_method=LEVELED))
        assert engine.strategy.name == LEVELED
        fill(engine, 1500, prefix="more")
        engine.idle_until_compact()
        assert engine.get("key00000") == b"v" * 60
        assert engine.get("more00000") == b"v" * 60

    def test_reconfigure_memtable_space(self, small_knobs):
        engine = LSMEngine(small_knobs)
        engine.reconfigure(make_knobs(memtable_space_bytes=128 * 1024))
        assert engine.memtable.capacity_bytes == 128 * 1024


class TestCostAccounting:
    def test_reads_probe_and_use_cache(self, small_knobs):
        engine = LSMEngine(small_knobs)
        fill(engine, 600)
        engine.flush()
        engine.get("key00005")
        engine.get("key00005")
        assert engine.stats.bloom_checks > 0
        assert engine.stats.cache_hits >= 1

    def test_write_heavier_with_background_compaction(self):
        """Compaction backlog should slow foreground ops (shared disk)."""
        busy = LSMEngine(make_knobs(compaction_throughput_bytes=1024))
        fill(busy, 3000)  # builds a backlog that drains very slowly
        t0 = busy.clock.now
        fill(busy, 200, prefix="probe")
        assert busy.clock.now - t0 > 0

    def test_shared_clock_injection(self, small_knobs):
        clock = SimClock(start=100.0)
        engine = LSMEngine(small_knobs, clock=clock)
        engine.put("a", b"x")
        assert engine.clock.now > 100.0
