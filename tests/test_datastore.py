import numpy as np
import pytest

from repro.datastore import CassandraLike, Cluster, ScyllaLike
from repro.datastore.cluster import SHOOTER_CAPACITY_OPS
from repro.datastore.scylla import ScyllaAutotuner
from repro.errors import DatastoreError
from repro.lsm.analytic import AnalyticLSMModel
from repro.lsm.engine import LSMEngine


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


@pytest.fixture(scope="module")
def scylla():
    return ScyllaLike()


class TestCassandraLike:
    def test_space_and_key_parameters(self, cassandra):
        assert len(cassandra.key_parameters) == 5
        assert all(p in cassandra.space for p in cassandra.key_parameters)

    def test_knobs_honour_configuration(self, cassandra):
        cfg = cassandra.space.configuration(concurrent_writes=64)
        assert cassandra.effective_knobs(cfg).concurrent_writes == 64

    def test_new_analytic_instance(self, cassandra):
        model = cassandra.new_analytic_instance(cassandra.default_configuration())
        assert isinstance(model, AnalyticLSMModel)

    def test_new_engine_instance(self, cassandra):
        engine = cassandra.new_engine_instance(cassandra.default_configuration())
        assert isinstance(engine, LSMEngine)
        engine.put("k", b"v")
        assert engine.get("k") == b"v"

    def test_instances_independent(self, cassandra):
        a = cassandra.new_analytic_instance(cassandra.default_configuration(), seed=1)
        b = cassandra.new_analytic_instance(cassandra.default_configuration(), seed=1)
        a.step(0.5)
        assert b.t == 0.0


class TestScyllaLike:
    def test_autotuner_overrides_user_values(self, scylla):
        """§4.10: 'user settings ... are ignored by ScyllaDB'."""
        lo = scylla.space.configuration(concurrent_writes=16)
        hi = scylla.space.configuration(concurrent_writes=96)
        assert (
            scylla.effective_knobs(lo).concurrent_writes
            == scylla.effective_knobs(hi).concurrent_writes
        )

    def test_non_autotuned_values_respected(self, scylla):
        cfg = scylla.space.configuration(memtable_cleanup_threshold=0.4)
        assert scylla.effective_knobs(cfg).memtable_cleanup_threshold == pytest.approx(0.4)

    def test_throughput_oscillates(self, scylla):
        model = scylla.new_analytic_instance(scylla.default_configuration(), seed=2)
        model.load(1_000_000)
        tps = [r.throughput for r in model.run(0.7, 200)]
        cov = np.std(tps) / np.mean(tps)
        assert cov > 0.05

    def test_scylla_noisier_than_cassandra(self, scylla, cassandra):
        """Figure 10: ScyllaDB fluctuates much more than Cassandra."""
        def cov(store, seed):
            m = store.new_analytic_instance(store.default_configuration(), seed=seed)
            m.load(1_000_000)
            m.cache_age = 1000.0
            tps = [r.throughput for r in m.run(0.7, 300)]
            return np.std(tps) / np.mean(tps)

        scylla_cov = np.mean([cov(scylla, s) for s in range(3)])
        cassandra_cov = np.mean([cov(cassandra, s) for s in range(3)])
        assert scylla_cov > 1.5 * cassandra_cov

    def test_tuner_realization_depends_on_config(self, scylla):
        a = scylla.new_analytic_instance(scylla.default_configuration(), seed=1)
        b = scylla.new_analytic_instance(
            scylla.space.configuration(memtable_cleanup_threshold=0.33), seed=1
        )
        ta = [a.autotuner.multiplier(t) for t in range(0, 500, 10)]
        tb = [b.autotuner.multiplier(t) for t in range(0, 500, 10)]
        assert ta != tb


class TestScyllaAutotuner:
    def test_piecewise_constant(self):
        tuner = ScyllaAutotuner(seed=3)
        m0 = tuner.multiplier(0.0)
        m1 = tuner.multiplier(0.001)
        assert m0 == m1

    def test_levels_bounded(self):
        tuner = ScyllaAutotuner(seed=4)
        levels = [tuner.multiplier(float(t)) for t in range(0, 2000, 5)]
        assert min(levels) >= 0.55
        assert max(levels) <= 1.6

    def test_levels_change_over_time(self):
        tuner = ScyllaAutotuner(seed=5)
        levels = {round(tuner.multiplier(float(t)), 6) for t in range(0, 2000, 5)}
        assert len(levels) > 5


class TestCluster:
    def test_validation(self, cassandra):
        cfg = cassandra.default_configuration()
        with pytest.raises(DatastoreError):
            Cluster(cassandra, cfg, n_nodes=0)
        with pytest.raises(DatastoreError):
            Cluster(cassandra, cfg, n_nodes=2, replication_factor=3)
        with pytest.raises(DatastoreError):
            Cluster(cassandra, cfg, n_nodes=1, n_shooters=0)

    def test_two_nodes_rf1_scale_reads(self, cassandra):
        cfg = cassandra.default_configuration()
        single = Cluster(cassandra, cfg, n_nodes=1, n_shooters=2, seed=1)
        double = Cluster(cassandra, cfg, n_nodes=2, n_shooters=2, seed=1)
        for c in (single, double):
            c.load(1_000_000)
            c.settle()
            for n in c.nodes:
                n.cache_age = 1000.0
        assert double.sustainable_throughput(1.0) > 1.5 * single.sustainable_throughput(1.0)

    def test_replication_taxes_writes(self, cassandra):
        """RF=2 means every write lands twice; write-heavy barely gains
        from the second server (the paper's Table 3 RR=10% row)."""
        cfg = cassandra.default_configuration()
        rf1 = Cluster(cassandra, cfg, n_nodes=2, replication_factor=1, n_shooters=2, seed=1)
        rf2 = Cluster(cassandra, cfg, n_nodes=2, replication_factor=2, n_shooters=2, seed=1)
        for c in (rf1, rf2):
            c.load(1_000_000)
        assert rf2.sustainable_throughput(0.0) < rf1.sustainable_throughput(0.0)

    def test_shooter_capacity_caps(self, cassandra):
        cfg = cassandra.default_configuration()
        cluster = Cluster(cassandra, cfg, n_nodes=2, n_shooters=1, seed=1)
        cluster.load(1_000_000)
        assert cluster.sustainable_throughput(0.0) <= SHOOTER_CAPACITY_OPS

    def test_step_and_run(self, cassandra):
        cfg = cassandra.default_configuration()
        cluster = Cluster(cassandra, cfg, n_nodes=2, replication_factor=2, n_shooters=2, seed=1)
        cluster.load(500_000)
        results = cluster.run(0.5, duration=20)
        assert len(results) == 20
        assert all(r.throughput > 0 for r in results)
        assert cluster.t == pytest.approx(20.0)

    def test_consistency_level_validated(self, cassandra):
        cfg = cassandra.default_configuration()
        with pytest.raises(DatastoreError):
            Cluster(cassandra, cfg, n_nodes=2, consistency_level="MOST")

    def test_quorum_read_fanout(self, cassandra):
        cfg = cassandra.default_configuration()
        cluster = Cluster(
            cassandra, cfg, n_nodes=3, replication_factor=3,
            consistency_level="QUORUM", seed=1,
        )
        assert cluster.read_fanout == 2
        cluster.consistency_level = "ALL"
        assert cluster.read_fanout == 3
        cluster.consistency_level = "ONE"
        assert cluster.read_fanout == 1

    def test_stronger_consistency_lowers_read_throughput(self, cassandra):
        cfg = cassandra.default_configuration()

        def throughput(cl):
            cluster = Cluster(
                cassandra, cfg, n_nodes=3, replication_factor=3,
                n_shooters=3, consistency_level=cl, seed=1,
            )
            cluster.load(1_000_000)
            cluster.settle()
            for n in cluster.nodes:
                n.cache_age = 1000.0
            return cluster.sustainable_throughput(1.0)

        assert throughput("ONE") > throughput("QUORUM") > throughput("ALL")

    def test_nodes_absorb_replicated_writes(self, cassandra):
        cfg = cassandra.default_configuration()
        cluster = Cluster(cassandra, cfg, n_nodes=2, replication_factor=2, n_shooters=2, seed=1)
        cluster.run(0.0, duration=120)
        assert all(n.memtable_bytes > 0 or n.total_flushes > 0 for n in cluster.nodes)


class TestClusterFaults:
    def make(self, cassandra, n_nodes=3, rf=2):
        cluster = Cluster(
            cassandra,
            cassandra.default_configuration(),
            n_nodes=n_nodes,
            replication_factor=rf,
            n_shooters=n_nodes,
            seed=1,
        )
        cluster.load(600_000)
        return cluster

    def test_failed_node_reduces_throughput(self, cassandra):
        cluster = self.make(cassandra)
        healthy = cluster.sustainable_throughput(0.5)
        cluster.fail_node(1)
        assert cluster.live_node_indices == [0, 2]
        assert cluster.down_node_indices == [1]
        assert cluster.sustainable_throughput(0.5) < healthy

    def test_recovery_restores_capacity(self, cassandra):
        cluster = self.make(cassandra)
        healthy = cluster.sustainable_throughput(0.5)
        cluster.fail_node(0)
        cluster.recover_node(0)
        assert cluster.down_node_indices == []
        assert cluster.sustainable_throughput(0.5) == pytest.approx(healthy)

    def test_cannot_fail_last_live_node(self, cassandra):
        cluster = self.make(cassandra, n_nodes=2, rf=1)
        cluster.fail_node(0)
        with pytest.raises(DatastoreError):
            cluster.fail_node(1)
        # The refused call must not have poisoned the down-set.
        assert cluster.down_node_indices == [0]
        # Re-failing an already-down node stays legal (idempotent).
        cluster.fail_node(0)

    def test_node_index_validated(self, cassandra):
        cluster = self.make(cassandra)
        with pytest.raises(DatastoreError):
            cluster.fail_node(9)
        with pytest.raises(DatastoreError):
            cluster.recover_node(-1)

    def test_down_node_serves_nothing_in_step(self, cassandra):
        cluster = self.make(cassandra)
        cluster.fail_node(2)
        result = cluster.step(0.5)
        assert result.per_node_throughput[2] == 0.0
        assert result.throughput > 0

    def test_disk_slowdown_drags_cluster(self, cassandra):
        cluster = self.make(cassandra)
        healthy = cluster.sustainable_throughput(0.5)
        cluster.set_disk_slowdown(0, 4.0)
        degraded = cluster.sustainable_throughput(0.5)
        assert degraded < healthy
        cluster.set_disk_slowdown(0, 1.0)  # factor 1 clears
        assert cluster.sustainable_throughput(0.5) == pytest.approx(healthy)

    def test_slowdown_factor_validated(self, cassandra):
        cluster = self.make(cassandra)
        with pytest.raises(DatastoreError):
            cluster.set_disk_slowdown(0, 0.5)

    def test_reconfigure_reaches_down_nodes(self, cassandra):
        cluster = self.make(cassandra)
        cluster.fail_node(1)
        config = cassandra.space.configuration(concurrent_reads=64)
        cluster.reconfigure(cassandra.effective_knobs(config))
        cluster.recover_node(1)
        assert all(
            n.knobs.concurrent_reads == 64 for n in cluster.nodes
        )

    def test_all_nodes_down_rejected_in_capacity_math(self, cassandra):
        cluster = self.make(cassandra, n_nodes=2, rf=1)
        cluster._down = {0, 1}  # unreachable via fail_node; simulate anyway
        with pytest.raises(DatastoreError):
            cluster.sustainable_throughput(0.5)


class TestClusterLoadDistribution:
    @staticmethod
    def loaded_keys(cluster, n_keys):
        """Record what cluster.load hands each node."""
        per_node = []
        for node in cluster.nodes:
            node.load = per_node.append  # type: ignore[method-assign]
        cluster.load(n_keys)
        return per_node

    def test_total_replicas_conserved(self, cassandra):
        """The divmod fix: n_keys x RF replicas land in total even when
        the division leaves a remainder."""
        cluster = Cluster(
            cassandra,
            cassandra.default_configuration(),
            n_nodes=3,
            replication_factor=2,
            n_shooters=3,
            seed=1,
        )
        per_node = self.loaded_keys(cluster, 1_000_001)  # 2_000_002 over 3
        assert sum(per_node) == 1_000_001 * 2
        assert max(per_node) - min(per_node) <= 1

    def test_even_split_unchanged(self, cassandra):
        cluster = Cluster(
            cassandra,
            cassandra.default_configuration(),
            n_nodes=4,
            replication_factor=2,
            n_shooters=4,
            seed=1,
        )
        assert self.loaded_keys(cluster, 1_000_000) == [500_000] * 4
