import pytest

from repro.lsm.commitlog import SYNC_OVERHEAD_SECONDS, CommitLog
from repro.lsm.record import Record


def rec(key="k", size=60):
    return Record(key=key, timestamp=1.0, value=b"x" * size)


class TestCommitLog:
    def test_append_accumulates_bytes(self):
        log = CommitLog(segment_size_bytes=10_000, sync_period_s=10.0)
        log.append(rec(), now=0.0)
        assert log.total_bytes_written == rec().size_bytes

    def test_segment_rollover(self):
        log = CommitLog(segment_size_bytes=200, sync_period_s=1e9)
        log.append(rec(size=160), now=1.0)  # 202 bytes >= 200 -> sealed
        assert log.sealed_segment_count == 1
        assert log.active_segment_bytes == 0

    def test_sync_overhead_on_period(self):
        log = CommitLog(segment_size_bytes=10**9, sync_period_s=5.0)
        log.append(rec(), now=0.0)
        extra = log.append(rec(), now=6.0)
        assert extra == pytest.approx(SYNC_OVERHEAD_SECONDS)

    def test_no_sync_within_period(self):
        log = CommitLog(segment_size_bytes=10**9, sync_period_s=5.0)
        log.append(rec(), now=0.0)
        assert log.append(rec(), now=1.0) == 0.0

    def test_sync_counter(self):
        log = CommitLog(segment_size_bytes=10**9, sync_period_s=1.0)
        for t in [0.0, 2.0, 4.0]:
            log.append(rec(), now=t)
        assert log.total_syncs >= 2

    def test_discard_flushed_recycles(self):
        log = CommitLog(segment_size_bytes=100, sync_period_s=1e9)
        log.append(rec(size=60), now=0.0)  # seals a segment
        freed = log.discard_flushed()
        assert freed > 0
        assert log.sealed_segment_count == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CommitLog(segment_size_bytes=0, sync_period_s=1.0)
        with pytest.raises(ValueError):
            CommitLog(segment_size_bytes=100, sync_period_s=0.0)
