import pytest

from repro.lsm.commitlog import SYNC_OVERHEAD_SECONDS, CommitLog
from repro.lsm.record import Record


def rec(key="k", size=60):
    return Record(key=key, timestamp=1.0, value=b"x" * size)


class TestCommitLog:
    def test_append_accumulates_bytes(self):
        log = CommitLog(segment_size_bytes=10_000, sync_period_s=10.0)
        log.append(rec(), now=0.0)
        assert log.total_bytes_written == rec().size_bytes

    def test_segment_rollover(self):
        log = CommitLog(segment_size_bytes=200, sync_period_s=1e9)
        log.append(rec(size=160), now=1.0)  # 202 bytes >= 200 -> sealed
        assert log.sealed_segment_count == 1
        assert log.active_segment_bytes == 0

    def test_sync_overhead_on_period(self):
        log = CommitLog(segment_size_bytes=10**9, sync_period_s=5.0)
        log.append(rec(), now=0.0)
        extra = log.append(rec(), now=6.0)
        assert extra == pytest.approx(SYNC_OVERHEAD_SECONDS)

    def test_no_sync_within_period(self):
        log = CommitLog(segment_size_bytes=10**9, sync_period_s=5.0)
        log.append(rec(), now=0.0)
        assert log.append(rec(), now=1.0) == 0.0

    def test_sync_counter(self):
        log = CommitLog(segment_size_bytes=10**9, sync_period_s=1.0)
        for t in [0.0, 2.0, 4.0]:
            log.append(rec(), now=t)
        assert log.total_syncs >= 2

    def test_discard_flushed_recycles(self):
        log = CommitLog(segment_size_bytes=100, sync_period_s=1e9)
        log.append(rec(size=60), now=0.0)  # seals a segment
        freed = log.discard_flushed()
        assert freed > 0
        assert log.sealed_segment_count == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CommitLog(segment_size_bytes=0, sync_period_s=1.0)
        with pytest.raises(ValueError):
            CommitLog(segment_size_bytes=100, sync_period_s=0.0)


class TestSyncBaseline:
    """The first append establishes the sync clock, never charges it."""

    def test_first_append_past_period_is_not_charged(self):
        # Regression: a first write at now >= period used to pay a sync
        # barrier for an idle gap during which nothing existed to sync.
        log = CommitLog(segment_size_bytes=10**9, sync_period_s=5.0)
        assert log.append(rec(), now=100.0) == 0.0
        assert log.total_syncs == 0

    def test_period_measured_from_first_append(self):
        log = CommitLog(segment_size_bytes=10**9, sync_period_s=5.0)
        log.append(rec(), now=100.0)
        assert log.append(rec(), now=104.0) == 0.0
        assert log.append(rec(), now=105.0) == pytest.approx(SYNC_OVERHEAD_SECONDS)


class TestSegmentBoundary:
    def test_exact_boundary_seals_segment(self):
        log = CommitLog(segment_size_bytes=rec().size_bytes, sync_period_s=1e9)
        log.append(rec(), now=0.0)  # lands exactly on the boundary
        assert log.sealed_segment_count == 1
        assert log.active_segment_bytes == 0

    def test_one_byte_under_boundary_stays_active(self):
        log = CommitLog(segment_size_bytes=rec().size_bytes + 1, sync_period_s=1e9)
        log.append(rec(), now=0.0)
        assert log.sealed_segment_count == 0
        assert log.active_segment_bytes == rec().size_bytes


class TestReplayWindow:
    def test_replay_returns_appended_records_in_order(self):
        log = CommitLog(segment_size_bytes=10**9, sync_period_s=1e9)
        records = [rec(key=f"k{i}") for i in range(5)]
        for i, r in enumerate(records):
            log.append(r, now=float(i))
        assert list(log.replay()) == records
        assert log.unflushed_record_count == 5

    def test_replay_spans_sealed_segments(self):
        # Records in sealed-but-undiscarded segments are still replayable.
        log = CommitLog(segment_size_bytes=100, sync_period_s=1e9)
        for i in range(4):
            log.append(rec(key=f"k{i}"), now=0.0)  # each append seals
        assert log.sealed_segment_count == 4
        assert len(list(log.replay())) == 4

    def test_empty_active_segment_replay_is_empty(self):
        log = CommitLog(segment_size_bytes=10**9, sync_period_s=1e9)
        assert list(log.replay()) == []

    def test_discard_flushed_clears_replay_window(self):
        log = CommitLog(segment_size_bytes=100, sync_period_s=1e9)
        log.append(rec(size=60), now=0.0)
        log.discard_flushed()
        assert list(log.replay()) == []
        assert log.unflushed_record_count == 0
        assert log.unflushed_bytes == 0

    def test_replay_window_restarts_after_discard(self):
        log = CommitLog(segment_size_bytes=10**9, sync_period_s=1e9)
        log.append(rec(key="old"), now=0.0)
        log.discard_flushed()
        log.append(rec(key="new"), now=1.0)
        assert [r.key for r in log.replay()] == ["new"]

    def test_replay_is_snapshot_not_view(self):
        log = CommitLog(segment_size_bytes=10**9, sync_period_s=1e9)
        log.append(rec(key="a"), now=0.0)
        it = log.replay()
        log.append(rec(key="b"), now=0.0)
        assert [r.key for r in it] == ["a"]
