import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.parameter import (
    CategoricalParameter,
    FloatParameter,
    IntegerParameter,
)
from repro.errors import ConfigurationError


@pytest.fixture
def cat():
    return CategoricalParameter(name="cm", default="a", choices=("a", "b", "c"))


@pytest.fixture
def integer():
    return IntegerParameter(name="cw", default=32, low=8, high=96)


@pytest.fixture
def flt():
    return FloatParameter(name="mt", default=0.11, low=0.1, high=0.5)


class TestCategorical:
    def test_validate_accepts_choices(self, cat):
        cat.validate("b")

    def test_validate_rejects_unknown(self, cat):
        with pytest.raises(ConfigurationError):
            cat.validate("z")

    def test_default_must_be_choice(self):
        with pytest.raises(ConfigurationError):
            CategoricalParameter(name="x", default="z", choices=("a",))

    def test_needs_choices(self):
        with pytest.raises(ConfigurationError):
            CategoricalParameter(name="x", default="a", choices=())

    def test_grid_is_all_choices(self, cat):
        assert list(cat.grid(10)) == ["a", "b", "c"]

    def test_sweep_is_all_choices(self, cat):
        assert list(cat.sweep_values()) == ["a", "b", "c"]

    def test_unit_round_trip(self, cat):
        for c in cat.choices:
            assert cat.from_unit(cat.to_unit(c)) == c

    def test_cardinality(self, cat):
        assert cat.cardinality == 3

    def test_sample_in_domain(self, cat):
        rng = np.random.default_rng(0)
        assert all(cat.sample(rng) in cat.choices for _ in range(20))


class TestInteger:
    def test_validate_bounds(self, integer):
        integer.validate(8)
        integer.validate(96)
        with pytest.raises(ConfigurationError):
            integer.validate(7)
        with pytest.raises(ConfigurationError):
            integer.validate(97)

    def test_rejects_non_integer(self, integer):
        with pytest.raises(ConfigurationError):
            integer.validate(10.5)
        with pytest.raises(ConfigurationError):
            integer.validate(True)

    def test_default_in_range_enforced(self):
        with pytest.raises(ConfigurationError):
            IntegerParameter(name="x", default=100, low=0, high=10)

    def test_low_le_high(self):
        with pytest.raises(ConfigurationError):
            IntegerParameter(name="x", default=0, low=5, high=1)

    def test_grid_respects_resolution(self, integer):
        grid = integer.grid(4)
        assert len(grid) == 4
        assert grid[0] == 8 and grid[-1] == 96

    def test_grid_small_domain_enumerates(self):
        p = IntegerParameter(name="x", default=1, low=0, high=3)
        assert list(p.grid(10)) == [0, 1, 2, 3]

    def test_sweep_includes_extremes_and_default(self, integer):
        sweep = integer.sweep_values(4)
        assert 8 in sweep and 96 in sweep and 32 in sweep

    def test_unit_round_trip(self, integer):
        for v in (8, 32, 96):
            assert integer.from_unit(integer.to_unit(v)) == v

    def test_from_unit_clips(self, integer):
        assert integer.from_unit(-1.0) == 8
        assert integer.from_unit(2.0) == 96

    def test_cardinality(self, integer):
        assert integer.cardinality == 89

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_from_unit_always_valid(self, u):
        p = IntegerParameter(name="x", default=5, low=1, high=11)
        p.validate(p.from_unit(u))


class TestFloat:
    def test_validate_bounds(self, flt):
        flt.validate(0.1)
        flt.validate(0.5)
        with pytest.raises(ConfigurationError):
            flt.validate(0.6)

    def test_rejects_non_numeric(self, flt):
        with pytest.raises(ConfigurationError):
            flt.validate("0.2")

    def test_grid_linspace(self, flt):
        grid = flt.grid(5)
        assert len(grid) == 5
        assert grid[0] == pytest.approx(0.1)
        assert grid[-1] == pytest.approx(0.5)

    def test_sweep_includes_default(self, flt):
        assert any(abs(v - 0.11) < 1e-9 for v in flt.sweep_values(4))

    def test_unit_round_trip(self, flt):
        assert flt.from_unit(flt.to_unit(0.3)) == pytest.approx(0.3)

    def test_cardinality_infinite(self, flt):
        assert flt.cardinality == float("inf")

    def test_sample_in_domain(self, flt):
        rng = np.random.default_rng(1)
        for _ in range(20):
            flt.validate(flt.sample(rng))
