"""Batch-vs-scalar equivalence of the vectorized search fast path.

The batched evaluation stack (``features_batch``/``violation_batch``,
``predict_mean_std``, the GA's ``fitness_batch_fn``, the chunked
baseline searchers) must be *numerically identical* to the scalar
reference path: the inference forward pass is row-stable by
construction (einsum contraction + sequential member accumulation), so
scoring a row alone or inside a batch gives the same bits.  These tests
pin that contract.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.dataset import PerformanceDataset, PerformanceSample
from repro.config import CASSANDRA_KEY_PARAMETERS, cassandra_space
from repro.core.search import ConfigurationOptimizer, GreedySearch, RandomSearch
from repro.core.surrogate import SurrogateModel
from repro.ga.algorithm import GeneticAlgorithm
from repro.ga.encoding import ConfigurationEncoder
from repro.ml.ensemble import EnsembleConfig, NetworkEnsemble
from repro.ml.network import FeedForwardNetwork
from repro.runtime.events import EventBus
from repro.workload.spec import WorkloadSpec

PARAMS = list(CASSANDRA_KEY_PARAMETERS)
SPACE = cassandra_space()
ENCODER = ConfigurationEncoder(SPACE, PARAMS)


def gene_matrices(max_rows: int = 64):
    """Random (n, n_genes) matrices, including out-of-bounds genes."""
    return st.integers(min_value=1, max_value=max_rows).flatmap(
        lambda n: st.integers(min_value=0, max_value=2**31 - 1).map(
            lambda s: np.random.default_rng(s).uniform(
                ENCODER.lower - 3.0, ENCODER.upper + 3.0, size=(n, ENCODER.n_genes)
            )
        )
    )


class TestEncoderBatchEquivalence:
    @given(genes=gene_matrices())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_features_batch_matches_rows_bitwise(self, genes):
        batch = ENCODER.features_batch(genes, 0.42)
        for i in range(genes.shape[0]):
            assert np.array_equal(batch[i], ENCODER.features(genes[i], 0.42))

    @given(genes=gene_matrices())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_violation_batch_matches_rows_bitwise(self, genes):
        batch = ENCODER.violation_batch(genes)
        for i in range(genes.shape[0]):
            assert batch[i] == ENCODER.violation(genes[i])

    def test_row_count_validated(self):
        from repro.errors import SearchError

        with pytest.raises(SearchError):
            ENCODER.features_batch(np.zeros((3, ENCODER.n_genes + 1)), 0.5)
        with pytest.raises(SearchError):
            ENCODER.violation_batch(np.zeros((3, ENCODER.n_genes + 1)))


def make_ensemble(n_features: int, n_networks: int = 5, seed: int = 0) -> NetworkEnsemble:
    """A prediction-ready ensemble without the training cost: random
    member weights, scalers fitted on random data."""
    rng = np.random.default_rng(seed)
    ens = NetworkEnsemble(EnsembleConfig(n_networks=n_networks))
    ens.x_scaler.fit(rng.standard_normal((32, n_features)))
    ens.y_scaler.fit(rng.standard_normal(32) * 1e4)
    ens.networks = [
        FeedForwardNetwork([n_features, 14, 4, 1], rng=np.random.default_rng(seed + i))
        for i in range(n_networks)
    ]
    return ens


class TestEnsembleBatchEquivalence:
    @given(
        n_rows=st.integers(min_value=1, max_value=96),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_predict_mean_std_matches_per_row_bitwise(self, n_rows, seed):
        ens = make_ensemble(n_features=6, seed=17)
        x = np.random.default_rng(seed).standard_normal((n_rows, 6))
        mean, std = ens.predict_mean_std(x)
        assert mean.shape == (n_rows,) and std.shape == (n_rows,)
        for i in range(n_rows):
            m_i, s_i = ens.predict_mean_std(x[i : i + 1])
            assert mean[i] == m_i[0]
            assert std[i] == s_i[0]

    def test_one_pass_agrees_with_predict_and_predict_std(self):
        ens = make_ensemble(n_features=6, seed=3)
        x = np.random.default_rng(5).standard_normal((48, 6))
        mean, std = ens.predict_mean_std(x)
        assert np.array_equal(mean, ens.predict(x))
        assert np.array_equal(std, ens.predict_std(x))

    def test_forward_rows_row_stable(self):
        net = FeedForwardNetwork([6, 14, 4, 1], rng=np.random.default_rng(9))
        x = np.random.default_rng(11).standard_normal((200, 6))
        full = net.forward_rows(x)
        rows = np.array([net.forward_rows(x[i])[0] for i in range(200)])
        assert np.array_equal(full, rows)


def elementwise_fitness(weights):
    """A (scalar, batch) fitness pair whose rows agree bitwise."""

    def scalar(genes: np.ndarray) -> float:
        return float(np.sum(np.tanh(genes * weights), axis=-1))

    def batch(matrix: np.ndarray) -> np.ndarray:
        return np.sum(np.tanh(matrix * weights), axis=-1)

    return scalar, batch


class TestGABatchDeterminism:
    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_batched_ga_result_bitwise_identical(self, seed):
        rng = np.random.default_rng(seed)
        weights = rng.standard_normal(ENCODER.n_genes) / np.maximum(ENCODER.upper, 1.0)
        scalar, batch = elementwise_fitness(weights)

        kwargs = dict(population_size=16, generations=12, stagnation_limit=6)
        a = GeneticAlgorithm(ENCODER, fitness_fn=scalar, **kwargs).run(seed=seed)
        b = GeneticAlgorithm(ENCODER, fitness_batch_fn=batch, **kwargs).run(seed=seed)

        assert a.best_configuration == b.best_configuration
        assert a.best_fitness == b.best_fitness  # bitwise: no tolerance
        assert a.evaluations == b.evaluations
        assert a.generations == b.generations
        assert a.history == b.history

    def test_needs_some_fitness(self):
        from repro.errors import SearchError

        with pytest.raises(SearchError):
            GeneticAlgorithm(ENCODER)

    def test_batch_row_count_validated(self):
        from repro.errors import SearchError

        ga = GeneticAlgorithm(
            ENCODER,
            fitness_batch_fn=lambda m: np.zeros(m.shape[0] + 1),
            population_size=8,
            generations=2,
        )
        with pytest.raises(SearchError):
            ga.run(seed=0)


class TestSearchEvents:
    def test_ga_publishes_lifecycle_events(self):
        bus = EventBus()
        events = []
        bus.subscribe(events.append, topic="search")
        scalar, batch = elementwise_fitness(np.ones(ENCODER.n_genes))
        ga = GeneticAlgorithm(
            ENCODER, fitness_batch_fn=batch, population_size=8, generations=4, bus=bus
        )
        ga.run(seed=0)
        topics = [e.topic for e in events]
        assert topics[0] == "search.start"
        assert topics[-1] == "search.done"
        gens = [e for e in events if e.topic == "search.generation"]
        assert 1 <= len(gens) <= 4
        assert gens[0].payload["generation"] == 1
        assert "evaluations" in gens[0].payload

    def test_no_bus_is_noop(self):
        scalar, _ = elementwise_fitness(np.ones(ENCODER.n_genes))
        result = GeneticAlgorithm(
            ENCODER, fitness_fn=scalar, population_size=8, generations=2
        ).run(seed=1)
        assert result.evaluations > 0


@pytest.fixture(scope="module")
def surrogate():
    """Small trained surrogate shared by the optimizer equivalence tests."""
    rng = np.random.default_rng(7)
    samples = []
    for _ in range(18):
        config = SPACE.sample_configuration(rng, PARAMS)
        vec = config.to_vector(PARAMS)
        for rr in (0.1, 0.5, 0.9):
            target = 50_000 + 25_000 * vec[2] - 15_000 * (vec[1] - 0.4) ** 2 + 4_000 * rr
            samples.append(
                PerformanceSample(
                    workload=WorkloadSpec(read_ratio=float(rr)),
                    configuration=config,
                    throughput=float(target),
                )
            )
    dataset = PerformanceDataset(samples, PARAMS)
    model = SurrogateModel(SPACE, PARAMS, EnsembleConfig(n_networks=3, max_epochs=40))
    return model.fit(dataset, seed=4)


class TestOptimizerBatchEquivalence:
    @pytest.mark.parametrize("penalty", [0.0, 0.5])
    def test_batched_and_scalar_paths_identical(self, surrogate, penalty):
        common = dict(population_size=16, generations=10, uncertainty_penalty=penalty)
        fast = ConfigurationOptimizer(surrogate, batched=True, **common).optimize(
            0.6, seed=9
        )
        ref = ConfigurationOptimizer(surrogate, batched=False, **common).optimize(
            0.6, seed=9
        )
        assert fast.configuration == ref.configuration
        assert fast.predicted_throughput == ref.predicted_throughput  # bitwise
        assert fast.evaluations == ref.evaluations
        assert fast.history == ref.history

    def test_uncertainty_penalty_single_ensemble_walk(self, surrogate):
        """The penalized fitness must not re-run the ensemble for the
        spread: n_queries grows by the row count once, not twice."""
        before = surrogate.stats.n_queries
        rows = np.atleast_2d(surrogate.encode(0.5, SPACE.default_configuration()))
        surrogate.predict_mean_std(rows)
        assert surrogate.stats.n_queries == before + 1

    def test_optimizer_emits_events(self, surrogate):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, topic="search")
        ConfigurationOptimizer(
            surrogate, population_size=12, generations=4, bus=bus
        ).optimize(0.5, seed=0)
        assert any(e.topic == "search.start" for e in seen)
        assert any(e.topic == "search.done" for e in seen)


class TestBaselineSearcherEquivalence:
    def test_greedy_matches_per_config_reference(self, surrogate):
        result = GreedySearch(surrogate, resolution=5).optimize(0.5)

        # Reference: the old one-predict-per-candidate loop.
        space = surrogate.space
        current = space.default_configuration()
        evaluations = 0
        for name in surrogate.feature_parameters:
            best_value, best_tp = current[name], -np.inf
            for value in space[name].grid(5):
                candidate = current.with_updates(**{name: value})
                tp = surrogate.predict(0.5, candidate)
                evaluations += 1
                if tp > best_tp:
                    best_value, best_tp = value, tp
            current = current.with_updates(**{name: best_value})
        final_tp = surrogate.predict(0.5, current)
        evaluations += 1

        assert result.configuration == current
        assert result.predicted_throughput == float(final_tp)  # bitwise
        assert result.evaluations == evaluations

    @pytest.mark.parametrize("chunk_size", [7, 64, 1000])
    def test_random_matches_per_config_reference(self, surrogate, chunk_size):
        budget = 60
        result = RandomSearch(surrogate, budget=budget, chunk_size=chunk_size).optimize(
            0.4, seed=3
        )

        from repro.sim.rng import derive_rng

        rng = derive_rng(3)
        space = surrogate.space
        names = surrogate.feature_parameters
        best_config, best_tp = None, -np.inf
        history = []
        for _ in range(budget):
            config = space.sample_configuration(rng, names)
            tp = surrogate.predict(0.4, config)
            if tp > best_tp:
                best_config, best_tp = config, tp
            history.append(best_tp)

        assert result.configuration == best_config
        assert result.predicted_throughput == float(best_tp)  # bitwise
        assert result.evaluations == budget
        assert result.history == [float(h) for h in history]
