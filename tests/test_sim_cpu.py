import pytest

from repro.sim.cpu import CpuModel
from repro.sim.costs import (
    CostConstants,
    DEFAULT_COSTS,
    thread_contention,
    thread_pool_rate,
)
from repro.sim.hardware import DEFAULT_SERVER


class TestCpuModel:
    def test_available_cores_default(self):
        cpu = CpuModel(DEFAULT_SERVER)
        assert cpu.available_cores == DEFAULT_SERVER.cpu_cores

    def test_background_reduces_cores(self):
        cpu = CpuModel(DEFAULT_SERVER)
        cpu.set_background_utilization(0.5)
        assert cpu.available_cores == pytest.approx(DEFAULT_SERVER.cpu_cores / 2)

    def test_background_clamped(self):
        cpu = CpuModel(DEFAULT_SERVER, background_utilization=5.0)
        assert cpu.background_utilization <= 0.9

    def test_scale_cost_for_faster_clock(self):
        cpu = CpuModel(DEFAULT_SERVER)  # 3.0 GHz reference
        assert cpu.scale_cost(1.0) == pytest.approx(1.0)

    def test_parallelism_monotone_up_to_cores(self):
        cpu = CpuModel(DEFAULT_SERVER)
        assert cpu.effective_parallelism(2) < cpu.effective_parallelism(4)

    def test_parallelism_rejects_zero_threads(self):
        cpu = CpuModel(DEFAULT_SERVER)
        with pytest.raises(ValueError):
            cpu.effective_parallelism(0)


class TestThreadContention:
    def test_unit_at_low_threads(self):
        assert thread_contention(1, 8) == pytest.approx(1.0, abs=0.01)

    def test_grows_with_threads(self):
        assert thread_contention(128, 8) > thread_contention(32, 8)

    def test_quadratic_shape(self):
        c = DEFAULT_COSTS.contention_quadratic
        assert thread_contention(64, 8) == pytest.approx(1.0 + c * 4.0)

    def test_more_cores_less_contention(self):
        assert thread_contention(64, 16) < thread_contention(64, 8)


class TestThreadPoolRate:
    def test_pool_binds_at_low_threads(self):
        # 1 thread with a 1 ms hold -> 1000 ops/s regardless of CPU.
        rate = thread_pool_rate(1, 1e-3, cores=8, cpu_seconds_per_op=1e-6)
        assert rate == pytest.approx(1000.0)

    def test_cpu_binds_at_high_threads(self):
        rate = thread_pool_rate(64, 1e-5, cores=8, cpu_seconds_per_op=1e-3)
        assert rate < 64 / 1e-5

    def test_nonmonotonic_past_saturation(self):
        """The paper's Figure 6 effect: too many threads hurt."""
        costs = CostConstants()
        peak = thread_pool_rate(32, 240e-6, cores=8, cpu_seconds_per_op=70e-6, costs=costs)
        over = thread_pool_rate(512, 240e-6, cores=8, cpu_seconds_per_op=70e-6, costs=costs)
        assert over < peak

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            thread_pool_rate(0, 1e-3, 8, 1e-6)
        with pytest.raises(ValueError):
            thread_pool_rate(1, -1.0, 8, 1e-6)
