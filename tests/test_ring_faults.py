"""Property-based fault test for the replicated data path.

Random interleavings of put/get/fail/recover against an
:class:`EngineCluster` at QUORUM must uphold the R + W > RF contract:

* an **acknowledged** write (put that did not raise) is never lost — a
  later successful quorum read returns the newest acknowledged value;
* after every node recovers, read repair converges all replicas to the
  acknowledged state.

Writes rejected for an unreachable quorum make no durability promise and
are excluded from the model.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.datastore import CassandraLike, EngineCluster  # noqa: E402
from repro.errors import DatastoreError  # noqa: E402

N_NODES = 4
RF = 3
KEYS = [f"k{i}" for i in range(6)]

# One random script step: (op, key-index, node-index, payload-byte).
step = st.tuples(
    st.sampled_from(["put", "get", "fail", "recover", "delete"]),
    st.integers(min_value=0, max_value=len(KEYS) - 1),
    st.integers(min_value=0, max_value=N_NODES - 1),
    st.integers(min_value=0, max_value=255),
)


CASSANDRA = CassandraLike()


def fresh_cluster():
    return EngineCluster(
        CASSANDRA,
        CASSANDRA.default_configuration(),
        n_nodes=N_NODES,
        replication_factor=RF,
        consistency_level="QUORUM",
        read_repair=True,
    )


@settings(max_examples=60, deadline=None)
@given(script=st.lists(step, min_size=1, max_size=60))
def test_acknowledged_quorum_writes_never_lost(script):
    cluster = fresh_cluster()
    expected = {}  # key -> last acknowledged value (None = tombstoned)
    for op, ki, ni, byte in script:
        key = KEYS[ki]
        node = f"node{ni}"
        if op == "put":
            value = bytes([byte])
            try:
                cluster.put(key, value)
            except DatastoreError:
                continue  # unacknowledged: no promise made
            expected[key] = value
        elif op == "delete":
            try:
                cluster.delete(key)
            except DatastoreError:
                continue
            expected[key] = None
        elif op == "fail":
            try:
                cluster.fail_node(node)
            except DatastoreError:
                pass  # last live node: refusal is the contract
        elif op == "recover":
            cluster.recover_node(node)
        else:  # get
            try:
                observed = cluster.get(key)
            except DatastoreError:
                continue  # quorum unreachable: read makes no promise
            if key in expected:
                assert observed == expected[key], (
                    f"lost acknowledged write for {key!r}: "
                    f"got {observed!r}, expected {expected[key]!r}"
                )
            else:
                assert observed is None

    # -- recovery: bring everyone back, verify convergence ------------------
    for ni in range(N_NODES):
        cluster.recover_node(f"node{ni}")
    for key, value in expected.items():
        assert cluster.get(key) == value
        # An ALL read consults every replica, so after read repair a
        # second ALL read must see identical state on each of them.
        cluster.consistency_level = "ALL"
        assert cluster.get(key) == value
        cluster.consistency_level = "QUORUM"


@settings(max_examples=30, deadline=None)
@given(
    failures=st.lists(
        st.integers(min_value=0, max_value=N_NODES - 1),
        min_size=1,
        max_size=2,
        unique=True,
    ),
    byte=st.integers(min_value=0, max_value=255),
)
def test_read_repair_converges_after_recovery(failures, byte):
    """Write healthy, fail nodes, overwrite, recover: the stale replicas
    must be repaired to the newest acknowledged value."""
    cluster = fresh_cluster()
    key = "hotkey"
    cluster.put(key, b"old")
    for ni in failures:
        try:
            cluster.fail_node(f"node{ni}")
        except DatastoreError:
            pass
    new_value = bytes([byte])
    try:
        cluster.put(key, new_value)
        acknowledged = new_value
    except DatastoreError:
        acknowledged = b"old"
    for ni in range(N_NODES):
        cluster.recover_node(f"node{ni}")
    # ALL reads consult and repair every replica of the key.
    cluster.consistency_level = "ALL"
    assert cluster.get(key) == acknowledged
    replicas = cluster.ring.replicas_for(key, RF)
    records = [cluster.nodes[r].get_record(key) for r in replicas]
    assert all(rec is not None and rec.value == acknowledged for rec in records)
