"""The deprecated string shims warn through one helper, exactly once."""

import warnings

import pytest

from repro.bench.collection import DataCollectionCampaign
from repro.core.anova import rank_parameters
from repro.core.controller import OnlineController
from repro.core.rafiki import RafikiPipeline
from repro.datastore import CassandraLike
from repro.runtime import reset_deprecation_registry, warn_deprecated
from repro.workload.spec import WorkloadSpec


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


@pytest.fixture(scope="module")
def workload():
    return WorkloadSpec(read_ratio=0.5, n_keys=500_000)


@pytest.fixture(autouse=True)
def clean_registry():
    reset_deprecation_registry()
    yield
    reset_deprecation_registry()


def warning_count(fn):
    """Run ``fn`` twice; count DeprecationWarnings across both calls."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        fn()
        fn()
    return sum(1 for w in caught if issubclass(w.category, DeprecationWarning))


class TestHelper:
    def test_warns_once_per_key(self):
        with pytest.warns(DeprecationWarning, match="gone soon"):
            warn_deprecated("test.key", "gone soon")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            warn_deprecated("test.key", "gone soon")
        assert caught == []

    def test_distinct_keys_warn_independently(self):
        with pytest.warns(DeprecationWarning):
            warn_deprecated("test.a", "a")
        with pytest.warns(DeprecationWarning):
            warn_deprecated("test.b", "b")

    def test_reset_reenables(self):
        with pytest.warns(DeprecationWarning):
            warn_deprecated("test.key", "gone soon")
        reset_deprecation_registry()
        with pytest.warns(DeprecationWarning):
            warn_deprecated("test.key", "gone soon")


class TestShimsWarnExactlyOnce:
    def test_controller_decision_mode(self, cassandra, workload):
        assert (
            warning_count(
                lambda: OnlineController(
                    cassandra, None, workload, decision_mode="oracle"
                )
            )
            == 1
        )

    def test_controller_default_mode_is_silent(self, cassandra, workload):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            OnlineController(cassandra, None, workload)
        assert not any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )

    def test_pipeline_progress(self, cassandra, workload):
        assert (
            warning_count(
                lambda: RafikiPipeline(cassandra, workload, progress=lambda m: None)
            )
            == 1
        )

    def test_campaign_progress(self, cassandra, workload):
        assert (
            warning_count(
                lambda: DataCollectionCampaign(
                    cassandra, workload, progress=lambda i, t: None
                )
            )
            == 1
        )

    def test_anova_progress(self, cassandra, workload):
        def run():
            rank_parameters(
                cassandra,
                workload,
                parameters=["concurrent_reads"],
                sweep_count=2,
                repeats=1,
                progress=lambda m: None,
            )

        assert warning_count(run) == 1
