"""End-to-end determinism: the same seed reproduces every artifact —
dataset, model predictions, and the chosen configuration."""

import numpy as np
import pytest

from repro.bench.collection import DataCollectionCampaign
from repro.bench.ycsb import YCSBBenchmark
from repro.config import CASSANDRA_KEY_PARAMETERS
from repro.core.search import ConfigurationOptimizer
from repro.core.surrogate import SurrogateModel
from repro.datastore import CassandraLike
from repro.ml.ensemble import EnsembleConfig
from repro.workload.mgrast import MGRastTraceGenerator
from repro.workload.spec import WorkloadSpec


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


def build_pipeline_artifacts(cassandra, seed):
    wl = WorkloadSpec(read_ratio=0.5, n_keys=1_000_000)
    campaign = DataCollectionCampaign(
        cassandra,
        wl,
        key_parameters=CASSANDRA_KEY_PARAMETERS,
        n_workloads=4,
        n_configurations=5,
        n_faulty=1,
        benchmark=YCSBBenchmark(cassandra, run_seconds=20),
        seed=seed,
    )
    dataset = campaign.run()
    surrogate = SurrogateModel(
        cassandra.space,
        CASSANDRA_KEY_PARAMETERS,
        EnsembleConfig(n_networks=2, max_epochs=30),
    ).fit(dataset, seed=seed)
    result = ConfigurationOptimizer(surrogate).optimize(0.8, seed=seed)
    return dataset, surrogate, result


class TestDeterminism:
    def test_full_pipeline_reproducible(self, cassandra):
        d1, s1, r1 = build_pipeline_artifacts(cassandra, seed=11)
        d2, s2, r2 = build_pipeline_artifacts(cassandra, seed=11)
        assert np.allclose(d1.targets(), d2.targets())
        probe = s1.encode(0.5, cassandra.default_configuration())[None, :]
        assert np.allclose(s1.predict_features(probe), s2.predict_features(probe))
        assert r1.configuration == r2.configuration
        assert r1.predicted_throughput == pytest.approx(r2.predicted_throughput)

    def test_different_seeds_differ(self, cassandra):
        d1, _, _ = build_pipeline_artifacts(cassandra, seed=11)
        d2, _, _ = build_pipeline_artifacts(cassandra, seed=12)
        assert not np.allclose(d1.targets(), d2.targets())

    def test_trace_generation_reproducible(self):
        t1 = MGRastTraceGenerator(seed=3, queries_per_window=50).generate(3600)
        t2 = MGRastTraceGenerator(seed=3, queries_per_window=50).generate(3600)
        assert len(t1) == len(t2)
        assert all(
            a.timestamp == b.timestamp and a.kind == b.kind and a.key == b.key
            for a, b in zip(t1, t2)
        )
