import numpy as np
import pytest

from repro.bench.collection import DataCollectionCampaign
from repro.bench.ycsb import YCSBBenchmark
from repro.datastore import CassandraLike
from repro.workload.spec import WorkloadSpec


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


@pytest.fixture
def base_workload():
    return WorkloadSpec(read_ratio=0.5, n_keys=1_000_000)


def small_campaign(cassandra, base_workload, **kw):
    defaults = dict(
        n_workloads=3,
        n_configurations=4,
        n_faulty=2,
        benchmark=YCSBBenchmark(cassandra, run_seconds=30),
        seed=5,
    )
    defaults.update(kw)
    return DataCollectionCampaign(cassandra, base_workload, **defaults)


class TestPlan:
    def test_workloads_evenly_spaced(self, cassandra, base_workload):
        camp = small_campaign(cassandra, base_workload, n_workloads=11)
        ratios = [w.read_ratio for w in camp.workloads()]
        assert ratios[0] == 0.0 and ratios[-1] == 1.0
        assert len(ratios) == 11
        assert np.allclose(np.diff(ratios), 0.1)

    def test_configuration_count(self, cassandra, base_workload):
        camp = small_campaign(cassandra, base_workload, n_configurations=7)
        assert len(camp.configurations()) == 7

    def test_configurations_cover_extremes(self, cassandra, base_workload):
        camp = small_campaign(cassandra, base_workload, n_configurations=20)
        configs = camp.configurations()
        for name in cassandra.key_parameters:
            spec = cassandra.space[name]
            values = {c[name] for c in configs}
            sweep = spec.sweep_values(4)
            assert sweep[0] in values
            assert sweep[-1] in values

    def test_default_config_included(self, cassandra, base_workload):
        camp = small_campaign(cassandra, base_workload)
        assert cassandra.default_configuration() in camp.configurations()

    def test_validation(self, cassandra, base_workload):
        with pytest.raises(ValueError):
            small_campaign(cassandra, base_workload, n_workloads=1)
        with pytest.raises(ValueError):
            small_campaign(cassandra, base_workload, n_configurations=0)


class TestExecution:
    def test_faulty_samples_dropped(self, cassandra, base_workload):
        camp = small_campaign(cassandra, base_workload)
        dataset = camp.run()
        assert len(dataset) == 3 * 4 - 2

    def test_raw_results_keep_faulty(self, cassandra, base_workload):
        camp = small_campaign(cassandra, base_workload)
        results = camp.run_raw()
        assert len(results) == 12
        assert sum(1 for r in results if r.faulty) == 2

    def test_fault_degrades_throughput(self, cassandra, base_workload):
        camp = small_campaign(cassandra, base_workload)
        results = camp.run_raw()
        # A faulted sample records less than the healthy run would have.
        faulty = [r for r in results if r.faulty]
        assert all(r.mean_throughput > 0 for r in faulty)

    def test_deterministic(self, cassandra, base_workload):
        a = small_campaign(cassandra, base_workload).run()
        b = small_campaign(cassandra, base_workload).run()
        assert np.allclose(a.targets(), b.targets())

    def test_progress_callback(self, cassandra, base_workload):
        seen = []
        camp = small_campaign(cassandra, base_workload)
        camp.progress = lambda i, total: seen.append((i, total))
        camp.run_raw()
        assert seen[-1] == (12, 12)

    def test_paper_scale_plan(self, cassandra, base_workload):
        """§4.2: 11 workloads x 20 configs = 220, minus 20 faulty = 200."""
        camp = DataCollectionCampaign(
            cassandra,
            base_workload,
            benchmark=YCSBBenchmark(cassandra, run_seconds=10),
            seed=1,
        )
        assert camp.n_workloads * camp.n_configurations == 220
        assert camp.n_faulty == 20


class TestRetryFaulted:
    def test_transient_faults_healed_by_retry(self, cassandra, base_workload):
        """Campaign client faults are transient: one retry recovers all
        220->200-style drops, so nothing is discarded."""
        camp = small_campaign(cassandra, base_workload, retry_faulty=1)
        dataset = camp.run()
        assert len(dataset) == 3 * 4  # nothing dropped

    def test_persistent_faults_stay_dropped(self, cassandra, base_workload):
        from repro.faults import BenchFault, FaultPlan

        plan = FaultPlan(
            bench_faults=(BenchFault(index=3, degradation=0.5, transient=False),)
        )
        camp = small_campaign(
            cassandra, base_workload, n_faulty=0, fault_plan=plan, retry_faulty=3
        )
        results = camp.run_raw()
        assert results[3].faulty
        assert sum(1 for r in results if r.faulty) == 1
        assert len(camp.run()) == 3 * 4 - 1

    def test_plan_faults_ride_on_campaign_noise(self, cassandra, base_workload):
        from repro.faults import BenchFault, FaultPlan

        plan = FaultPlan(bench_faults=(BenchFault(index=0, degradation=0.3),))
        camp = small_campaign(cassandra, base_workload, n_faulty=0, fault_plan=plan)
        results = camp.run_raw()
        assert results[0].faulty
        # Transient plan fault + one retry: the sample comes back clean.
        camp2 = small_campaign(
            cassandra, base_workload, n_faulty=0, fault_plan=plan, retry_faulty=1
        )
        assert not camp2.run_raw()[0].faulty

    def test_retry_events_published(self, cassandra, base_workload):
        from repro.runtime import EventBus

        bus = EventBus()
        retries = []
        bus.subscribe(lambda e: retries.append(e.payload["index"]), topic="collect.retry")
        camp = small_campaign(cassandra, base_workload, retry_faulty=1, events=bus)
        camp.run_raw()
        assert len(retries) == 2  # the two campaign faults

    def test_fault_injected_events_published(self, cassandra, base_workload):
        from repro.runtime import EventBus

        bus = EventBus()
        kinds = []
        bus.subscribe(lambda e: kinds.append(e.payload["kind"]), topic="fault.injected")
        small_campaign(cassandra, base_workload, events=bus).run_raw()
        assert kinds.count("bench-client") == 2

    def test_default_retry_off_is_bit_identical(self, cassandra, base_workload):
        baseline = small_campaign(cassandra, base_workload).run()
        explicit = small_campaign(cassandra, base_workload, retry_faulty=0).run()
        assert (baseline.targets() == explicit.targets()).all()

    def test_retry_budget_validated(self, cassandra, base_workload):
        with pytest.raises(ValueError):
            small_campaign(cassandra, base_workload, retry_faulty=-1)
