import numpy as np
import pytest

from repro.config.parameter import FloatParameter, IntegerParameter
from repro.config.space import Configuration, ConfigurationSpace
from repro.errors import ConfigurationError


@pytest.fixture
def tiny_space():
    return ConfigurationSpace(
        "tiny",
        [
            IntegerParameter(name="a", default=2, low=0, high=10),
            FloatParameter(name="b", default=0.5, low=0.0, high=1.0),
            IntegerParameter(name="c", default=1, low=1, high=3),
        ],
    )


class TestConfigurationSpace:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ConfigurationSpace("empty", [])

    def test_rejects_duplicates(self):
        p = IntegerParameter(name="a", default=0, low=0, high=1)
        with pytest.raises(ConfigurationError):
            ConfigurationSpace("dup", [p, p])

    def test_lookup_by_name(self, tiny_space):
        assert tiny_space["a"].default == 2

    def test_unknown_name_raises(self, tiny_space):
        with pytest.raises(ConfigurationError):
            tiny_space["zzz"]

    def test_contains(self, tiny_space):
        assert "a" in tiny_space
        assert "zzz" not in tiny_space

    def test_subspace(self, tiny_space):
        sub = tiny_space.subspace(["a", "c"])
        assert sub.names == ["a", "c"]

    def test_cardinality(self, tiny_space):
        # a: 11, b: quantized to 10, c: 3
        assert tiny_space.cardinality() == pytest.approx(11 * 10 * 3)

    def test_grid_over_subset(self, tiny_space):
        configs = list(tiny_space.grid(["a", "c"], resolution=2))
        assert len(configs) == 4
        assert all(cfg["b"] == 0.5 for cfg in configs)

    def test_sample_deterministic(self, tiny_space):
        a = tiny_space.sample_configuration(np.random.default_rng(9))
        b = tiny_space.sample_configuration(np.random.default_rng(9))
        assert a == b

    def test_coverage_sample_includes_extremes(self, tiny_space):
        rng = np.random.default_rng(0)
        configs = tiny_space.coverage_sample(rng, ["a"], count=8)
        values = {cfg["a"] for cfg in configs}
        assert {0, 10, 2} <= values
        assert len(configs) == 8

    def test_coverage_sample_small_subspace_does_not_hang(self, tiny_space):
        """Asking for more configs than the subspace holds returns what
        exists instead of spinning forever."""
        rng = np.random.default_rng(0)
        configs = tiny_space.coverage_sample(rng, ["c"], count=50)
        assert len(configs) <= 3  # c has only 3 values
        assert len(set(configs)) == len(configs)

    def test_coverage_sample_unique(self, tiny_space):
        rng = np.random.default_rng(0)
        configs = tiny_space.coverage_sample(rng, ["a", "c"], count=15)
        assert len(set(configs)) == len(configs)

    def test_vector_round_trip(self, tiny_space):
        cfg = tiny_space.configuration(a=7, b=0.25)
        vec = cfg.to_vector(["a", "b"])
        back = tiny_space.vector_to_configuration(vec, ["a", "b"])
        assert back["a"] == 7
        assert back["b"] == pytest.approx(0.25)

    def test_vector_length_mismatch(self, tiny_space):
        with pytest.raises(ConfigurationError):
            tiny_space.vector_to_configuration([0.5], ["a", "b"])


class TestConfiguration:
    def test_defaults_fill_in(self, tiny_space):
        cfg = Configuration(tiny_space, {"a": 5})
        assert cfg["b"] == 0.5
        assert cfg["c"] == 1

    def test_unknown_override_rejected(self, tiny_space):
        with pytest.raises(ConfigurationError):
            Configuration(tiny_space, {"zzz": 1})

    def test_invalid_value_rejected(self, tiny_space):
        with pytest.raises(ConfigurationError):
            Configuration(tiny_space, {"a": 999})

    def test_mapping_protocol(self, tiny_space):
        cfg = tiny_space.default_configuration()
        assert len(cfg) == 3
        assert set(cfg) == {"a", "b", "c"}

    def test_equality_and_hash(self, tiny_space):
        a = Configuration(tiny_space, {"a": 5})
        b = Configuration(tiny_space, {"a": 5})
        c = Configuration(tiny_space, {"a": 6})
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_with_updates(self, tiny_space):
        cfg = tiny_space.default_configuration().with_updates(a=9)
        assert cfg["a"] == 9
        assert cfg["b"] == 0.5

    def test_non_default_items(self, tiny_space):
        cfg = Configuration(tiny_space, {"a": 5, "b": 0.5})
        assert cfg.non_default_items() == {"a": 5}

    def test_repr_shows_overrides(self, tiny_space):
        assert "a=5" in repr(Configuration(tiny_space, {"a": 5}))
        assert "defaults" in repr(tiny_space.default_configuration())
