"""Range scans and batch reads on the materialized engine."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import DatastoreError
from repro.lsm.engine import LSMEngine

from tests.conftest import make_knobs


@pytest.fixture
def engine(small_knobs):
    e = LSMEngine(small_knobs)
    for i in range(0, 100, 2):  # even keys only
        e.put(f"k{i:03d}", f"v{i}".encode())
    return e


class TestScan:
    def test_inclusive_range(self, engine):
        rows = engine.scan("k010", "k020")
        assert [k for k, _ in rows] == ["k010", "k012", "k014", "k016", "k018", "k020"]

    def test_values_correct(self, engine):
        rows = dict(engine.scan("k000", "k004"))
        assert rows["k002"] == b"v2"

    def test_empty_range(self, engine):
        assert engine.scan("k001", "k001") == []

    def test_invalid_range_rejected(self, engine):
        with pytest.raises(DatastoreError):
            engine.scan("k020", "k010")

    def test_limit(self, engine):
        rows = engine.scan("k000", "k099", limit=3)
        assert len(rows) == 3
        assert rows[0][0] == "k000"

    def test_scan_spans_memtable_and_tables(self, engine):
        engine.flush()
        engine.put("k001", b"fresh")  # lands in the new memtable
        rows = dict(engine.scan("k000", "k002"))
        assert rows == {"k000": b"v0", "k001": b"fresh", "k002": b"v2"}

    def test_newest_version_wins_across_tables(self, engine):
        engine.flush()
        engine.put("k010", b"updated")
        engine.flush()
        rows = dict(engine.scan("k010", "k010"))
        assert rows["k010"] == b"updated"

    def test_tombstones_excluded(self, engine):
        engine.delete("k004")
        rows = dict(engine.scan("k000", "k008"))
        assert "k004" not in rows

    def test_scan_advances_clock(self, engine):
        engine.flush()
        t0 = engine.clock.now
        engine.scan("k000", "k099")
        assert engine.clock.now > t0

    def test_scan_survives_compaction(self, small_knobs):
        engine = LSMEngine(small_knobs)
        for i in range(2000):
            engine.put(f"k{i:05d}", b"x" * 60)
        engine.idle_until_compact()
        rows = engine.scan("k00100", "k00109")
        assert len(rows) == 10

    @given(
        start=st.integers(min_value=0, max_value=99),
        span=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_scan_matches_point_gets(self, start, span):
        engine = LSMEngine(make_knobs(memtable_space_bytes=8 * 1024))
        model = {}
        for i in range(0, 100, 3):
            engine.put(f"k{i:03d}", f"v{i}".encode())
            model[f"k{i:03d}"] = f"v{i}".encode()
        lo, hi = f"k{start:03d}", f"k{min(start + span, 999):03d}"
        expected = sorted((k, v) for k, v in model.items() if lo <= k <= hi)
        assert engine.scan(lo, hi) == expected


class TestMultiGet:
    def test_returns_all_requested(self, engine):
        out = engine.multi_get(["k000", "k001", "k002"])
        assert out == {"k000": b"v0", "k001": None, "k002": b"v2"}

    def test_counts_each_read(self, engine):
        before = engine.stats.reads
        engine.multi_get(["k000", "k002", "k004"])
        assert engine.stats.reads == before + 3

    def test_empty_batch_costs_nothing(self, engine):
        t0 = engine.clock.now
        assert engine.multi_get([]) == {}
        assert engine.clock.now == t0

    def test_matches_point_gets(self, small_knobs):
        def build():
            e = LSMEngine(make_knobs())
            for i in range(0, 60, 2):
                e.put(f"k{i:03d}", f"v{i}".encode())
            e.flush()
            return e

        keys = [f"k{i:03d}" for i in range(60)]
        batched = build().multi_get(keys)
        point = {k: build().get(k) for k in keys}
        assert batched == point

    def test_batch_cheaper_than_point_gets(self, small_knobs):
        """The batched cost path charges one dispatch and overlaps CPU
        with disk, so N keys in one batch take less simulated time than
        N independent gets."""

        def build():
            e = LSMEngine(make_knobs())
            for i in range(200):
                e.put(f"k{i:03d}", b"x" * 40)
            e.flush()
            return e

        keys = [f"k{i:03d}" for i in range(0, 200, 2)]
        eb = build()
        t0 = eb.clock.now
        eb.multi_get(keys)
        batched_dt = eb.clock.now - t0

        ep = build()
        t0 = ep.clock.now
        for k in keys:
            ep.get(k)
        point_dt = ep.clock.now - t0

        assert batched_dt < point_dt
