"""LSM crash/recovery: commitlog replay + SSTable scrub (Issue 4).

The central property: an engine killed at *any* point in an op stream
and rebuilt through :meth:`LSMEngine.recover` serves exactly the same
values as an engine that never crashed.  Only the clock differs (by the
replay/scrub cost recovery charges).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PersistenceError
from repro.faults.plan import CrashPoint, FaultPlan
from repro.lsm.engine import LSMEngine
from repro.recovery.crashsim import (
    generate_ops,
    run_ops,
    state_snapshot,
    states_equivalent,
)
from repro.runtime.events import EventBus

from tests.conftest import make_knobs

N_OPS = 120
KEYS = [f"key-{i:06d}" for i in range(40)]


def make_ops(seed=0):
    return generate_ops(np.random.default_rng(seed), N_OPS)


def crash_plan(*points):
    return FaultPlan(crash_points=tuple(CrashPoint(op=p) for p in points))


class TestCrashEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(crash_at=st.integers(min_value=0, max_value=N_OPS - 1))
    def test_crash_anywhere_serves_identical_state(self, crash_at):
        ops = make_ops()
        reference = LSMEngine(make_knobs())
        run_ops(reference, ops)
        crashed = LSMEngine(make_knobs())
        report = run_ops(crashed, ops, crash_plan=crash_plan(crash_at))
        assert report.crashes == 1
        assert states_equivalent(crashed, reference, KEYS)

    def test_multiple_crashes(self, small_knobs):
        ops = make_ops(seed=3)
        reference = LSMEngine(make_knobs())
        run_ops(reference, ops)
        crashed = LSMEngine(make_knobs())
        report = run_ops(crashed, ops, crash_plan=crash_plan(10, 50, 90))
        assert report.crashes == 3
        assert states_equivalent(crashed, reference, KEYS)

    def test_get_results_match_uninterrupted_run(self, small_knobs):
        ops = make_ops(seed=7)
        reference = LSMEngine(make_knobs())
        ref_report = run_ops(reference, ops)
        crashed = LSMEngine(make_knobs())
        crash_report = run_ops(crashed, ops, crash_plan=crash_plan(60))
        assert crash_report.get_results == ref_report.get_results


class TestCrashSemantics:
    def test_acknowledged_writes_survive(self, small_knobs):
        engine = LSMEngine(small_knobs)
        engine.put("a", b"durable")
        engine.crash()
        engine.recover()
        assert engine.get("a") == b"durable"

    def test_crash_without_recover_loses_memtable(self, small_knobs):
        engine = LSMEngine(small_knobs)
        engine.put("a", b"volatile")
        engine.crash()
        # Without replay the write is gone: that is what crash() models.
        assert len(engine.memtable) == 0

    def test_crash_preserves_sstables(self, small_knobs):
        engine = LSMEngine(small_knobs)
        for i in range(50):
            engine.put(f"k{i:04d}", b"v" * 200)
        engine.flush()
        assert engine.sstable_count > 0
        before = engine.sstable_count
        engine.crash()
        engine.recover()
        assert engine.sstable_count >= before

    def test_recovery_charges_simulated_time(self, small_knobs):
        engine = LSMEngine(small_knobs)
        for i in range(30):
            engine.put(f"k{i:04d}", b"v" * 100)
        engine.crash()
        t0 = engine.clock.now
        report = engine.recover()
        assert report.replayed_records == 30
        assert report.recovery_seconds > 0
        assert engine.clock.now == pytest.approx(t0 + report.recovery_seconds)

    def test_empty_commitlog_replay_tolerated(self, small_knobs):
        engine = LSMEngine(small_knobs)
        engine.crash()
        report = engine.recover()
        assert report.replayed_records == 0
        assert engine.get("anything") is None

    def test_crash_right_after_flush_replays_nothing(self, small_knobs):
        engine = LSMEngine(small_knobs)
        for i in range(20):
            engine.put(f"k{i:04d}", b"v" * 100)
        engine.flush()
        engine.crash()
        report = engine.recover()
        assert report.replayed_records == 0
        assert engine.get("k0000") == b"v" * 100

    def test_tombstones_survive_crash(self, small_knobs):
        engine = LSMEngine(small_knobs)
        engine.put("a", b"x")
        engine.flush()
        engine.delete("a")  # tombstone only in memtable + commitlog
        engine.crash()
        engine.recover()
        assert engine.get("a") is None

    def test_events_published(self, small_knobs):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        engine = LSMEngine(small_knobs, events=bus)
        engine.put("a", b"x")
        engine.crash()
        engine.recover()
        topics = [e.topic for e in seen]
        assert "fault.injected" in topics
        assert "recovery.journal_replayed" in topics


class TestScrub:
    def corrupt_one_table(self, engine):
        table = engine.layout.all_tables()[0]
        table.checksum ^= 0xDEADBEEF
        return table.table_id

    def test_clean_engine_scrubs_clean(self, small_knobs):
        engine = LSMEngine(small_knobs)
        for i in range(50):
            engine.put(f"k{i:04d}", b"v" * 200)
        engine.flush()
        assert engine.scrub() == []

    def test_corruption_detected(self, small_knobs):
        engine = LSMEngine(small_knobs)
        for i in range(50):
            engine.put(f"k{i:04d}", b"v" * 200)
        engine.flush()
        table_id = self.corrupt_one_table(engine)
        assert engine.scrub() == [table_id]

    def test_recover_raises_on_corruption(self, small_knobs):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, topic="recovery.corrupt_artifact")
        engine = LSMEngine(small_knobs, events=bus)
        for i in range(50):
            engine.put(f"k{i:04d}", b"v" * 200)
        engine.flush()
        self.corrupt_one_table(engine)
        engine.crash()
        with pytest.raises(PersistenceError, match="scrub"):
            engine.recover()
        assert len(seen) == 1

    def test_recover_without_scrub_skips_check(self, small_knobs):
        engine = LSMEngine(small_knobs)
        for i in range(50):
            engine.put(f"k{i:04d}", b"v" * 200)
        engine.flush()
        self.corrupt_one_table(engine)
        engine.crash()
        report = engine.recover(scrub=False)
        assert report.scrubbed_tables == 0


class TestCrashPointPlan:
    def test_plan_round_trip(self):
        plan = FaultPlan(crash_points=(CrashPoint(op=5), CrashPoint(op=17)))
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.crash_points[1].op == 17

    def test_negative_op_rejected(self):
        from repro.errors import FaultError

        with pytest.raises(FaultError):
            FaultPlan(crash_points=(CrashPoint(op=-1),)).validate()

    def test_plan_with_crash_points_not_empty(self):
        assert not FaultPlan(crash_points=(CrashPoint(op=0),)).is_empty

    def test_snapshot_does_not_advance_clock(self, small_knobs):
        engine = LSMEngine(small_knobs)
        engine.put("a", b"x")
        t0 = engine.clock.now
        state_snapshot(engine, KEYS)
        assert engine.clock.now == t0
