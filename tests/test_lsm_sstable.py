import pytest

from repro.lsm.record import Record
from repro.lsm.sstable import SSTable, merge_records, split_into_tables


def recs(*keys, ts=1.0, size=20):
    return [Record(key=k, timestamp=ts, value=b"x" * size) for k in sorted(keys)]


def make_table(*keys, table_id=1, ts=1.0, level=0):
    return SSTable(table_id, recs(*keys, ts=ts), fp_chance=0.01, level=level)


class TestSSTable:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SSTable(1, [], fp_chance=0.01)

    def test_rejects_unsorted(self):
        rows = [Record("b", 1.0, b""), Record("a", 1.0, b"")]
        with pytest.raises(ValueError):
            SSTable(1, rows, fp_chance=0.01)

    def test_rejects_duplicate_keys(self):
        rows = [Record("a", 1.0, b""), Record("a", 2.0, b"")]
        with pytest.raises(ValueError):
            SSTable(1, rows, fp_chance=0.01)

    def test_min_max_keys(self):
        t = make_table("b", "d", "a")
        assert t.min_key == "a"
        assert t.max_key == "d"

    def test_get_existing(self):
        t = make_table("a", "b", "c")
        assert t.get("b").key == "b"

    def test_get_missing(self):
        t = make_table("a", "c")
        assert t.get("b") is None

    def test_might_contain_range_prefilter(self):
        t = make_table("b", "c")
        assert not t.might_contain("a")
        assert not t.might_contain("z")

    def test_might_contain_members(self):
        t = make_table("a", "b", "c")
        assert all(t.might_contain(k) for k in "abc")

    def test_overlaps(self):
        a = make_table("a", "c", table_id=1)
        b = make_table("b", "d", table_id=2)
        c = make_table("e", "f", table_id=3)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_overlaps_range(self):
        t = make_table("c", "e")
        assert t.overlaps_range("a", "c")
        assert not t.overlaps_range("f", "g")

    def test_size_and_blocks(self):
        t = make_table("a", "b")
        assert t.size_bytes == sum(r.size_bytes for r in t.records())
        assert t.block_count == 1

    def test_block_of_within_range(self):
        t = make_table(*[f"k{i:03d}" for i in range(50)])
        assert 0 <= t.block_of("k025") < max(t.block_count, 1)


class TestMergeRecords:
    def test_newest_version_wins(self):
        old = recs("a", ts=1.0)
        new = recs("a", ts=2.0, size=30)
        merged = merge_records([old, new])
        assert len(merged) == 1
        assert merged[0].timestamp == 2.0

    def test_union_of_keys_sorted(self):
        merged = merge_records([recs("b", "d"), recs("a", "c")])
        assert [r.key for r in merged] == ["a", "b", "c", "d"]

    def test_tombstones_kept_by_default(self):
        runs = [[Record.tombstone("a", 2.0)], recs("a", ts=1.0)]
        merged = merge_records(runs)
        assert merged[0].is_tombstone

    def test_tombstones_dropped_on_full_merge(self):
        runs = [[Record.tombstone("a", 2.0)], recs("a", ts=1.0)]
        assert merge_records(runs, drop_tombstones=True) == []

    def test_tombstone_shadows_only_older(self):
        runs = [[Record.tombstone("a", 1.0)], recs("a", ts=2.0)]
        merged = merge_records(runs, drop_tombstones=True)
        assert len(merged) == 1 and not merged[0].is_tombstone


class TestSplitIntoTables:
    def test_respects_max_bytes(self):
        rows = recs(*[f"k{i:03d}" for i in range(100)])
        counter = iter(range(1, 100))
        tables = split_into_tables(
            rows, max_table_bytes=500, next_id=lambda: next(counter),
            fp_chance=0.01, level=1, created_at=0.0,
        )
        assert len(tables) > 1
        assert all(t.level == 1 for t in tables)

    def test_tables_non_overlapping_and_ordered(self):
        rows = recs(*[f"k{i:03d}" for i in range(60)])
        counter = iter(range(1, 100))
        tables = split_into_tables(
            rows, max_table_bytes=400, next_id=lambda: next(counter),
            fp_chance=0.01, level=1, created_at=0.0,
        )
        for a, b in zip(tables, tables[1:]):
            assert a.max_key < b.min_key

    def test_all_records_preserved(self):
        rows = recs(*[f"k{i:03d}" for i in range(37)])
        counter = iter(range(1, 100))
        tables = split_into_tables(
            rows, max_table_bytes=300, next_id=lambda: next(counter),
            fp_chance=0.01, level=2, created_at=0.0,
        )
        assert sum(t.key_count for t in tables) == 37
