import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.spec import READ, WRITE
from repro.workload.trace import QueryRecord, Trace


def make_trace(pattern, dt=1.0):
    """pattern: string of 'r'/'w', one record per second."""
    return Trace(
        [
            QueryRecord(timestamp=i * dt, kind=READ if c == "r" else WRITE, key=f"k{i % 5}")
            for i, c in enumerate(pattern)
        ]
    )


class TestTrace:
    def test_rejects_unordered(self):
        with pytest.raises(WorkloadError):
            Trace([QueryRecord(2.0, READ, "a"), QueryRecord(1.0, READ, "b")])

    def test_len_and_iteration(self):
        t = make_trace("rwr")
        assert len(t) == 3
        assert [r.kind for r in t] == [READ, WRITE, READ]

    def test_duration(self):
        assert make_trace("rrrr").duration == pytest.approx(3.0)

    def test_empty_duration(self):
        assert Trace([]).duration == 0.0

    def test_read_ratio(self):
        assert make_trace("rrw").read_ratio() == pytest.approx(2 / 3)

    def test_read_ratio_empty_raises(self):
        with pytest.raises(WorkloadError):
            Trace([]).read_ratio()

    def test_windows_partition_all_records(self):
        t = make_trace("r" * 100)
        windows = list(t.windows(window_seconds=10))
        assert sum(len(recs) for _, recs in windows) == 100

    def test_windows_have_correct_starts(self):
        t = make_trace("r" * 25)
        starts = [start for start, _ in t.windows(window_seconds=10)]
        assert starts == [0.0, 10.0, 20.0]

    def test_empty_interior_window_emitted(self):
        records = [QueryRecord(0.0, READ, "a"), QueryRecord(25.0, READ, "b")]
        windows = list(Trace(records).windows(window_seconds=10))
        assert len(windows) == 3
        assert windows[1][1] == []

    def test_windows_invalid_width(self):
        with pytest.raises(WorkloadError):
            list(make_trace("r").windows(0))

    def test_key_reuse_distances(self):
        records = [
            QueryRecord(0.0, READ, "a"),
            QueryRecord(1.0, READ, "b"),
            QueryRecord(2.0, READ, "a"),  # distance 1 (one op between)
            QueryRecord(3.0, READ, "a"),  # distance 0
        ]
        distances = Trace(records).key_reuse_distances()
        assert list(distances) == [1.0, 0.0]

    def test_krd_bounded_window(self):
        t = make_trace("r" * 50)
        full = t.key_reuse_distances()
        bounded = t.key_reuse_distances(max_records=10)
        assert len(bounded) < len(full)

    def test_subsample_preserves_order(self):
        t = make_trace("rw" * 50)
        sub = t.subsample(0.5, np.random.default_rng(0))
        times = [r.timestamp for r in sub]
        assert times == sorted(times)
        assert 0 < len(sub) < 100

    def test_subsample_validates_fraction(self):
        with pytest.raises(WorkloadError):
            make_trace("r").subsample(0.0, np.random.default_rng(0))
