import json

import pytest

from repro.analysis import (
    format_comparison_table,
    load_results,
    render_experiments_markdown,
)


@pytest.fixture
def results_dir(tmp_path):
    payload = {
        "average_gain": 0.31,
        "evaluations": 3350,
        "nested": {"ignored": 1},
        "paper": {"average_gain": 0.30},
    }
    (tmp_path / "fig99_demo.json").write_text(json.dumps(payload))
    return tmp_path


class TestLoadResults:
    def test_loads_by_stem(self, results_dir):
        results = load_results(results_dir)
        assert "fig99_demo" in results
        assert results["fig99_demo"].payload["evaluations"] == 3350

    def test_paper_accessor(self, results_dir):
        results = load_results(results_dir)
        assert results["fig99_demo"].paper == {"average_gain": 0.30}

    def test_missing_dir_empty(self, tmp_path):
        assert load_results(tmp_path / "nope") == {}


class TestFormatting:
    def test_table_shape(self):
        table = format_comparison_table([("gain", 0.30, 0.31)])
        lines = table.splitlines()
        assert lines[0].startswith("| metric")
        assert "0.300" in lines[2] and "0.310" in lines[2]

    def test_large_numbers_comma_separated(self):
        table = format_comparison_table([("ops", 78556, 79996.5)])
        assert "78,556" in table
        assert "79,996" in table

    def test_render_includes_paper_reference(self, results_dir):
        md = render_experiments_markdown(results_dir)
        assert "fig99_demo" in md
        assert "average_gain" in md
        assert "0.300" in md

    def test_render_empty(self, tmp_path):
        assert "No bench results" in render_experiments_markdown(tmp_path)
